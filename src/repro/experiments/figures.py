"""Per-figure experiment runners (paper evaluation, Sec. 5 plus design figs).

Every table and figure of the paper's evaluation is one **registered
experiment**: a frozen :class:`~repro.experiments.registry.ExperimentSpec`
with a typed parameter schema, tags, coverage metadata, a ``summarize``
renderer (the rows/series the paper reports) and a ``check`` asserting
the result's shape.  The registry (``python -m repro.experiments list``)
enumerates them; :class:`~repro.experiments.runner.Runner` executes them
with overrides and caching.

The historical ``figureN_*`` functions remain as thin shims delegating
to the registry (same payload objects, same cache), so existing callers
keep working unchanged.

Index (registry name — legacy function):

* ``fig02``          — :func:`figure2_mismatch_impact`       (Fig. 2a/2b)
* ``fig08_10``       — :func:`figure8_to_10_material_designs` (Figs. 8-10)
* ``fig11``          — :func:`figure11_voltage_efficiency`   (Fig. 11)
* ``table1``         — :func:`table1_rotation_degrees`       (Table 1)
* ``fig12``          — :func:`figure12_rotation_estimation`  (Fig. 12)
* ``fig15``          — :func:`figure15_voltage_heatmaps`     (Fig. 15a-h)
* ``fig16``          — :func:`figure16_transmissive_gain`    (Fig. 16)
* ``fig17``          — :func:`figure17_frequency_sweep`      (Fig. 17)
* ``fig18_19``       — :func:`figure18_19_txpower_capacity`  (Figs. 18, 19)
* ``fig20``          — :func:`figure20_iot_device_pdf`       (Fig. 20)
* ``iot_families``   — :func:`iot_device_families`  (Fig. 20 x 3 familes)
* ``fig21``          — :func:`figure21_reflective_heatmaps`  (Fig. 21)
* ``fig22``          — :func:`figure22_reflective_gain`      (Fig. 22)
* ``fig23``          — :func:`figure23_respiration_sensing`  (Fig. 23)
* ``gain_surface``   — :func:`gain_surface_frequency_distance`
* ``coverage_map``   — :func:`coverage_map_txpower_distance`
* ``sec7_scheduling``— :func:`deployment_scheduling_comparison`
* ``sec7_access``    — :func:`deployment_access_isolation`
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.backend import ReceiverSweepBackend
from repro.channel.capacity import spectral_efficiency_from_powers
from repro.channel.link import WirelessLink
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.core.controller import CentralizedController, VoltageSweepConfig
from repro.core.llama import LlamaSystem
from repro.devices.wifi import wifi_rate_for_rssi_mbps
from repro.experiments.registry import Param, experiment
from repro.experiments.reporting import (
    format_comparison,
    format_heatmap,
    format_table,
)
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    IOT_SCENARIOS,
    ReflectiveScenario,
    TransmissiveScenario,
    iot_wifi_scenario,
)
from repro.channel.grid import ProbeGrid
from repro.experiments.sweeps import (
    grid_sweep,
    multi_axis_sweep,
    optimize_link,
    voltage_grid_sweep,
)
from repro.metasurface.design import (
    MetasurfaceDesign,
    fr4_naive_design,
    llama_design,
    rogers_reference_design,
)
from repro.radio.measurement import distribution_overlap_fraction
from repro.radio.transceiver import SimulatedReceiver
from repro.sensing.detector import RespirationDetector, RespirationReading
from repro.sensing.respiration import BreathingSubject, RespirationSensingLink
from repro.units import db_to_amplitude, dbm_to_milliwatts, milliwatts_to_dbm

#: Voltage grid used for the published Table 1.
TABLE1_VOLTAGES_V = (2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0)

#: Tx-Rx distances (cm) used in the transmissive experiments (Fig. 15/16).
TRANSMISSIVE_DISTANCES_CM = (24, 30, 36, 42, 48, 54, 60)

#: Tx-to-surface distances (cm) used in the reflective experiments
#: (Fig. 21/22).
REFLECTIVE_DISTANCES_CM = (24, 30, 36, 42, 48, 54, 60, 66)


# ---------------------------------------------------------------------- #
# Fig. 2 — polarization-mismatch impact on commodity IoT links
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MismatchImpactResult:
    """RSSI distributions for matched vs mismatched commodity links."""

    technology: str
    matched_rssi_dbm: Tuple[float, ...]
    mismatched_rssi_dbm: Tuple[float, ...]

    @property
    def matched_mean_dbm(self) -> float:
        """Mean matched RSSI."""
        return float(np.mean(self.matched_rssi_dbm))

    @property
    def mismatched_mean_dbm(self) -> float:
        """Mean mismatched RSSI."""
        return float(np.mean(self.mismatched_rssi_dbm))

    @property
    def mismatch_penalty_db(self) -> float:
        """Mean power lost to polarization mismatch."""
        return self.matched_mean_dbm - self.mismatched_mean_dbm


def _rssi_samples(configuration, sample_count: int, seed: int) -> Tuple[float, ...]:
    """Collect noisy RSSI readings from a link configuration."""
    link = WirelessLink(configuration)
    receiver = SimulatedReceiver(link, seed=seed)
    return tuple(receiver.measure_power_dbm(duration_s=0.002)
                 for _ in range(sample_count))


def _summary_fig02(payload, params) -> str:
    rows = [[payload[key].technology,
             payload[key].matched_mean_dbm,
             payload[key].mismatched_mean_dbm,
             payload[key].mismatch_penalty_db]
            for key in ("wifi", "ble") if key in payload]
    return format_table(
        ["link", "matched mean (dBm)", "mismatched mean (dBm)",
         "penalty (dB)"],
        rows, precision=1,
        title="Fig. 2 - polarization mismatch impact "
              "(paper: ~10 dB penalty on both links)")


def _check_fig02(payload, params) -> None:
    for key in ("wifi", "ble"):
        assert 6.0 <= payload[key].mismatch_penalty_db <= 16.0, key
        assert len(payload[key].matched_rssi_dbm) == params["sample_count"]


@experiment(
    "fig02",
    title="Fig. 2 — polarization-mismatch impact on commodity IoT links",
    tags=("figure", "network"),
    params=(Param("sample_count", "int", 200,
                  "noisy RSSI samples per configuration"),
            Param("seed", "int", 2021, "receiver noise seed")),
    scenarios=("iot_wifi", "iot_ble"),
    modules=("channel", "devices", "radio"),
    smoke={"sample_count": 60},
    summarize=_summary_fig02, check=_check_fig02)
def _run_fig02(sample_count: int, seed: int) -> Dict[str, MismatchImpactResult]:
    results: Dict[str, MismatchImpactResult] = {}
    wifi_matched, _, _ = IOT_SCENARIOS["iot_wifi"](mismatched=False, seed=seed)
    wifi_mismatched, _, _ = IOT_SCENARIOS["iot_wifi"](mismatched=True, seed=seed)
    results["wifi"] = MismatchImpactResult(
        technology="802.11g (ESP8266 -> AP)",
        matched_rssi_dbm=_rssi_samples(wifi_matched, sample_count, seed),
        mismatched_rssi_dbm=_rssi_samples(wifi_mismatched, sample_count,
                                          seed + 1),
    )
    ble_matched, _, _ = IOT_SCENARIOS["iot_ble"](mismatched=False, seed=seed)
    ble_mismatched, _, _ = IOT_SCENARIOS["iot_ble"](mismatched=True, seed=seed)
    results["ble"] = MismatchImpactResult(
        technology="BLE (wearable -> Raspberry Pi)",
        matched_rssi_dbm=_rssi_samples(ble_matched, sample_count, seed + 2),
        mismatched_rssi_dbm=_rssi_samples(ble_mismatched, sample_count,
                                          seed + 3),
    )
    return results


def figure2_mismatch_impact(sample_count: int = 200,
                            seed: int = 2021) -> Dict[str, MismatchImpactResult]:
    """Fig. 2: matched vs mismatched RSSI PDFs for Wi-Fi and BLE links.

    Legacy shim over the ``fig02`` registry experiment.
    """
    return run_experiment("fig02", sample_count=sample_count,
                          seed=seed).payload


# ---------------------------------------------------------------------- #
# Figs. 8-10 — S21 efficiency for the three material designs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EfficiencyCurve:
    """S21 efficiency vs frequency for one design and excitation."""

    design_name: str
    frequencies_hz: Tuple[float, ...]
    efficiency_x_db: Tuple[float, ...]
    efficiency_y_db: Tuple[float, ...]

    def in_band_minimum_db(self, low_hz: float = 2.4e9,
                           high_hz: float = 2.5e9) -> float:
        """Worst efficiency across the ISM band (both excitations)."""
        values = [
            min(x, y) for f, x, y in zip(self.frequencies_hz,
                                         self.efficiency_x_db,
                                         self.efficiency_y_db)
            if low_hz <= f <= high_hz
        ]
        if not values:
            raise ValueError("no sweep points inside the requested band")
        return min(values)

    def bandwidth_above_hz(self, threshold_db: float = -5.0) -> float:
        """Contiguous bandwidth around the centre where both curves stay
        above ``threshold_db``."""
        frequencies = np.asarray(self.frequencies_hz)
        both = np.minimum(np.asarray(self.efficiency_x_db),
                          np.asarray(self.efficiency_y_db))
        center_index = int(np.argmax(both))
        low_index, high_index = center_index, center_index
        while low_index > 0 and both[low_index - 1] >= threshold_db:
            low_index -= 1
        while (high_index < both.size - 1 and
               both[high_index + 1] >= threshold_db):
            high_index += 1
        return float(frequencies[high_index] - frequencies[low_index])


def _efficiency_curve(design: MetasurfaceDesign,
                      frequencies_hz: Sequence[float],
                      vx: float = 8.0, vy: float = 8.0) -> EfficiencyCurve:
    # Figs. 8-10 are HFSS simulations of the idealised structure.
    surface = design.build(prototype=False)
    eff_x = tuple(surface.transmission_efficiency_db(f, vx, vy, "x")
                  for f in frequencies_hz)
    eff_y = tuple(surface.transmission_efficiency_db(f, vx, vy, "y")
                  for f in frequencies_hz)
    return EfficiencyCurve(design_name=design.name,
                           frequencies_hz=tuple(frequencies_hz),
                           efficiency_x_db=eff_x, efficiency_y_db=eff_y)


def _efficiency_table(curve: EfficiencyCurve, title: str,
                      grid_hz: float = 1e8,
                      tolerance_hz: float = 1e6) -> str:
    """One Figs. 8-10 efficiency curve, one row per 100 MHz."""
    rows = [
        (f / 1e9, x, y)
        for f, x, y in zip(curve.frequencies_hz, curve.efficiency_x_db,
                           curve.efficiency_y_db)
        if abs(f - round(f / grid_hz) * grid_hz) < tolerance_hz
    ]
    return format_table(
        ["frequency (GHz)", "x-excitation (dB)", "y-excitation (dB)"],
        rows, precision=2, title=title)


def _summary_fig08_10(payload, params) -> str:
    blocks = [
        _efficiency_table(payload["fig8_rogers"],
                          "Fig. 8 - Rogers 5880 reference "
                          "(paper: above about -3 dB in band)"),
        _efficiency_table(payload["fig9_fr4_naive"],
                          "Fig. 9 - naive FR4 port "
                          "(paper: ~10 dB worse than Rogers)"),
        _efficiency_table(payload["fig10_fr4_optimized"],
                          "Fig. 10 - optimized FR4 (LLAMA) "
                          "(paper: comparable to Rogers, >150 MHz "
                          "above -5 dB)"),
        format_table(
            ["design", "worst in-band (dB)", "-5 dB bandwidth (MHz)"],
            [[curve.design_name, curve.in_band_minimum_db(),
              curve.bandwidth_above_hz(-5.0) / 1e6]
             for curve in payload.values()],
            precision=2, title="Figs. 8-10 summary"),
    ]
    return "\n\n".join(blocks)


def _check_fig08_10(payload, params) -> None:
    rogers = payload["fig8_rogers"]
    naive = payload["fig9_fr4_naive"]
    optimized = payload["fig10_fr4_optimized"]
    # The low-loss substrate keeps the in-band efficiency high; the
    # naive FR4 port collapses; the optimized stack recovers it.
    assert rogers.in_band_minimum_db() > -4.0
    assert min(rogers.efficiency_x_db) < rogers.in_band_minimum_db() - 8.0
    assert naive.in_band_minimum_db() < -9.0
    assert rogers.in_band_minimum_db() - naive.in_band_minimum_db() > 7.0
    assert optimized.in_band_minimum_db() > -5.5
    assert rogers.in_band_minimum_db() >= optimized.in_band_minimum_db()
    assert optimized.in_band_minimum_db() - naive.in_band_minimum_db() > 5.0
    assert optimized.bandwidth_above_hz(-5.0) >= 100e6


@experiment(
    "fig08_10",
    title="Figs. 8-10 — S21 efficiency of the three material designs",
    tags=("figure", "design"),
    params=(Param("frequency_count", "int", 81,
                  "sweep points across 2.0-2.8 GHz"),),
    modules=("metasurface",),
    smoke={"frequency_count": 41},
    summarize=_summary_fig08_10, check=_check_fig08_10)
def _run_fig08_10(frequency_count: int) -> Dict[str, EfficiencyCurve]:
    frequencies = np.linspace(2.0e9, 2.8e9, frequency_count)
    return {
        "fig8_rogers": _efficiency_curve(rogers_reference_design(), frequencies),
        "fig9_fr4_naive": _efficiency_curve(fr4_naive_design(), frequencies),
        "fig10_fr4_optimized": _efficiency_curve(llama_design(), frequencies),
    }


def figure8_to_10_material_designs(
        frequency_count: int = 81) -> Dict[str, EfficiencyCurve]:
    """Figs. 8-10: S21 efficiency of the three substrate/geometry designs.

    Legacy shim over the ``fig08_10`` registry experiment.
    """
    return run_experiment("fig08_10", frequency_count=frequency_count).payload


# ---------------------------------------------------------------------- #
# Fig. 11 — efficiency vs frequency under different bias voltages
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class VoltageEfficiencyResult:
    """Efficiency-vs-frequency curves for a set of Vy values (Vx fixed)."""

    vx: float
    frequencies_hz: Tuple[float, ...]
    curves_db: Dict[float, Tuple[float, ...]]

    def worst_in_band_db(self, low_hz: float = 2.4e9,
                         high_hz: float = 2.5e9) -> float:
        """Worst in-band efficiency over all bias settings."""
        worst = 0.0
        for curve in self.curves_db.values():
            for f, value in zip(self.frequencies_hz, curve):
                if low_hz <= f <= high_hz:
                    worst = min(worst, value)
        return worst


def _summary_fig11(payload, params) -> str:
    frequencies = np.asarray(payload.frequencies_hz)
    in_band = (frequencies >= 2.4e9) & (frequencies <= 2.5e9)
    rows = []
    for vy, curve in sorted(payload.curves_db.items()):
        values = np.asarray(curve)
        rows.append([vy, float(values[in_band].max()),
                     float(values[in_band].min())])
    table = format_table(
        ["Vy (V)", "best in-band (dB)", "worst in-band (dB)"],
        rows, precision=2,
        title="Fig. 11 - efficiency under bias-voltage combinations "
              "(paper: always above -8 dB in 2.4-2.5 GHz)")
    return (f"{table}\n\nworst efficiency over all bias settings: "
            f"{payload.worst_in_band_db():.2f} dB")


def _check_fig11(payload, params) -> None:
    assert payload.worst_in_band_db() > -8.0
    curves = sorted(payload.curves_db)
    if len(curves) >= 2:
        first = payload.curves_db[curves[0]]
        last = payload.curves_db[curves[-1]]
        assert not np.allclose(first, last)


@experiment(
    "fig11",
    title="Fig. 11 — efficiency vs frequency under bias voltages",
    tags=("figure", "design"),
    params=(Param("vx", "float", 8.0, "fixed X-axis bias (V)"),
            Param("vy_v", "float_seq", (2, 3, 4, 5, 6, 10, 15),
                  "Y-axis bias settings (V)"),
            Param("frequency_count", "int", 41,
                  "sweep points across 2.0-2.8 GHz")),
    modules=("metasurface",),
    smoke={"frequency_count": 21},
    summarize=_summary_fig11, check=_check_fig11)
def _run_fig11(vx: float, vy_v: Tuple[float, ...],
               frequency_count: int) -> VoltageEfficiencyResult:
    # Like Figs. 8-10 this is a simulation of the idealised structure.
    surface = llama_design().build(prototype=False)
    frequencies = tuple(np.linspace(2.0e9, 2.8e9, frequency_count))
    curves: Dict[float, Tuple[float, ...]] = {}
    for vy in vy_v:
        curves[float(vy)] = tuple(
            surface.transmission_efficiency_db(f, vx, float(vy), "x")
            for f in frequencies)
    return VoltageEfficiencyResult(vx=vx, frequencies_hz=frequencies,
                                   curves_db=curves)


def figure11_voltage_efficiency(vx: float = 8.0,
                                vy_values: Sequence[float] = (2, 3, 4, 5, 6, 10, 15),
                                frequency_count: int = 41) -> VoltageEfficiencyResult:
    """Fig. 11: S21 efficiency under different bias-voltage combinations.

    Legacy shim over the ``fig11`` registry experiment.
    """
    return run_experiment("fig11", vx=vx, vy_v=tuple(vy_values),
                          frequency_count=frequency_count).payload


# ---------------------------------------------------------------------- #
# Table 1 — simulated rotation degrees
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RotationTableResult:
    """Rotation magnitude for every (Vx, Vy) pair of the published table."""

    voltages_v: Tuple[float, ...]
    rotation_deg: Dict[Tuple[float, float], float]

    @property
    def maximum_deg(self) -> float:
        """Largest rotation in the table."""
        return max(self.rotation_deg.values())

    @property
    def minimum_deg(self) -> float:
        """Smallest rotation in the table."""
        return min(self.rotation_deg.values())

    def row(self, vy: float) -> List[float]:
        """One table row (fixed Vy, sweeping Vx) as the paper prints it."""
        return [self.rotation_deg[(vx, vy)] for vx in self.voltages_v]


def _summary_table1(payload, params) -> str:
    voltages = payload.voltages_v
    rows = []
    for vy in voltages:
        rows.append([vy] + [payload.rotation_deg[(vx, vy)]
                            for vx in voltages])
    table = format_table(
        ["Vy \\ Vx (V)"] + [f"{vx:g}" for vx in voltages],
        rows, precision=1,
        title="Table 1 - simulated rotation degrees "
              "(paper range: 1.9 - 48.7 deg)")
    return (f"{table}\n\nreproduced range: {payload.minimum_deg:.1f} - "
            f"{payload.maximum_deg:.1f} deg")


def _check_table1(payload, params) -> None:
    assert payload.minimum_deg < 6.0
    voltages = set(payload.voltages_v)
    if {2.0, 15.0} <= voltages:
        assert 40.0 <= payload.maximum_deg <= 62.0
        corner = max(payload.rotation_deg[(15.0, 2.0)],
                     payload.rotation_deg[(2.0, 15.0)])
        assert corner == payload.maximum_deg
    if 5.0 in voltages:
        assert payload.rotation_deg[(5.0, 5.0)] < 15.0


@experiment(
    "table1",
    title="Table 1 — simulated polarization rotation vs (Vx, Vy)",
    tags=("table", "design"),
    params=(Param("voltage_v", "float_seq", TABLE1_VOLTAGES_V,
                  "bias grid of the published table (V)"),
            Param("frequency_hz", "float", DEFAULT_CENTER_FREQUENCY_HZ,
                  "evaluation frequency")),
    modules=("metasurface",),
    smoke={"voltage_v": (2.0, 5.0, 15.0)},
    summarize=_summary_table1, check=_check_table1)
def _run_table1(voltage_v: Tuple[float, ...],
                frequency_hz: float) -> RotationTableResult:
    # Table 1 is an HFSS-style simulation of the idealised structure, so
    # the stated voltages act directly on the varactor junctions.
    surface = llama_design().build(prototype=False)
    rotation: Dict[Tuple[float, float], float] = {}
    for vx in voltage_v:
        for vy in voltage_v:
            rotation[(float(vx), float(vy))] = abs(
                surface.rotation_angle_deg(frequency_hz, float(vx), float(vy)))
    return RotationTableResult(voltages_v=tuple(float(v) for v in voltage_v),
                               rotation_deg=rotation)


def table1_rotation_degrees(
        voltages_v: Sequence[float] = TABLE1_VOLTAGES_V,
        frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ) -> RotationTableResult:
    """Table 1: simulated polarization rotation vs (Vx, Vy).

    Legacy shim over the ``table1`` registry experiment.
    """
    return run_experiment("table1", voltage_v=tuple(voltages_v),
                          frequency_hz=frequency_hz).payload


# ---------------------------------------------------------------------- #
# Fig. 12 — rotation-angle estimation procedure
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RotationEstimationResult:
    """Output of the Sec. 3.4 estimation on the matched benchmark link."""

    reference_orientation_deg: float
    min_rotation_deg: float
    max_rotation_deg: float
    power_slope_sign: float


def _summary_fig12(payload, params) -> str:
    return format_table(
        ["quantity", "reproduced", "paper"],
        [
            ["reference orientation (deg)",
             payload.reference_orientation_deg, 0.0],
            ["minimum rotation (deg)", payload.min_rotation_deg, 4.8],
            ["maximum rotation (deg)", payload.max_rotation_deg, 45.1],
            ["power-vs-angle slope sign", payload.power_slope_sign, -1.0],
        ],
        precision=1,
        title="Fig. 12 - rotation-angle estimation (match setup)")


def _check_fig12(payload, params) -> None:
    # The estimated range stays inside the physically achievable span
    # and linear power falls with orientation mismatch (Fig. 12a).
    assert (0.0 <= payload.min_rotation_deg
            <= payload.max_rotation_deg <= 60.0)
    assert payload.max_rotation_deg > 25.0
    assert payload.power_slope_sign < 0.0


@experiment(
    "fig12",
    title="Fig. 12 — rotation-angle estimation procedure (Sec. 3.4)",
    tags=("figure", "control"),
    params=(Param("distance_m", "float", 0.42, "Tx-Rx distance (m)"),),
    scenarios=("transmissive",),
    axes=("rx_orientation",),
    modules=("channel", "core", "metasurface"),
    smoke={"distance_m": 0.42},
    summarize=_summary_fig12, check=_check_fig12)
def _run_fig12(distance_m: float) -> RotationEstimationResult:
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    rx_orientation_deg=0.0)
    system = LlamaSystem(scenario.configuration(),
                         sweep_config=VoltageSweepConfig(iterations=2,
                                                         switches_per_axis=5))
    estimate = system.estimate_rotation(orientation_step_deg=3.0)
    # Fig. 12(a): received *linear* power falls as the orientation
    # difference grows; report the sign of that slope as a sanity check.
    orientations = np.arange(0.0, 91.0, 15.0)
    baseline = WirelessLink(scenario.configuration().without_surface())
    powers = dbm_to_milliwatts(
        baseline.received_power_dbm_sweep("rx_orientation", orientations))
    slope = np.polyfit(orientations, powers, 1)[0]
    return RotationEstimationResult(
        reference_orientation_deg=estimate.reference_orientation_deg,
        min_rotation_deg=estimate.min_rotation_deg,
        max_rotation_deg=estimate.max_rotation_deg,
        power_slope_sign=float(np.sign(slope)),
    )


def figure12_rotation_estimation(distance_m: float = 0.42) -> RotationEstimationResult:
    """Fig. 12: estimate the min/max rotation angle from power sweeps.

    Legacy shim over the ``fig12`` registry experiment.
    """
    return run_experiment("fig12", distance_m=distance_m).payload


# ---------------------------------------------------------------------- #
# Fig. 15 — transmissive voltage heatmaps and rotation range vs distance
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeatmapResult:
    """A received-power heatmap over the (Vx, Vy) grid at one distance."""

    distance_cm: float
    grid_dbm: Dict[Tuple[float, float], float]

    @property
    def best_point(self) -> Tuple[float, float, float]:
        """(vx, vy, power) of the strongest grid cell."""
        (vx, vy), power = max(self.grid_dbm.items(), key=lambda item: item[1])
        return (vx, vy, power)

    @property
    def dynamic_range_db(self) -> float:
        """Spread between the strongest and weakest grid cell."""
        powers = list(self.grid_dbm.values())
        return max(powers) - min(powers)


@dataclass(frozen=True)
class Figure15Result:
    """Fig. 15: per-distance heatmaps plus the rotation range (15h)."""

    heatmaps: Tuple[HeatmapResult, ...]
    rotation_ranges_deg: Dict[float, Tuple[float, float]]

    def heatmap_for(self, distance_cm: float) -> HeatmapResult:
        """Heatmap at one of the measured distances."""
        for heatmap in self.heatmaps:
            if math.isclose(heatmap.distance_cm, distance_cm):
                return heatmap
        raise KeyError(f"no heatmap for {distance_cm} cm")


def _summary_fig15(payload, params) -> str:
    example = payload.heatmaps[min(1, len(payload.heatmaps) - 1)]
    heatmap = format_heatmap(
        example.grid_dbm, precision=1,
        title="Fig. 15 - received power (dBm) vs (Vx, Vy) at "
              f"{example.distance_cm:.0f} cm")
    rows = []
    for entry in payload.heatmaps:
        vx, vy, power = entry.best_point
        low, high = payload.rotation_ranges_deg[entry.distance_cm]
        rows.append([entry.distance_cm, power, vx, vy,
                     entry.dynamic_range_db, low, high])
    summary = format_table(
        ["distance (cm)", "best power (dBm)", "best Vx", "best Vy",
         "sweep range (dB)", "min rot (deg)", "max rot (deg)"],
        rows, precision=1,
        title="Fig. 15 summary (paper Fig. 15h: rotation spans ~3-45 deg)")
    return f"{heatmap}\n\n{summary}"


def _check_fig15(payload, params) -> None:
    for heatmap in payload.heatmaps:
        assert heatmap.dynamic_range_db > 10.0
    best_powers = [h.best_point[2] for h in payload.heatmaps]
    if len(best_powers) > 1:
        assert best_powers[0] > best_powers[-1]
    for low, high in payload.rotation_ranges_deg.values():
        assert low < 10.0 and 35.0 <= high <= 60.0


@experiment(
    "fig15",
    title="Fig. 15 — transmissive voltage heatmaps + rotation range",
    tags=("figure", "sweep"),
    params=(Param("distance_cm", "float_seq", TRANSMISSIVE_DISTANCES_CM,
                  "Tx-Rx distances (cm)"),
            Param("voltage_step_v", "float", 5.0, "bias grid step (V)")),
    scenarios=("transmissive",),
    modules=("api", "channel", "metasurface"),
    smoke={"distance_cm": (24, 36, 48, 60), "voltage_step_v": 6.0},
    summarize=_summary_fig15, check=_check_fig15)
def _run_fig15(distance_cm: Tuple[float, ...],
               voltage_step_v: float) -> Figure15Result:
    heatmaps: List[HeatmapResult] = []
    rotation_ranges: Dict[float, Tuple[float, float]] = {}
    for distance in distance_cm:
        scenario = TransmissiveScenario(tx_rx_distance_m=distance / 100.0)
        link = scenario.link()
        grid = voltage_grid_sweep(link, step_v=voltage_step_v)
        heatmaps.append(HeatmapResult(distance_cm=float(distance),
                                      grid_dbm=grid))
        # Fig. 15h reports the rotation range realised over the full
        # 0-30 V terminal sweep of the prototype.
        surface = scenario.metasurface
        rotation_ranges[float(distance)] = surface.rotation_range_deg(
            scenario.frequency_hz, voltage_low_v=0.0, voltage_high_v=30.0)
    return Figure15Result(heatmaps=tuple(heatmaps),
                          rotation_ranges_deg=rotation_ranges)


def figure15_voltage_heatmaps(
        distances_cm: Sequence[float] = TRANSMISSIVE_DISTANCES_CM,
        voltage_step_v: float = 5.0) -> Figure15Result:
    """Fig. 15: received-power heatmaps vs (Vx, Vy) at each Tx-Rx distance.

    Legacy shim over the ``fig15`` registry experiment.
    """
    return run_experiment("fig15", distance_cm=tuple(distances_cm),
                          voltage_step_v=voltage_step_v).payload


# ---------------------------------------------------------------------- #
# Fig. 16 — transmissive received power with/without the surface
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GainVsDistanceResult:
    """Received power with/without the surface across distances."""

    distances_cm: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-distance power improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def max_gain_db(self) -> float:
        """Best improvement across the sweep (paper: up to 15 dB)."""
        return max(self.gains_db)

    @property
    def range_extension_factor(self) -> float:
        """Friis-implied range extension at the best improvement."""
        return float(db_to_amplitude(self.max_gain_db))


def _summary_fig16(payload, params) -> str:
    comparison = format_comparison(
        "Fig. 16 - received power vs Tx-Rx distance (dBm), mismatch setup "
        "(paper: up to 15 dB improvement)",
        payload.distances_cm, payload.power_with_dbm,
        payload.power_without_dbm, x_label="distance (cm)", precision=1)
    return (f"{comparison}\n\n"
            f"max improvement          : {payload.max_gain_db:.1f} dB "
            "(paper: 15 dB)\n"
            "implied range extension  : "
            f"{payload.range_extension_factor:.1f}x (paper: 5.6x)")


def _check_fig16(payload, params) -> None:
    # The surface wins at every distance, by roughly the paper's factor.
    assert all(gain > 8.0 for gain in payload.gains_db)
    assert 12.0 <= payload.max_gain_db <= 22.0
    assert payload.range_extension_factor > 4.0


@experiment(
    "fig16",
    title="Fig. 16 — transmissive received power with/without the surface",
    tags=("figure", "sweep"),
    params=(Param("distance_cm", "float_seq", TRANSMISSIVE_DISTANCES_CM,
                  "Tx-Rx distances (cm)"),
            Param("exhaustive", "bool", False,
                  "exhaustive bias search instead of coarse-to-fine")),
    scenarios=("transmissive",),
    axes=("distance",),
    modules=("api", "channel", "core"),
    smoke={"distance_cm": (24.0, 42.0, 60.0)},
    summarize=_summary_fig16, check=_check_fig16)
def _run_fig16(distance_cm: Tuple[float, ...],
               exhaustive: bool) -> GainVsDistanceResult:
    # Driven by the vectorized sweep engine: one scenario covers the
    # whole distance axis, per-point optimization batched across it.
    distances_m = np.asarray(distance_cm, dtype=float) / 100.0
    scenario = TransmissiveScenario(tx_rx_distance_m=float(distances_m[0]))
    points = multi_axis_sweep("distance", distances_m, scenario.link(),
                              baseline_link=scenario.baseline_link(),
                              exhaustive=exhaustive)
    return GainVsDistanceResult(
        distances_cm=tuple(float(d) for d in distance_cm),
        power_with_dbm=tuple(point.power_with_dbm for point in points),
        power_without_dbm=tuple(point.power_without_dbm for point in points),
    )


def figure16_transmissive_gain(
        distances_cm: Sequence[float] = TRANSMISSIVE_DISTANCES_CM,
        exhaustive: bool = False) -> GainVsDistanceResult:
    """Fig. 16: transmissive received power with/without the metasurface.

    Legacy shim over the ``fig16`` registry experiment.
    """
    return run_experiment("fig16", distance_cm=tuple(distances_cm),
                          exhaustive=exhaustive).payload


# ---------------------------------------------------------------------- #
# Fig. 17 — received power vs operating frequency
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FrequencySweepResult:
    """Received power with/without the surface across the ISM band."""

    frequencies_hz: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-frequency improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def min_gain_db(self) -> float:
        """Worst-case improvement across the band (paper: > 10 dB)."""
        return min(self.gains_db)


#: Default Fig. 17 frequency axis: 2.40-2.50 GHz in 10 MHz steps.
FIG17_FREQUENCIES_HZ = tuple(float(f)
                             for f in np.arange(2.40e9, 2.501e9, 0.01e9))


def _summary_fig17(payload, params) -> str:
    comparison = format_comparison(
        "Fig. 17 - received power vs operating frequency (dBm), mismatch "
        "setup (paper: >10 dB improvement across the band)",
        [f / 1e9 for f in payload.frequencies_hz],
        payload.power_with_dbm, payload.power_without_dbm,
        x_label="frequency (GHz)", precision=1)
    return (f"{comparison}\n\nworst-case improvement across the band: "
            f"{payload.min_gain_db:.1f} dB (paper: >10 dB)")


def _check_fig17(payload, params) -> None:
    assert payload.min_gain_db > 8.0
    assert len(payload.frequencies_hz) == len(params["frequency_hz"])


@experiment(
    "fig17",
    title="Fig. 17 — power improvement across 2.40-2.50 GHz",
    tags=("figure", "sweep"),
    params=(Param("frequency_hz", "float_seq", FIG17_FREQUENCIES_HZ,
                  "carrier frequencies (Hz)"),
            Param("distance_m", "float", 0.42, "Tx-Rx distance (m)")),
    scenarios=("transmissive",),
    axes=("frequency",),
    modules=("api", "channel", "core"),
    smoke={"frequency_hz": (2.40e9, 2.45e9, 2.50e9)},
    summarize=_summary_fig17, check=_check_fig17)
def _run_fig17(frequency_hz: Tuple[float, ...],
               distance_m: float) -> FrequencySweepResult:
    # The whole band is one batched frequency axis; the per-frequency
    # Algorithm 1 optimizations are probed together.
    frequencies = np.asarray(frequency_hz, dtype=float)
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    frequency_hz=float(frequencies[0]))
    points = multi_axis_sweep("frequency", frequencies, scenario.link(),
                              baseline_link=scenario.baseline_link())
    return FrequencySweepResult(
        frequencies_hz=tuple(float(f) for f in frequencies),
        power_with_dbm=tuple(point.power_with_dbm for point in points),
        power_without_dbm=tuple(point.power_without_dbm for point in points),
    )


def figure17_frequency_sweep(
        frequencies_hz: Optional[Sequence[float]] = None,
        distance_m: float = 0.42) -> FrequencySweepResult:
    """Fig. 17: power improvement across 2.40-2.50 GHz.

    Legacy shim over the ``fig17`` registry experiment.
    """
    if frequencies_hz is None:
        frequencies_hz = FIG17_FREQUENCIES_HZ
    return run_experiment("fig17",
                          frequency_hz=tuple(float(f)
                                             for f in frequencies_hz),
                          distance_m=distance_m).payload


# ---------------------------------------------------------------------- #
# Figs. 18 and 19 — capacity vs transmit power (clean chamber / multipath)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CapacityVsPowerResult:
    """Spectral efficiency vs transmit power for one antenna/environment."""

    antenna_kind: str
    absorber: bool
    tx_powers_mw: Tuple[float, ...]
    efficiency_with: Tuple[float, ...]
    efficiency_without: Tuple[float, ...]

    @property
    def improvements(self) -> Tuple[float, ...]:
        """Per-power capacity improvement (bit/s/Hz)."""
        return tuple(w - wo for w, wo in zip(self.efficiency_with,
                                             self.efficiency_without))

    def crossover_tx_power_mw(self) -> Optional[float]:
        """Lowest transmit power at which the surface starts helping.

        Returns ``None`` when the surface helps at every probed power.
        The paper's Fig. 19a places this crossover near 2 mW for omni
        antennas in a multipath-rich room.
        """
        for power_mw, improvement in zip(self.tx_powers_mw, self.improvements):
            if improvement > 0:
                previous_hurt = any(
                    other <= 0 for p, other in zip(self.tx_powers_mw,
                                                   self.improvements)
                    if p < power_mw)
                return power_mw if previous_hurt else None
        return None


#: Noise-plus-interference floor used for the capacity experiments.  An
#: ordinary laboratory's 2.4 GHz band is interference limited (co-channel
#: Wi-Fi, Bluetooth) whereas the absorber-covered chamber is close to the
#: receiver's own floor.  The values are referenced to the short-range,
#: high-gain setups of Figs. 18-19 and are what make the low-transmit-
#: power regime measurement-noise limited, as the paper observes.
LAB_INTERFERENCE_FLOOR_DBM = -42.0
CHAMBER_NOISE_FLOOR_DBM = -85.0

#: Transmit-power axis (mW) of the published Figs. 18-19.
FIG18_19_TX_POWERS_MW = (0.002, 0.02, 0.2, 2.0, 20.0, 200.0, 1000.0)


def _capacity_vs_power(antenna_kind: str, absorber: bool,
                       tx_powers_mw: Sequence[float],
                       distance_m: float = 0.42,
                       seed: int = 5) -> CapacityVsPowerResult:
    floor_dbm = (CHAMBER_NOISE_FLOOR_DBM if absorber
                 else LAB_INTERFERENCE_FLOOR_DBM)
    tx_powers_dbm = np.asarray(milliwatts_to_dbm(np.asarray(tx_powers_mw,
                                                             dtype=float)))
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    tx_power_dbm=float(tx_powers_dbm[0]),
                                    antenna_kind=antenna_kind,
                                    absorber=absorber)
    configuration = replace(scenario.configuration(),
                            interference_floor_dbm=floor_dbm)
    link = WirelessLink(configuration)
    baseline_link = WirelessLink(configuration.without_surface())
    noise = link.noise_power_dbm()
    # The controller only sees noisy power reports; at low transmit
    # power the sweep differences sink below the measurement floor
    # and the chosen bias pair degrades towards random — this is the
    # mechanism behind the paper's ~2 mW crossover for omni antennas
    # in multipath (Fig. 19a).  The whole transmit-power axis is swept
    # at once: the sweep backend draws one noise realisation per probe
    # and shares it across axis points, replaying the sample streams of
    # the per-point receivers (identically seeded) the scalar loop
    # would construct.
    receiver = SimulatedReceiver(link, seed=seed)
    controller = CentralizedController(
        VoltageSweepConfig(iterations=2, switches_per_axis=5))
    sweep = controller.coarse_to_fine_sweep_multi(
        ReceiverSweepBackend(receiver, duration_s=0.0002),
        "tx_power", tx_powers_dbm)
    achieved_powers = link.received_power_dbm_sweep(
        "tx_power", tx_powers_dbm, vx=sweep.best_vx, vy=sweep.best_vy)
    baseline_powers = baseline_link.received_power_dbm_sweep(
        "tx_power", tx_powers_dbm)
    efficiency_with = spectral_efficiency_from_powers(achieved_powers, noise)
    efficiency_without = spectral_efficiency_from_powers(baseline_powers,
                                                         noise)
    return CapacityVsPowerResult(
        antenna_kind=antenna_kind,
        absorber=absorber,
        tx_powers_mw=tuple(float(p) for p in tx_powers_mw),
        efficiency_with=tuple(float(e) for e in efficiency_with),
        efficiency_without=tuple(float(e) for e in efficiency_without),
    )


def _capacity_table(series: CapacityVsPowerResult, title: str) -> str:
    """One Figs. 18-19 capacity-vs-power panel."""
    rows = [
        (power, with_eff, without_eff, with_eff - without_eff)
        for power, with_eff, without_eff in zip(
            series.tx_powers_mw, series.efficiency_with,
            series.efficiency_without)
    ]
    return format_table(
        ["Tx power (mW)", "with surface (bit/s/Hz)",
         "without surface (bit/s/Hz)", "improvement"],
        rows, precision=2, title=title)


def _summary_fig18_19(payload, params) -> str:
    titles = {
        "fig18a_omni_clean": "Fig. 18a - omni antenna, absorber chamber",
        "fig18b_directional_clean":
            "Fig. 18b - directional antenna, absorber chamber",
        "fig19a_omni_multipath":
            "Fig. 19a - omni antenna, multipath laboratory "
            "(paper: benefit collapses below ~2 mW)",
        "fig19b_directional_multipath":
            "Fig. 19b - directional antenna, multipath laboratory",
    }
    return "\n\n".join(_capacity_table(payload[key], title)
                       for key, title in titles.items() if key in payload)


def _check_fig18_19(payload, params) -> None:
    # Clean chamber: the surface helps at every transmit power.
    for key in ("fig18a_omni_clean", "fig18b_directional_clean"):
        assert all(improvement > 1.0
                   for improvement in payload[key].improvements), key
    clean = payload["fig18b_directional_clean"]
    assert clean.efficiency_with[-1] > clean.efficiency_with[0]
    # Multipath: the omni benefit collapses at the lowest powers and
    # recovers above the ~2 mW region; directional stays more robust.
    omni = payload["fig19a_omni_multipath"]
    directional = payload["fig19b_directional_multipath"]
    assert sum(directional.improvements) > sum(omni.improvements)
    if len(omni.tx_powers_mw) > 1:
        assert omni.improvements[0] < 1.0
        assert omni.improvements[-1] > 2.0
    if 2.0 in omni.tx_powers_mw:
        low_power_index = omni.tx_powers_mw.index(2.0)
        assert omni.improvements[low_power_index] > omni.improvements[0]


@experiment(
    "fig18_19",
    title="Figs. 18-19 — capacity vs transmit power (chamber / multipath)",
    tags=("figure", "sweep"),
    params=(Param("tx_power_mw", "float_seq", FIG18_19_TX_POWERS_MW,
                  "transmit powers (mW)"),
            Param("distance_m", "float", 0.42, "Tx-Rx distance (m)")),
    scenarios=("transmissive",),
    axes=("tx_power",),
    modules=("api", "channel", "core", "radio"),
    smoke={"tx_power_mw": (0.002, 2.0, 20.0, 1000.0)},
    summarize=_summary_fig18_19, check=_check_fig18_19)
def _run_fig18_19(tx_power_mw: Tuple[float, ...],
                  distance_m: float) -> Dict[str, CapacityVsPowerResult]:
    return {
        "fig18a_omni_clean": _capacity_vs_power("omni", True, tx_power_mw,
                                                distance_m),
        "fig18b_directional_clean": _capacity_vs_power("directional", True,
                                                       tx_power_mw, distance_m),
        "fig19a_omni_multipath": _capacity_vs_power("omni", False,
                                                    tx_power_mw, distance_m),
        "fig19b_directional_multipath": _capacity_vs_power(
            "directional", False, tx_power_mw, distance_m),
    }


def figure18_19_txpower_capacity(
        tx_powers_mw: Sequence[float] = FIG18_19_TX_POWERS_MW,
        distance_m: float = 0.42) -> Dict[str, CapacityVsPowerResult]:
    """Figs. 18 and 19: capacity vs transmit power.

    Returns four series: omni/directional antennas in the absorber-covered
    chamber (Fig. 18a/b) and in the multipath-rich laboratory
    (Fig. 19a/b).  Legacy shim over the ``fig18_19`` registry experiment.
    """
    return run_experiment("fig18_19",
                          tx_power_mw=tuple(float(p) for p in tx_powers_mw),
                          distance_m=distance_m).payload


# ---------------------------------------------------------------------- #
# Fig. 20 — commodity IoT links with/without the surface
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class IoTDeviceResult:
    """RSSI distributions of a commodity link with/without the surface."""

    with_surface_rssi_dbm: Tuple[float, ...]
    without_surface_rssi_dbm: Tuple[float, ...]
    optimal_bias_v: Tuple[float, float]

    @property
    def improvement_db(self) -> float:
        """Mean RSSI improvement (paper: ~10 dB)."""
        return (float(np.mean(self.with_surface_rssi_dbm)) -
                float(np.mean(self.without_surface_rssi_dbm)))

    @property
    def throughput_improvement_mbps(self) -> float:
        """802.11g PHY-rate improvement unlocked by the RSSI gain."""
        with_rate = wifi_rate_for_rssi_mbps(
            float(np.mean(self.with_surface_rssi_dbm)))
        without_rate = wifi_rate_for_rssi_mbps(
            float(np.mean(self.without_surface_rssi_dbm)))
        return float(with_rate - without_rate)


def _device_pdf(with_config, without_config, sample_count: int,
                seed: int) -> IoTDeviceResult:
    """Optimize the surface, then sample both configurations' RSSI."""
    with_link = WirelessLink(with_config)
    best_power, best_vx, best_vy = optimize_link(with_link)
    receiver_with = SimulatedReceiver(with_link, seed=seed)
    receiver_without = SimulatedReceiver(WirelessLink(without_config),
                                         seed=seed + 1)
    with_samples = tuple(
        receiver_with.measure_power_dbm(vx=best_vx, vy=best_vy,
                                        duration_s=0.002)
        for _ in range(sample_count))
    without_samples = tuple(
        receiver_without.measure_power_dbm(duration_s=0.002)
        for _ in range(sample_count))
    return IoTDeviceResult(with_surface_rssi_dbm=with_samples,
                           without_surface_rssi_dbm=without_samples,
                           optimal_bias_v=(best_vx, best_vy))


def _summary_fig20(payload, params) -> str:
    rows = [
        ["without surface", float(np.mean(payload.without_surface_rssi_dbm)),
         float(np.min(payload.without_surface_rssi_dbm)),
         float(np.max(payload.without_surface_rssi_dbm))],
        ["with surface", float(np.mean(payload.with_surface_rssi_dbm)),
         float(np.min(payload.with_surface_rssi_dbm)),
         float(np.max(payload.with_surface_rssi_dbm))],
    ]
    table = format_table(
        ["configuration", "mean RSSI (dBm)", "min (dBm)", "max (dBm)"],
        rows, precision=1,
        title="Fig. 20 - ESP8266 Wi-Fi link, mismatch setup "
              "(paper: ~10 dB improvement with the surface)")
    overlap = distribution_overlap_fraction(payload.with_surface_rssi_dbm,
                                            payload.without_surface_rssi_dbm)
    return (f"{table}\n\n"
            f"mean improvement            : {payload.improvement_db:.1f} dB\n"
            f"distribution overlap        : {overlap * 100:.0f}%\n"
            "802.11g PHY rate unlocked   : "
            f"+{payload.throughput_improvement_mbps:.0f} Mbit/s\n"
            "optimal bias pair           : "
            f"Vx={payload.optimal_bias_v[0]:.0f} V, "
            f"Vy={payload.optimal_bias_v[1]:.0f} V")


def _check_fig20(payload, params) -> None:
    overlap = distribution_overlap_fraction(payload.with_surface_rssi_dbm,
                                            payload.without_surface_rssi_dbm)
    assert 5.0 <= payload.improvement_db <= 18.0
    assert overlap < 0.5


@experiment(
    "fig20",
    title="Fig. 20 — ESP8266 Wi-Fi link RSSI with/without the metasurface",
    tags=("figure", "network"),
    params=(Param("sample_count", "int", 200, "RSSI samples per config"),
            Param("distance_m", "float", 3.0, "station-AP distance (m)"),
            Param("seed", "int", 2021, "receiver noise seed")),
    scenarios=("iot_wifi",),
    modules=("api", "channel", "core", "devices", "radio"),
    smoke={"sample_count": 60},
    summarize=_summary_fig20, check=_check_fig20)
def _run_fig20(sample_count: int, distance_m: float,
               seed: int) -> IoTDeviceResult:
    with_config, _station, _ap = iot_wifi_scenario(
        mismatched=True, distance_m=distance_m, with_surface=True, seed=seed)
    without_config, _station, _ap = iot_wifi_scenario(
        mismatched=True, distance_m=distance_m, with_surface=False, seed=seed)
    return _device_pdf(with_config, without_config, sample_count, seed)


def figure20_iot_device_pdf(sample_count: int = 200,
                            distance_m: float = 3.0,
                            seed: int = 2021) -> IoTDeviceResult:
    """Fig. 20: ESP8266 Wi-Fi link RSSI with/without the metasurface.

    Legacy shim over the ``fig20`` registry experiment.
    """
    return run_experiment("fig20", sample_count=sample_count,
                          distance_m=distance_m, seed=seed).payload


# ---------------------------------------------------------------------- #
# Fig. 20 generalised — all three commodity IoT device families
# ---------------------------------------------------------------------- #
def _summary_iot_families(payload, params) -> str:
    rows = [[family,
             float(np.mean(result.without_surface_rssi_dbm)),
             float(np.mean(result.with_surface_rssi_dbm)),
             result.improvement_db]
            for family, result in payload.items()]
    return format_table(
        ["family", "without surface (dBm)", "with surface (dBm)",
         "improvement (dB)"],
        rows, precision=1,
        title="Fig. 20 generalised - Wi-Fi / BLE / Zigbee links "
              "(paper names all three as beneficiaries)")


def _check_iot_families(payload, params) -> None:
    assert set(payload) == set(IOT_SCENARIOS)
    for family, result in payload.items():
        assert result.improvement_db > 3.0, family


@experiment(
    "iot_families",
    title="Fig. 20 generalised — Wi-Fi, BLE and Zigbee commodity links",
    tags=("figure", "network"),
    params=(Param("sample_count", "int", 150, "RSSI samples per config"),
            Param("seed", "int", 2021, "receiver noise seed")),
    scenarios=("iot_wifi", "iot_ble", "iot_zigbee"),
    modules=("api", "channel", "core", "devices", "radio"),
    smoke={"sample_count": 50},
    summarize=_summary_iot_families, check=_check_iot_families)
def _run_iot_families(sample_count: int,
                      seed: int) -> Dict[str, IoTDeviceResult]:
    results: Dict[str, IoTDeviceResult] = {}
    for family, factory in IOT_SCENARIOS.items():
        with_config, _tx, _rx = factory(mismatched=True, with_surface=True,
                                        seed=seed)
        without_config, _tx, _rx = factory(mismatched=True,
                                           with_surface=False, seed=seed)
        results[family] = _device_pdf(with_config, without_config,
                                      sample_count, seed)
    return results


def iot_device_families(sample_count: int = 150,
                        seed: int = 2021) -> Dict[str, IoTDeviceResult]:
    """Fig. 20 extended to the Wi-Fi, BLE and Zigbee device families.

    Legacy-style entry point over the ``iot_families`` registry
    experiment.
    """
    return run_experiment("iot_families", sample_count=sample_count,
                          seed=seed).payload


# ---------------------------------------------------------------------- #
# Fig. 21 — reflective voltage heatmaps
# ---------------------------------------------------------------------- #
def _summary_fig21(payload, params) -> str:
    example = payload[min(1, len(payload) - 1)]
    heatmap = format_heatmap(
        example.grid_dbm, precision=1,
        title="Fig. 21 - reflective received power (dBm) vs (Vx, Vy) at "
              f"{example.distance_cm:.0f} cm Tx-surface distance")
    rows = []
    for entry in payload:
        vx, vy, power = entry.best_point
        rows.append([entry.distance_cm, power, vx, vy,
                     entry.dynamic_range_db])
    summary = format_table(
        ["Tx-surface distance (cm)", "best power (dBm)", "best Vx",
         "best Vy", "sweep range (dB)"],
        rows, precision=1,
        title="Fig. 21 summary (paper: voltage sensitivity present but "
              "smaller than the transmissive case)")
    return f"{heatmap}\n\n{summary}"


def _check_fig21(payload, params) -> None:
    for heatmap in payload:
        assert heatmap.dynamic_range_db > 1.0
    best_powers = [heatmap.best_point[2] for heatmap in payload]
    if len(best_powers) > 1:
        assert best_powers[0] > best_powers[-1]


@experiment(
    "fig21",
    title="Fig. 21 — reflective voltage heatmaps vs Tx-surface distance",
    tags=("figure", "sweep"),
    params=(Param("distance_cm", "float_seq", REFLECTIVE_DISTANCES_CM,
                  "Tx-to-surface distances (cm)"),
            Param("voltage_step_v", "float", 5.0, "bias grid step (V)")),
    scenarios=("reflective",),
    modules=("api", "channel", "metasurface"),
    smoke={"distance_cm": (24, 36, 48, 66), "voltage_step_v": 6.0},
    summarize=_summary_fig21, check=_check_fig21)
def _run_fig21(distance_cm: Tuple[float, ...],
               voltage_step_v: float) -> Tuple[HeatmapResult, ...]:
    heatmaps: List[HeatmapResult] = []
    for distance in distance_cm:
        scenario = ReflectiveScenario(surface_distance_m=distance / 100.0)
        grid = voltage_grid_sweep(scenario.link(), step_v=voltage_step_v)
        heatmaps.append(HeatmapResult(distance_cm=float(distance),
                                      grid_dbm=grid))
    return tuple(heatmaps)


def figure21_reflective_heatmaps(
        distances_cm: Sequence[float] = REFLECTIVE_DISTANCES_CM,
        voltage_step_v: float = 5.0) -> Tuple[HeatmapResult, ...]:
    """Fig. 21: reflective received-power heatmaps vs Tx-surface distance.

    Legacy shim over the ``fig21`` registry experiment.
    """
    return run_experiment("fig21", distance_cm=tuple(distances_cm),
                          voltage_step_v=voltage_step_v).payload


# ---------------------------------------------------------------------- #
# Fig. 22 — reflective power and capacity improvement
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReflectiveGainResult:
    """Reflective received power and capacity with/without the surface."""

    distances_cm: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]
    efficiency_with: Tuple[float, ...]
    efficiency_without: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-distance power improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def max_gain_db(self) -> float:
        """Best reflective power improvement (paper: up to 17 dB)."""
        return max(self.gains_db)

    @property
    def max_capacity_improvement(self) -> float:
        """Best spectral-efficiency improvement (bit/s/Hz)."""
        return max(w - wo for w, wo in zip(self.efficiency_with,
                                           self.efficiency_without))


def _summary_fig22(payload, params) -> str:
    power = format_comparison(
        "Fig. 22 (top) - reflective received power vs Tx-surface distance "
        "(dBm) (paper: up to 17 dB improvement)",
        payload.distances_cm, payload.power_with_dbm,
        payload.power_without_dbm, x_label="distance (cm)", precision=1)
    capacity = format_comparison(
        "Fig. 22 (bottom) - spectral efficiency (bit/s/Hz)",
        payload.distances_cm, payload.efficiency_with,
        payload.efficiency_without, x_label="distance (cm)", precision=2)
    return (f"{power}\n\n{capacity}\n\n"
            f"max power improvement    : {payload.max_gain_db:.1f} dB "
            "(paper: 17 dB)\n"
            "max capacity improvement : "
            f"{payload.max_capacity_improvement:.2f} bit/s/Hz")


def _check_fig22(payload, params) -> None:
    assert all(gain > 0.0 for gain in payload.gains_db)
    assert payload.max_gain_db > 10.0
    assert payload.max_capacity_improvement > 0.5


@experiment(
    "fig22",
    title="Fig. 22 — reflective power and capacity with/without the surface",
    tags=("figure", "sweep"),
    params=(Param("distance_cm", "float_seq", REFLECTIVE_DISTANCES_CM,
                  "Tx-to-surface distances (cm)"),
            Param("exhaustive", "bool", False,
                  "exhaustive bias search instead of coarse-to-fine")),
    scenarios=("reflective",),
    axes=("distance",),
    modules=("api", "channel", "core"),
    smoke={"distance_cm": (24.0, 42.0, 66.0)},
    summarize=_summary_fig22, check=_check_fig22)
def _run_fig22(distance_cm: Tuple[float, ...],
               exhaustive: bool) -> ReflectiveGainResult:
    # The surface-offset axis is one batched distance sweep (with the
    # aimed-antenna direct-path roll-off recomputed per offset, as the
    # scalar per-point loop did), then one vectorized Shannon pass.
    distances_m = np.asarray(distance_cm, dtype=float) / 100.0
    scenario = ReflectiveScenario(surface_distance_m=float(distances_m[0]))
    # The noise floor depends only on bandwidth/noise figure, not on the
    # swept distance, so one link's floor covers the whole axis.
    noise = scenario.link().noise_power_dbm()
    points = multi_axis_sweep("distance", distances_m, scenario.link(),
                              baseline_link=scenario.baseline_link(),
                              exhaustive=exhaustive)
    power_with = np.array([point.power_with_dbm for point in points])
    power_without = np.array([point.power_without_dbm for point in points])
    eff_with = spectral_efficiency_from_powers(power_with, noise)
    eff_without = spectral_efficiency_from_powers(power_without, noise)
    return ReflectiveGainResult(
        distances_cm=tuple(float(d) for d in distance_cm),
        power_with_dbm=tuple(float(p) for p in power_with),
        power_without_dbm=tuple(float(p) for p in power_without),
        efficiency_with=tuple(float(e) for e in eff_with),
        efficiency_without=tuple(float(e) for e in eff_without),
    )


def figure22_reflective_gain(
        distances_cm: Sequence[float] = REFLECTIVE_DISTANCES_CM,
        exhaustive: bool = False) -> ReflectiveGainResult:
    """Fig. 22: reflective power/capacity with and without the surface.

    Legacy shim over the ``fig22`` registry experiment.
    """
    return run_experiment("fig22", distance_cm=tuple(distances_cm),
                          exhaustive=exhaustive).payload


# ---------------------------------------------------------------------- #
# Two-axis scenario runners (the N-D grid engine's figure plane)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GainSurfaceResult:
    """Optimized gain over a joint frequency x distance grid.

    Every 2-D array is indexed ``[frequency, distance]``; the surface
    is optimized per cell (Algorithm 1, all cells batched together) and
    compared against the matching no-surface baseline.
    """

    frequencies_hz: Tuple[float, ...]
    distances_m: Tuple[float, ...]
    power_with_dbm: np.ndarray
    power_without_dbm: np.ndarray
    best_vx: np.ndarray
    best_vy: np.ndarray

    @property
    def gain_db(self) -> np.ndarray:
        """Per-cell received-power improvement (dB)."""
        return self.power_with_dbm - self.power_without_dbm

    @property
    def min_gain_db(self) -> float:
        """Worst-case improvement anywhere on the surface."""
        return float(np.min(self.gain_db))

    @property
    def max_gain_db(self) -> float:
        """Best improvement anywhere on the surface."""
        return float(np.max(self.gain_db))


#: Default gain-surface frequency axis: 2.40-2.50 GHz in 20 MHz steps.
GAIN_SURFACE_FREQUENCIES_HZ = tuple(
    float(f) for f in np.arange(2.40e9, 2.501e9, 0.02e9))

#: Default gain-surface distance axis (m): the transmissive range.
GAIN_SURFACE_DISTANCES_M = tuple(
    float(d) / 100.0 for d in TRANSMISSIVE_DISTANCES_CM)


def _summary_gain_surface(payload, params) -> str:
    rows = [[f / 1e9] + list(payload.gain_db[i])
            for i, f in enumerate(payload.frequencies_hz)]
    table = format_table(
        ["freq (GHz) \\ dist (m)"] + [f"{d:.2f}"
                                      for d in payload.distances_m],
        rows, precision=1,
        title="Gain surface - optimized improvement (dB) over the "
              "frequency x distance grid")
    return (f"{table}\n\nimprovement span: {payload.min_gain_db:.1f} to "
            f"{payload.max_gain_db:.1f} dB")


def _check_gain_surface(payload, params) -> None:
    assert payload.gain_db.shape == (len(payload.frequencies_hz),
                                     len(payload.distances_m))
    assert payload.min_gain_db > 8.0


@experiment(
    "gain_surface",
    title="Gain surface — joint frequency x distance improvement grid",
    tags=("sweep",),
    params=(Param("frequency_hz", "float_seq", GAIN_SURFACE_FREQUENCIES_HZ,
                  "carrier frequencies (Hz)"),
            Param("distance_m", "float_seq", GAIN_SURFACE_DISTANCES_M,
                  "Tx-Rx distances (m)")),
    scenarios=("transmissive",),
    axes=("frequency", "distance"),
    modules=("api", "channel", "core"),
    smoke={"frequency_hz": (2.40e9, 2.44e9, 2.48e9),
           "distance_m": (0.24, 0.42, 0.60)},
    summarize=_summary_gain_surface, check=_check_gain_surface)
def _run_gain_surface(frequency_hz: Tuple[float, ...],
                      distance_m: Tuple[float, ...]) -> GainSurfaceResult:
    # One ProbeGrid covers the whole ISM band crossed with the
    # transmissive distance range; per-cell Algorithm 1 searches all
    # batch through the grid engine.
    frequencies = np.asarray(frequency_hz, dtype=float).ravel()
    distances = np.asarray(distance_m, dtype=float).ravel()
    scenario = TransmissiveScenario(frequency_hz=float(frequencies[0]),
                                    tx_rx_distance_m=float(distances[0]))
    grid = ProbeGrid.product(frequency=frequencies, distance=distances)
    comparison = grid_sweep(grid, scenario.link(),
                            baseline_link=scenario.baseline_link())
    return GainSurfaceResult(
        frequencies_hz=tuple(float(f) for f in frequencies),
        distances_m=tuple(float(d) for d in distances),
        power_with_dbm=comparison.power_with_dbm,
        power_without_dbm=comparison.power_without_dbm,
        best_vx=comparison.best_vx,
        best_vy=comparison.best_vy,
    )


def gain_surface_frequency_distance(
        frequencies_hz: Optional[Sequence[float]] = None,
        distances_m: Optional[Sequence[float]] = None) -> GainSurfaceResult:
    """Joint frequency x distance gain surface (transmissive layout).

    Legacy shim over the ``gain_surface`` registry experiment.
    """
    if frequencies_hz is None:
        frequencies_hz = GAIN_SURFACE_FREQUENCIES_HZ
    if distances_m is None:
        distances_m = GAIN_SURFACE_DISTANCES_M
    return run_experiment(
        "gain_surface",
        frequency_hz=tuple(float(f) for f in np.asarray(frequencies_hz).ravel()),
        distance_m=tuple(float(d) for d in np.asarray(distances_m).ravel()),
    ).payload


@dataclass(frozen=True)
class CoverageMapResult:
    """Capacity coverage over a joint tx-power x distance grid.

    Every 2-D array is indexed ``[tx_power, distance]``.  A cell is
    "covered" when its spectral efficiency reaches
    ``threshold_bps_hz``; the coverage fractions summarise how much of
    the operating envelope the surface opens up.
    """

    tx_powers_dbm: Tuple[float, ...]
    distances_m: Tuple[float, ...]
    efficiency_with: np.ndarray
    efficiency_without: np.ndarray
    threshold_bps_hz: float

    @property
    def covered_with(self) -> np.ndarray:
        """Boolean coverage map with the surface deployed."""
        return self.efficiency_with >= self.threshold_bps_hz

    @property
    def covered_without(self) -> np.ndarray:
        """Boolean coverage map of the no-surface baseline."""
        return self.efficiency_without >= self.threshold_bps_hz

    @property
    def coverage_fraction_with(self) -> float:
        """Fraction of the grid the surface-assisted link covers."""
        return float(np.mean(self.covered_with))

    @property
    def coverage_fraction_without(self) -> float:
        """Fraction of the grid the baseline link covers."""
        return float(np.mean(self.covered_without))

    @property
    def newly_covered_fraction(self) -> float:
        """Fraction of the grid only the surface-assisted link covers."""
        return float(np.mean(self.covered_with & ~self.covered_without))


#: Default coverage-map axes.
COVERAGE_MAP_TX_POWERS_DBM = tuple(
    float(p) for p in np.arange(-60.0, 0.1, 10.0))
COVERAGE_MAP_DISTANCES_M = (0.3, 1.0, 3.0, 10.0, 30.0)


def _summary_coverage_map(payload, params) -> str:
    rows = [[p] + ["#" if w else ("+" if ww else ".")
                   for w, ww in zip(payload.covered_without[i],
                                    payload.covered_with[i])]
            for i, p in enumerate(payload.tx_powers_dbm)]
    table = format_table(
        ["Tx (dBm) \\ dist (m)"] + [f"{d:.1f}" for d in payload.distances_m],
        rows, precision=0,
        title=f"Coverage map at {payload.threshold_bps_hz:.0f} bit/s/Hz "
              "(# baseline covers, + only with surface, . uncovered)")
    return (f"{table}\n\n"
            f"coverage with surface   : {payload.coverage_fraction_with:.0%}\n"
            "coverage without surface: "
            f"{payload.coverage_fraction_without:.0%}\n"
            "opened by the surface   : "
            f"{payload.newly_covered_fraction:.0%} of the envelope")


def _check_coverage_map(payload, params) -> None:
    # The surface strictly extends the operating envelope, and more
    # power never shrinks coverage.
    assert (payload.coverage_fraction_with
            >= payload.coverage_fraction_without)
    covered_per_power = np.sum(payload.covered_with, axis=1)
    assert np.all(np.diff(covered_per_power) >= 0)


@experiment(
    "coverage_map",
    title="Coverage map — tx-power x distance capacity envelope",
    tags=("sweep",),
    params=(Param("tx_power_dbm", "float_seq", COVERAGE_MAP_TX_POWERS_DBM,
                  "transmit powers (dBm)"),
            Param("distance_m", "float_seq", COVERAGE_MAP_DISTANCES_M,
                  "Tx-Rx distances (m)"),
            Param("threshold_bps_hz", "float", 2.0,
                  "coverage threshold (bit/s/Hz)"),
            Param("antenna_kind", "str", "directional",
                  "directional / omni / dipole"),
            Param("absorber", "bool", True, "absorber-covered chamber")),
    scenarios=("transmissive",),
    axes=("tx_power", "distance"),
    modules=("api", "channel", "core"),
    smoke={"tx_power_dbm": (-60.0, -40.0, -20.0, 0.0),
           "distance_m": (0.3, 3.0, 30.0)},
    summarize=_summary_coverage_map, check=_check_coverage_map)
def _run_coverage_map(tx_power_dbm: Tuple[float, ...],
                      distance_m: Tuple[float, ...],
                      threshold_bps_hz: float,
                      antenna_kind: str,
                      absorber: bool) -> CoverageMapResult:
    tx_powers = np.asarray(tx_power_dbm, dtype=float).ravel()
    distances = np.asarray(distance_m, dtype=float).ravel()
    floor_dbm = (CHAMBER_NOISE_FLOOR_DBM if absorber
                 else LAB_INTERFERENCE_FLOOR_DBM)
    scenario = TransmissiveScenario(tx_power_dbm=float(tx_powers[0]),
                                    tx_rx_distance_m=float(distances[0]),
                                    antenna_kind=antenna_kind,
                                    absorber=absorber)
    configuration = replace(scenario.configuration(),
                            interference_floor_dbm=floor_dbm)
    link = WirelessLink(configuration)
    baseline_link = WirelessLink(configuration.without_surface())
    noise = link.noise_power_dbm()
    grid = ProbeGrid.product(tx_power=tx_powers, distance=distances)
    comparison = grid_sweep(grid, link, baseline_link=baseline_link)
    return CoverageMapResult(
        tx_powers_dbm=tuple(float(p) for p in tx_powers),
        distances_m=tuple(float(d) for d in distances),
        efficiency_with=spectral_efficiency_from_powers(
            comparison.power_with_dbm, noise),
        efficiency_without=spectral_efficiency_from_powers(
            comparison.power_without_dbm, noise),
        threshold_bps_hz=float(threshold_bps_hz),
    )


def coverage_map_txpower_distance(
        tx_powers_dbm: Optional[Sequence[float]] = None,
        distances_m: Optional[Sequence[float]] = None,
        threshold_bps_hz: float = 2.0,
        antenna_kind: str = "directional",
        absorber: bool = True) -> CoverageMapResult:
    """Joint tx-power x distance coverage map (transmissive layout).

    Legacy shim over the ``coverage_map`` registry experiment.
    """
    if tx_powers_dbm is None:
        tx_powers_dbm = COVERAGE_MAP_TX_POWERS_DBM
    if distances_m is None:
        distances_m = COVERAGE_MAP_DISTANCES_M
    return run_experiment(
        "coverage_map",
        tx_power_dbm=tuple(float(p) for p in np.asarray(tx_powers_dbm).ravel()),
        distance_m=tuple(float(d) for d in np.asarray(distances_m).ravel()),
        threshold_bps_hz=threshold_bps_hz,
        antenna_kind=antenna_kind,
        absorber=absorber,
    ).payload


# ---------------------------------------------------------------------- #
# Fig. 23 — respiration sensing at low transmit power
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RespirationSensingResult:
    """Detection outcome with and without the metasurface."""

    true_rate_hz: float
    reading_with: RespirationReading
    reading_without: RespirationReading
    trace_swing_with_db: float
    trace_swing_without_db: float

    @property
    def surface_enables_detection(self) -> bool:
        """True when breathing is detected only with the surface present."""
        return self.reading_with.detected and not self.reading_without.detected


def _summary_fig23(payload, params) -> str:
    rows = [
        ["without surface",
         "yes" if payload.reading_without.detected else "no",
         payload.reading_without.peak_to_noise_db,
         payload.reading_without.estimated_rate_bpm or float("nan")],
        ["with surface",
         "yes" if payload.reading_with.detected else "no",
         payload.reading_with.peak_to_noise_db,
         payload.reading_with.estimated_rate_bpm or float("nan")],
    ]
    return format_table(
        ["configuration", "respiration detected", "peak/noise (dB)",
         "estimated rate (bpm)"],
        rows, precision=1,
        title="Fig. 23 - respiration sensing at low transmit power "
              f"(ground truth {payload.true_rate_hz * 60:.0f} bpm)")


def _check_fig23(payload, params) -> None:
    assert payload.surface_enables_detection
    assert abs(payload.reading_with.estimated_rate_hz -
               payload.true_rate_hz) < 0.05


@experiment(
    "fig23",
    title="Fig. 23 — respiration sensing at 5 mW with/without the surface",
    tags=("figure", "sensing"),
    params=(Param("tx_power_mw", "float", 5.0, "transmit power (mW)"),
            Param("duration_s", "float", 60.0, "capture duration (s)"),
            Param("seed", "int", 11, "noise seed")),
    scenarios=("respiration",),
    modules=("channel", "metasurface", "sensing"),
    smoke={"duration_s": 30.0},
    summarize=_summary_fig23, check=_check_fig23)
def _run_fig23(tx_power_mw: float, duration_s: float,
               seed: int) -> RespirationSensingResult:
    subject = BreathingSubject()
    tx_power_dbm = float(milliwatts_to_dbm(tx_power_mw))
    surface = llama_design().build()
    with_link = RespirationSensingLink(subject=subject, metasurface=surface,
                                       tx_power_dbm=tx_power_dbm, seed=seed)
    without_link = RespirationSensingLink(subject=subject, metasurface=None,
                                          tx_power_dbm=tx_power_dbm, seed=seed)
    trace_with = with_link.capture(duration_s=duration_s)
    trace_without = without_link.capture(duration_s=duration_s)
    detector = RespirationDetector()
    return RespirationSensingResult(
        true_rate_hz=subject.respiration_rate_hz,
        reading_with=detector.analyse(trace_with),
        reading_without=detector.analyse(trace_without),
        trace_swing_with_db=trace_with.peak_to_peak_db,
        trace_swing_without_db=trace_without.peak_to_peak_db,
    )


def figure23_respiration_sensing(tx_power_mw: float = 5.0,
                                 duration_s: float = 60.0,
                                 seed: int = 11) -> RespirationSensingResult:
    """Fig. 23: respiration sensing at 5 mW with/without the metasurface.

    Legacy shim over the ``fig23`` registry experiment.
    """
    return run_experiment("fig23", tx_power_mw=tx_power_mw,
                          duration_s=duration_s, seed=seed).payload


# ---------------------------------------------------------------------- #
# Sec. 7 / conclusion — dense-deployment scheduling and access control
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeploymentSchedulingResult:
    """One epoch of every scheduling strategy over one fleet.

    The Sec. 7 comparison the paper sketches as "polarization reuse":
    ``results`` maps each strategy of
    :data:`repro.api.fleet.SCHEDULE_STRATEGIES` to its
    :class:`~repro.network.scheduler.ScheduleResult`.
    """

    spec: "FleetSpec"
    epoch_duration_s: float
    results: Dict[str, "ScheduleResult"]

    def result_for(self, strategy: str) -> "ScheduleResult":
        """One strategy's schedule (raises ``KeyError`` when unknown)."""
        if strategy not in self.results:
            raise KeyError(f"no schedule for strategy {strategy!r}; ran "
                           f"{sorted(self.results)}")
        return self.results[strategy]

    @property
    def best_surface_strategy(self) -> str:
        """The surface-using strategy with the highest net throughput."""
        surface_strategies = [name for name in self.results
                              if name != "no-surface"]
        return max(surface_strategies,
                   key=lambda name: self.results[name].total_throughput_mbps)

    @property
    def reuse_throughput_gain_mbps(self) -> float:
        """Polarization reuse's net-throughput gain over no surface."""
        return (self.results["polarization-reuse"].total_throughput_mbps -
                self.results["no-surface"].total_throughput_mbps)

    @property
    def reuse_retune_savings(self) -> int:
        """Retunes saved per epoch by clustering vs per-station tuning."""
        return (self.results["per-station"].retune_count -
                self.results["polarization-reuse"].retune_count)

    def rows(self) -> List[List]:
        """Table rows (strategy, throughput, worst rate, fairness,
        retunes) in the benchmark's standard format."""
        return [
            [name, result.total_throughput_mbps,
             result.worst_station_rate_mbps, result.fairness,
             result.retune_count]
            for name, result in self.results.items()
        ]


def _scheduling_comparison(spec: "FleetSpec",
                           epoch_duration_s: float,
                           bias_search_step_v: float,
                           orientation_tolerance_deg: float
                           ) -> DeploymentSchedulingResult:
    from repro.api.fleet import FleetSession
    session = FleetSession(spec)
    return DeploymentSchedulingResult(
        spec=spec,
        epoch_duration_s=float(epoch_duration_s),
        results=session.schedule_all(
            epoch_duration_s=epoch_duration_s,
            bias_search_step_v=bias_search_step_v,
            orientation_tolerance_deg=orientation_tolerance_deg))


def _summary_sec7_scheduling(payload, params) -> str:
    table = format_table(
        ["strategy", "throughput (Mbit/s)", "worst rate (Mbit/s)",
         "fairness", "retunes"],
        payload.rows(), precision=2,
        title="Sec. 7 - one epoch of every scheduling strategy "
              f"({len(payload.spec.stations)} stations)")
    return (f"{table}\n\n"
            f"best surface strategy      : {payload.best_surface_strategy}\n"
            "reuse gain over no surface : "
            f"{payload.reuse_throughput_gain_mbps:.2f} Mbit/s\n"
            f"retunes saved by reuse     : {payload.reuse_retune_savings}")


def _check_sec7_scheduling(payload, params) -> None:
    from repro.api.fleet import SCHEDULE_STRATEGIES
    assert set(payload.results) == set(SCHEDULE_STRATEGIES)
    for result in payload.results.values():
        assert 0.0 <= result.fairness <= 1.0
    assert payload.reuse_throughput_gain_mbps > 0.0


@experiment(
    "sec7_scheduling",
    title="Sec. 7 — TDMA scheduling strategies over a dense fleet",
    tags=("table", "network"),
    params=(Param("station_count", "int", 8, "stations in the office fleet"),
            Param("seed", "int", 42, "fleet placement seed"),
            Param("epoch_duration_s", "float", 300.0, "epoch length (s)"),
            Param("bias_search_step_v", "float", 5.0,
                  "bias grid step of the utility search (V)"),
            Param("orientation_tolerance_deg", "float", 20.0,
                  "clustering tolerance for polarization reuse (deg)")),
    scenarios=("fleet",),
    axes=("tx_orientation",),
    modules=("api", "channel", "devices", "network"),
    smoke={"station_count": 4},
    summarize=_summary_sec7_scheduling, check=_check_sec7_scheduling)
def _run_sec7_scheduling(station_count: int, seed: int,
                         epoch_duration_s: float,
                         bias_search_step_v: float,
                         orientation_tolerance_deg: float
                         ) -> DeploymentSchedulingResult:
    from repro.api.fleet import FleetSpec
    spec = FleetSpec.office(station_count=station_count, seed=seed)
    return _scheduling_comparison(spec, epoch_duration_s,
                                  bias_search_step_v,
                                  orientation_tolerance_deg)


def deployment_scheduling_comparison(
        spec: Optional["FleetSpec"] = None,
        epoch_duration_s: float = 300.0,
        bias_search_step_v: float = 5.0,
        orientation_tolerance_deg: float = 20.0,
        station_count: int = 8,
        seed: int = 42) -> DeploymentSchedulingResult:
    """Sec. 7 deployment comparison: one epoch of every strategy.

    Legacy shim over the ``sec7_scheduling`` registry experiment.  When
    an explicit ``spec`` is given the comparison runs directly on it
    (fleet specs are richer than the registry's office-fleet schema);
    otherwise the registry's reproducible office fleet is used.
    """
    if spec is not None:
        return _scheduling_comparison(spec, epoch_duration_s,
                                      bias_search_step_v,
                                      orientation_tolerance_deg)
    return run_experiment(
        "sec7_scheduling", station_count=station_count, seed=seed,
        epoch_duration_s=epoch_duration_s,
        bias_search_step_v=bias_search_step_v,
        orientation_tolerance_deg=orientation_tolerance_deg).payload


@dataclass(frozen=True)
class AccessIsolationResult:
    """Access-control isolation achieved for every ordered station pair."""

    spec: "FleetSpec"
    pairs: Tuple[Tuple[str, str], ...]
    isolation_db: Tuple[float, ...]
    improvement_db: Tuple[float, ...]

    @property
    def best_pair(self) -> Tuple[str, str]:
        """The station pair the surface isolates best."""
        return self.pairs[int(np.argmax(self.isolation_db))]

    @property
    def max_isolation_db(self) -> float:
        """Best intended-over-unauthorised power margin achieved."""
        return float(max(self.isolation_db))

    @property
    def mean_improvement_db(self) -> float:
        """Mean isolation improvement over the no-surface baseline."""
        return float(np.mean(self.improvement_db))


def _access_isolation(spec: "FleetSpec", step_v: float) -> AccessIsolationResult:
    from repro.api.fleet import FleetSession
    session = FleetSession(spec)
    levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
    vx_grid, vy_grid = np.meshgrid(levels, levels, indexing="ij")
    rssi = session.measure_grid(vx_grid.ravel(), vy_grid.ravel())
    baseline = session.baseline_rssi_dbm()
    pairs: List[Tuple[str, str]] = []
    isolation: List[float] = []
    improvement: List[float] = []
    for i, intended in enumerate(session.station_names):
        for j, unauthorized in enumerate(session.station_names):
            if i == j:
                continue
            margin = rssi[i] - rssi[j]
            best = float(margin[int(np.argmax(margin))])
            pairs.append((intended, unauthorized))
            isolation.append(best)
            improvement.append(best - float(baseline[i] - baseline[j]))
    return AccessIsolationResult(
        spec=spec, pairs=tuple(pairs), isolation_db=tuple(isolation),
        improvement_db=tuple(improvement))


def _summary_sec7_access(payload, params) -> str:
    rows = [[f"{intended} -> {unauthorized}", isolation, improvement]
            for (intended, unauthorized), isolation, improvement in zip(
                payload.pairs, payload.isolation_db, payload.improvement_db)]
    table = format_table(
        ["pair (intended -> unauthorised)", "isolation (dB)",
         "improvement (dB)"],
        rows, precision=1,
        title="Sec. 7 - polarization access control over station pairs")
    best = payload.best_pair
    return (f"{table}\n\n"
            f"best isolated pair : {best[0]} -> {best[1]} "
            f"({payload.max_isolation_db:.1f} dB)\n"
            "mean improvement   : "
            f"{payload.mean_improvement_db:.1f} dB over no surface")


def _check_sec7_access(payload, params) -> None:
    station_count = len(payload.spec.stations)
    assert len(payload.pairs) == station_count * (station_count - 1)
    assert payload.max_isolation_db > 0.0
    assert payload.mean_improvement_db > 0.0


@experiment(
    "sec7_access",
    title="Sec. 7 — polarization access control over every station pair",
    tags=("table", "network"),
    params=(Param("station_count", "int", 4, "stations in the office fleet"),
            Param("seed", "int", 42, "fleet placement seed"),
            Param("step_v", "float", 5.0, "bias grid step (V)")),
    scenarios=("fleet",),
    axes=("tx_orientation",),
    modules=("api", "channel", "network"),
    smoke={"station_count": 3, "step_v": 7.5},
    summarize=_summary_sec7_access, check=_check_sec7_access)
def _run_sec7_access(station_count: int, seed: int,
                     step_v: float) -> AccessIsolationResult:
    from repro.api.fleet import FleetSpec
    spec = FleetSpec.office(station_count=station_count, seed=seed)
    return _access_isolation(spec, step_v)


def deployment_access_isolation(
        spec: Optional["FleetSpec"] = None,
        step_v: float = 5.0,
        station_count: int = 4,
        seed: int = 42) -> AccessIsolationResult:
    """Access-control sweep over every ordered pair of fleet stations.

    Legacy shim over the ``sec7_access`` registry experiment; explicit
    ``spec`` objects run directly (see
    :func:`deployment_scheduling_comparison`).
    """
    if spec is not None:
        return _access_isolation(spec, step_v)
    return run_experiment("sec7_access", station_count=station_count,
                          seed=seed, step_v=step_v).payload


__all__ = [
    "TABLE1_VOLTAGES_V",
    "TRANSMISSIVE_DISTANCES_CM",
    "REFLECTIVE_DISTANCES_CM",
    "FIG17_FREQUENCIES_HZ",
    "FIG18_19_TX_POWERS_MW",
    "GAIN_SURFACE_FREQUENCIES_HZ",
    "GAIN_SURFACE_DISTANCES_M",
    "COVERAGE_MAP_TX_POWERS_DBM",
    "COVERAGE_MAP_DISTANCES_M",
    "MismatchImpactResult",
    "figure2_mismatch_impact",
    "EfficiencyCurve",
    "figure8_to_10_material_designs",
    "VoltageEfficiencyResult",
    "figure11_voltage_efficiency",
    "RotationTableResult",
    "table1_rotation_degrees",
    "RotationEstimationResult",
    "figure12_rotation_estimation",
    "HeatmapResult",
    "Figure15Result",
    "figure15_voltage_heatmaps",
    "GainVsDistanceResult",
    "figure16_transmissive_gain",
    "FrequencySweepResult",
    "figure17_frequency_sweep",
    "CapacityVsPowerResult",
    "figure18_19_txpower_capacity",
    "IoTDeviceResult",
    "figure20_iot_device_pdf",
    "iot_device_families",
    "figure21_reflective_heatmaps",
    "ReflectiveGainResult",
    "figure22_reflective_gain",
    "GainSurfaceResult",
    "gain_surface_frequency_distance",
    "CoverageMapResult",
    "coverage_map_txpower_distance",
    "RespirationSensingResult",
    "figure23_respiration_sensing",
    "DeploymentSchedulingResult",
    "deployment_scheduling_comparison",
    "AccessIsolationResult",
    "deployment_access_isolation",
]
