"""Per-figure experiment runners (paper evaluation, Sec. 5 plus design figs).

Every table and figure of the paper's evaluation has one runner here
that regenerates its rows/series from the simulation.  Runners return
plain result dataclasses so tests, benchmarks and examples can consume
them uniformly; the benchmark harness prints them with
:mod:`repro.experiments.reporting`.

Index (see DESIGN.md for the full mapping):

* :func:`figure2_mismatch_impact`       — Fig. 2a/2b
* :func:`figure8_to_10_material_designs`— Figs. 8, 9, 10
* :func:`figure11_voltage_efficiency`   — Fig. 11
* :func:`table1_rotation_degrees`       — Table 1
* :func:`figure12_rotation_estimation`  — Fig. 12
* :func:`figure15_voltage_heatmaps`     — Fig. 15 (a-g) + 15h
* :func:`figure16_transmissive_gain`    — Fig. 16
* :func:`figure17_frequency_sweep`      — Fig. 17
* :func:`figure18_19_txpower_capacity`  — Figs. 18 and 19
* :func:`figure20_iot_device_pdf`       — Fig. 20
* :func:`figure21_reflective_heatmaps`  — Fig. 21
* :func:`figure22_reflective_gain`      — Fig. 22
* :func:`figure23_respiration_sensing`  — Fig. 23

Beyond the published panels, the N-D grid engine powers two joint
scenario runners: :func:`gain_surface_frequency_distance` (a frequency
x distance gain surface) and :func:`coverage_map_txpower_distance` (a
tx-power x distance capacity coverage map), and the fleet API powers
the Sec. 7 deployment runners:
:func:`deployment_scheduling_comparison` (every TDMA strategy over one
fleet-stacked epoch) and :func:`deployment_access_isolation`
(polarization access control over every station pair).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.backend import ReceiverSweepBackend
from repro.channel.capacity import spectral_efficiency_from_powers
from repro.channel.link import WirelessLink
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.core.controller import CentralizedController, VoltageSweepConfig
from repro.core.llama import LlamaSystem
from repro.devices.wifi import wifi_rate_for_rssi_mbps
from repro.experiments.scenarios import (
    ReflectiveScenario,
    TransmissiveScenario,
    iot_ble_scenario,
    iot_wifi_scenario,
)
from repro.channel.grid import ProbeGrid
from repro.experiments.sweeps import (
    grid_sweep,
    multi_axis_sweep,
    optimize_link,
    voltage_grid_sweep,
)
from repro.metasurface.design import (
    MetasurfaceDesign,
    fr4_naive_design,
    llama_design,
    rogers_reference_design,
)
from repro.radio.transceiver import SimulatedReceiver
from repro.sensing.detector import RespirationDetector, RespirationReading
from repro.sensing.respiration import BreathingSubject, RespirationSensingLink

#: Voltage grid used for the published Table 1.
TABLE1_VOLTAGES_V = (2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0)

#: Tx-Rx distances (cm) used in the transmissive experiments (Fig. 15/16).
TRANSMISSIVE_DISTANCES_CM = (24, 30, 36, 42, 48, 54, 60)

#: Tx-to-surface distances (cm) used in the reflective experiments
#: (Fig. 21/22).
REFLECTIVE_DISTANCES_CM = (24, 30, 36, 42, 48, 54, 60, 66)


# ---------------------------------------------------------------------- #
# Fig. 2 — polarization-mismatch impact on commodity IoT links
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MismatchImpactResult:
    """RSSI distributions for matched vs mismatched commodity links."""

    technology: str
    matched_rssi_dbm: Tuple[float, ...]
    mismatched_rssi_dbm: Tuple[float, ...]

    @property
    def matched_mean_dbm(self) -> float:
        """Mean matched RSSI."""
        return float(np.mean(self.matched_rssi_dbm))

    @property
    def mismatched_mean_dbm(self) -> float:
        """Mean mismatched RSSI."""
        return float(np.mean(self.mismatched_rssi_dbm))

    @property
    def mismatch_penalty_db(self) -> float:
        """Mean power lost to polarization mismatch."""
        return self.matched_mean_dbm - self.mismatched_mean_dbm


def _rssi_samples(configuration, sample_count: int, seed: int) -> Tuple[float, ...]:
    """Collect noisy RSSI readings from a link configuration."""
    link = WirelessLink(configuration)
    receiver = SimulatedReceiver(link, seed=seed)
    return tuple(receiver.measure_power_dbm(duration_s=0.002)
                 for _ in range(sample_count))


def figure2_mismatch_impact(sample_count: int = 200,
                            seed: int = 2021) -> Dict[str, MismatchImpactResult]:
    """Fig. 2: matched vs mismatched RSSI PDFs for Wi-Fi and BLE links."""
    results: Dict[str, MismatchImpactResult] = {}
    wifi_matched, _, _ = iot_wifi_scenario(mismatched=False, seed=seed)
    wifi_mismatched, _, _ = iot_wifi_scenario(mismatched=True, seed=seed)
    results["wifi"] = MismatchImpactResult(
        technology="802.11g (ESP8266 -> AP)",
        matched_rssi_dbm=_rssi_samples(wifi_matched, sample_count, seed),
        mismatched_rssi_dbm=_rssi_samples(wifi_mismatched, sample_count,
                                          seed + 1),
    )
    ble_matched, _, _ = iot_ble_scenario(mismatched=False, seed=seed)
    ble_mismatched, _, _ = iot_ble_scenario(mismatched=True, seed=seed)
    results["ble"] = MismatchImpactResult(
        technology="BLE (wearable -> Raspberry Pi)",
        matched_rssi_dbm=_rssi_samples(ble_matched, sample_count, seed + 2),
        mismatched_rssi_dbm=_rssi_samples(ble_mismatched, sample_count,
                                          seed + 3),
    )
    return results


# ---------------------------------------------------------------------- #
# Figs. 8-10 — S21 efficiency for the three material designs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EfficiencyCurve:
    """S21 efficiency vs frequency for one design and excitation."""

    design_name: str
    frequencies_hz: Tuple[float, ...]
    efficiency_x_db: Tuple[float, ...]
    efficiency_y_db: Tuple[float, ...]

    def in_band_minimum_db(self, low_hz: float = 2.4e9,
                           high_hz: float = 2.5e9) -> float:
        """Worst efficiency across the ISM band (both excitations)."""
        values = [
            min(x, y) for f, x, y in zip(self.frequencies_hz,
                                         self.efficiency_x_db,
                                         self.efficiency_y_db)
            if low_hz <= f <= high_hz
        ]
        if not values:
            raise ValueError("no sweep points inside the requested band")
        return min(values)

    def bandwidth_above_hz(self, threshold_db: float = -5.0) -> float:
        """Contiguous bandwidth around the centre where both curves stay
        above ``threshold_db``."""
        frequencies = np.asarray(self.frequencies_hz)
        both = np.minimum(np.asarray(self.efficiency_x_db),
                          np.asarray(self.efficiency_y_db))
        center_index = int(np.argmax(both))
        low_index, high_index = center_index, center_index
        while low_index > 0 and both[low_index - 1] >= threshold_db:
            low_index -= 1
        while (high_index < both.size - 1 and
               both[high_index + 1] >= threshold_db):
            high_index += 1
        return float(frequencies[high_index] - frequencies[low_index])


def _efficiency_curve(design: MetasurfaceDesign,
                      frequencies_hz: Sequence[float],
                      vx: float = 8.0, vy: float = 8.0) -> EfficiencyCurve:
    # Figs. 8-10 are HFSS simulations of the idealised structure.
    surface = design.build(prototype=False)
    eff_x = tuple(surface.transmission_efficiency_db(f, vx, vy, "x")
                  for f in frequencies_hz)
    eff_y = tuple(surface.transmission_efficiency_db(f, vx, vy, "y")
                  for f in frequencies_hz)
    return EfficiencyCurve(design_name=design.name,
                           frequencies_hz=tuple(frequencies_hz),
                           efficiency_x_db=eff_x, efficiency_y_db=eff_y)


def figure8_to_10_material_designs(
        frequency_count: int = 81) -> Dict[str, EfficiencyCurve]:
    """Figs. 8-10: S21 efficiency of the three substrate/geometry designs."""
    frequencies = np.linspace(2.0e9, 2.8e9, frequency_count)
    return {
        "fig8_rogers": _efficiency_curve(rogers_reference_design(), frequencies),
        "fig9_fr4_naive": _efficiency_curve(fr4_naive_design(), frequencies),
        "fig10_fr4_optimized": _efficiency_curve(llama_design(), frequencies),
    }


# ---------------------------------------------------------------------- #
# Fig. 11 — efficiency vs frequency under different bias voltages
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class VoltageEfficiencyResult:
    """Efficiency-vs-frequency curves for a set of Vy values (Vx fixed)."""

    vx: float
    frequencies_hz: Tuple[float, ...]
    curves_db: Dict[float, Tuple[float, ...]]

    def worst_in_band_db(self, low_hz: float = 2.4e9,
                         high_hz: float = 2.5e9) -> float:
        """Worst in-band efficiency over all bias settings."""
        worst = 0.0
        for curve in self.curves_db.values():
            for f, value in zip(self.frequencies_hz, curve):
                if low_hz <= f <= high_hz:
                    worst = min(worst, value)
        return worst


def figure11_voltage_efficiency(vx: float = 8.0,
                                vy_values: Sequence[float] = (2, 3, 4, 5, 6, 10, 15),
                                frequency_count: int = 41) -> VoltageEfficiencyResult:
    """Fig. 11: S21 efficiency under different bias-voltage combinations."""
    # Like Figs. 8-10 this is a simulation of the idealised structure.
    surface = llama_design().build(prototype=False)
    frequencies = tuple(np.linspace(2.0e9, 2.8e9, frequency_count))
    curves: Dict[float, Tuple[float, ...]] = {}
    for vy in vy_values:
        curves[float(vy)] = tuple(
            surface.transmission_efficiency_db(f, vx, float(vy), "x")
            for f in frequencies)
    return VoltageEfficiencyResult(vx=vx, frequencies_hz=frequencies,
                                   curves_db=curves)


# ---------------------------------------------------------------------- #
# Table 1 — simulated rotation degrees
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RotationTableResult:
    """Rotation magnitude for every (Vx, Vy) pair of the published table."""

    voltages_v: Tuple[float, ...]
    rotation_deg: Dict[Tuple[float, float], float]

    @property
    def maximum_deg(self) -> float:
        """Largest rotation in the table."""
        return max(self.rotation_deg.values())

    @property
    def minimum_deg(self) -> float:
        """Smallest rotation in the table."""
        return min(self.rotation_deg.values())

    def row(self, vy: float) -> List[float]:
        """One table row (fixed Vy, sweeping Vx) as the paper prints it."""
        return [self.rotation_deg[(vx, vy)] for vx in self.voltages_v]


def table1_rotation_degrees(
        voltages_v: Sequence[float] = TABLE1_VOLTAGES_V,
        frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ) -> RotationTableResult:
    """Table 1: simulated polarization rotation vs (Vx, Vy)."""
    # Table 1 is an HFSS-style simulation of the idealised structure, so
    # the stated voltages act directly on the varactor junctions.
    surface = llama_design().build(prototype=False)
    rotation: Dict[Tuple[float, float], float] = {}
    for vx in voltages_v:
        for vy in voltages_v:
            rotation[(float(vx), float(vy))] = abs(
                surface.rotation_angle_deg(frequency_hz, float(vx), float(vy)))
    return RotationTableResult(voltages_v=tuple(float(v) for v in voltages_v),
                               rotation_deg=rotation)


# ---------------------------------------------------------------------- #
# Fig. 12 — rotation-angle estimation procedure
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RotationEstimationResult:
    """Output of the Sec. 3.4 estimation on the matched benchmark link."""

    reference_orientation_deg: float
    min_rotation_deg: float
    max_rotation_deg: float
    power_slope_sign: float


def figure12_rotation_estimation(distance_m: float = 0.42) -> RotationEstimationResult:
    """Fig. 12: estimate the min/max rotation angle from power sweeps."""
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    rx_orientation_deg=0.0)
    system = LlamaSystem(scenario.configuration(),
                         sweep_config=VoltageSweepConfig(iterations=2,
                                                         switches_per_axis=5))
    estimate = system.estimate_rotation(orientation_step_deg=3.0)
    # Fig. 12(a): received *linear* power falls as the orientation
    # difference grows; report the sign of that slope as a sanity check.
    orientations = np.arange(0.0, 91.0, 15.0)
    powers = []
    for angle in orientations:
        rotated = scenario.configuration().without_surface()
        rotated = replace(rotated,
                          rx_antenna=rotated.rx_antenna.rotated(angle))
        powers.append(10.0 ** (WirelessLink(rotated).received_power_dbm() / 10.0))
    slope = np.polyfit(orientations, powers, 1)[0]
    return RotationEstimationResult(
        reference_orientation_deg=estimate.reference_orientation_deg,
        min_rotation_deg=estimate.min_rotation_deg,
        max_rotation_deg=estimate.max_rotation_deg,
        power_slope_sign=float(np.sign(slope)),
    )


# ---------------------------------------------------------------------- #
# Fig. 15 — transmissive voltage heatmaps and rotation range vs distance
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeatmapResult:
    """A received-power heatmap over the (Vx, Vy) grid at one distance."""

    distance_cm: float
    grid_dbm: Dict[Tuple[float, float], float]

    @property
    def best_point(self) -> Tuple[float, float, float]:
        """(vx, vy, power) of the strongest grid cell."""
        (vx, vy), power = max(self.grid_dbm.items(), key=lambda item: item[1])
        return (vx, vy, power)

    @property
    def dynamic_range_db(self) -> float:
        """Spread between the strongest and weakest grid cell."""
        powers = list(self.grid_dbm.values())
        return max(powers) - min(powers)


@dataclass(frozen=True)
class Figure15Result:
    """Fig. 15: per-distance heatmaps plus the rotation range (15h)."""

    heatmaps: Tuple[HeatmapResult, ...]
    rotation_ranges_deg: Dict[float, Tuple[float, float]]

    def heatmap_for(self, distance_cm: float) -> HeatmapResult:
        """Heatmap at one of the measured distances."""
        for heatmap in self.heatmaps:
            if math.isclose(heatmap.distance_cm, distance_cm):
                return heatmap
        raise KeyError(f"no heatmap for {distance_cm} cm")


def figure15_voltage_heatmaps(
        distances_cm: Sequence[float] = TRANSMISSIVE_DISTANCES_CM,
        voltage_step_v: float = 5.0) -> Figure15Result:
    """Fig. 15: received-power heatmaps vs (Vx, Vy) at each Tx-Rx distance."""
    heatmaps: List[HeatmapResult] = []
    rotation_ranges: Dict[float, Tuple[float, float]] = {}
    for distance_cm in distances_cm:
        scenario = TransmissiveScenario(tx_rx_distance_m=distance_cm / 100.0)
        link = scenario.link()
        grid = voltage_grid_sweep(link, step_v=voltage_step_v)
        heatmaps.append(HeatmapResult(distance_cm=float(distance_cm),
                                      grid_dbm=grid))
        # Fig. 15h reports the rotation range realised over the full
        # 0-30 V terminal sweep of the prototype.
        surface = scenario.metasurface
        rotation_ranges[float(distance_cm)] = surface.rotation_range_deg(
            scenario.frequency_hz, voltage_low_v=0.0, voltage_high_v=30.0)
    return Figure15Result(heatmaps=tuple(heatmaps),
                          rotation_ranges_deg=rotation_ranges)


# ---------------------------------------------------------------------- #
# Fig. 16 — transmissive received power with/without the surface
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GainVsDistanceResult:
    """Received power with/without the surface across distances."""

    distances_cm: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-distance power improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def max_gain_db(self) -> float:
        """Best improvement across the sweep (paper: up to 15 dB)."""
        return max(self.gains_db)

    @property
    def range_extension_factor(self) -> float:
        """Friis-implied range extension at the best improvement."""
        return 10.0 ** (self.max_gain_db / 20.0)


def figure16_transmissive_gain(
        distances_cm: Sequence[float] = TRANSMISSIVE_DISTANCES_CM,
        exhaustive: bool = False) -> GainVsDistanceResult:
    """Fig. 16: transmissive received power with/without the metasurface.

    Driven by the vectorized sweep engine: one scenario covers the whole
    distance axis, with per-point optimization batched across distances.
    """
    distances_m = np.asarray(distances_cm, dtype=float) / 100.0
    scenario = TransmissiveScenario(tx_rx_distance_m=float(distances_m[0]))
    points = multi_axis_sweep("distance", distances_m, scenario.link(),
                              baseline_link=scenario.baseline_link(),
                              exhaustive=exhaustive)
    return GainVsDistanceResult(
        distances_cm=tuple(float(d) for d in distances_cm),
        power_with_dbm=tuple(point.power_with_dbm for point in points),
        power_without_dbm=tuple(point.power_without_dbm for point in points),
    )


# ---------------------------------------------------------------------- #
# Fig. 17 — received power vs operating frequency
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FrequencySweepResult:
    """Received power with/without the surface across the ISM band."""

    frequencies_hz: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-frequency improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def min_gain_db(self) -> float:
        """Worst-case improvement across the band (paper: > 10 dB)."""
        return min(self.gains_db)


def figure17_frequency_sweep(
        frequencies_hz: Optional[Sequence[float]] = None,
        distance_m: float = 0.42) -> FrequencySweepResult:
    """Fig. 17: power improvement across 2.40-2.50 GHz.

    Driven by the vectorized sweep engine: the whole band is one batched
    frequency axis, with the per-frequency Algorithm 1 optimizations
    probed together.
    """
    if frequencies_hz is None:
        frequencies_hz = np.arange(2.40e9, 2.501e9, 0.01e9)
    frequencies = np.asarray(frequencies_hz, dtype=float)
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    frequency_hz=float(frequencies[0]))
    points = multi_axis_sweep("frequency", frequencies, scenario.link(),
                              baseline_link=scenario.baseline_link())
    return FrequencySweepResult(
        frequencies_hz=tuple(float(f) for f in frequencies_hz),
        power_with_dbm=tuple(point.power_with_dbm for point in points),
        power_without_dbm=tuple(point.power_without_dbm for point in points),
    )


# ---------------------------------------------------------------------- #
# Figs. 18 and 19 — capacity vs transmit power (clean chamber / multipath)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CapacityVsPowerResult:
    """Spectral efficiency vs transmit power for one antenna/environment."""

    antenna_kind: str
    absorber: bool
    tx_powers_mw: Tuple[float, ...]
    efficiency_with: Tuple[float, ...]
    efficiency_without: Tuple[float, ...]

    @property
    def improvements(self) -> Tuple[float, ...]:
        """Per-power capacity improvement (bit/s/Hz)."""
        return tuple(w - wo for w, wo in zip(self.efficiency_with,
                                             self.efficiency_without))

    def crossover_tx_power_mw(self) -> Optional[float]:
        """Lowest transmit power at which the surface starts helping.

        Returns ``None`` when the surface helps at every probed power.
        The paper's Fig. 19a places this crossover near 2 mW for omni
        antennas in a multipath-rich room.
        """
        for power_mw, improvement in zip(self.tx_powers_mw, self.improvements):
            if improvement > 0:
                previous_hurt = any(
                    other <= 0 for p, other in zip(self.tx_powers_mw,
                                                   self.improvements)
                    if p < power_mw)
                return power_mw if previous_hurt else None
        return None


#: Noise-plus-interference floor used for the capacity experiments.  An
#: ordinary laboratory's 2.4 GHz band is interference limited (co-channel
#: Wi-Fi, Bluetooth) whereas the absorber-covered chamber is close to the
#: receiver's own floor.  The values are referenced to the short-range,
#: high-gain setups of Figs. 18-19 and are what make the low-transmit-
#: power regime measurement-noise limited, as the paper observes.
LAB_INTERFERENCE_FLOOR_DBM = -42.0
CHAMBER_NOISE_FLOOR_DBM = -85.0


def _capacity_vs_power(antenna_kind: str, absorber: bool,
                       tx_powers_mw: Sequence[float],
                       distance_m: float = 0.42,
                       seed: int = 5) -> CapacityVsPowerResult:
    floor_dbm = (CHAMBER_NOISE_FLOOR_DBM if absorber
                 else LAB_INTERFERENCE_FLOOR_DBM)
    tx_powers_dbm = np.array([10.0 * math.log10(power_mw)
                              for power_mw in tx_powers_mw])
    scenario = TransmissiveScenario(tx_rx_distance_m=distance_m,
                                    tx_power_dbm=float(tx_powers_dbm[0]),
                                    antenna_kind=antenna_kind,
                                    absorber=absorber)
    configuration = replace(scenario.configuration(),
                            interference_floor_dbm=floor_dbm)
    link = WirelessLink(configuration)
    baseline_link = WirelessLink(configuration.without_surface())
    noise = link.noise_power_dbm()
    # The controller only sees noisy power reports; at low transmit
    # power the sweep differences sink below the measurement floor
    # and the chosen bias pair degrades towards random — this is the
    # mechanism behind the paper's ~2 mW crossover for omni antennas
    # in multipath (Fig. 19a).  The whole transmit-power axis is swept
    # at once: the sweep backend draws one noise realisation per probe
    # and shares it across axis points, replaying the sample streams of
    # the per-point receivers (identically seeded) the scalar loop
    # would construct.
    receiver = SimulatedReceiver(link, seed=seed)
    controller = CentralizedController(
        VoltageSweepConfig(iterations=2, switches_per_axis=5))
    sweep = controller.coarse_to_fine_sweep_multi(
        ReceiverSweepBackend(receiver, duration_s=0.0002),
        "tx_power", tx_powers_dbm)
    achieved_powers = link.received_power_dbm_sweep(
        "tx_power", tx_powers_dbm, vx=sweep.best_vx, vy=sweep.best_vy)
    baseline_powers = baseline_link.received_power_dbm_sweep(
        "tx_power", tx_powers_dbm)
    efficiency_with = spectral_efficiency_from_powers(achieved_powers, noise)
    efficiency_without = spectral_efficiency_from_powers(baseline_powers,
                                                         noise)
    return CapacityVsPowerResult(
        antenna_kind=antenna_kind,
        absorber=absorber,
        tx_powers_mw=tuple(float(p) for p in tx_powers_mw),
        efficiency_with=tuple(float(e) for e in efficiency_with),
        efficiency_without=tuple(float(e) for e in efficiency_without),
    )


def figure18_19_txpower_capacity(
        tx_powers_mw: Sequence[float] = (0.002, 0.02, 0.2, 2.0, 20.0, 200.0, 1000.0),
        distance_m: float = 0.42) -> Dict[str, CapacityVsPowerResult]:
    """Figs. 18 and 19: capacity vs transmit power.

    Returns four series: omni/directional antennas in the absorber-covered
    chamber (Fig. 18a/b) and in the multipath-rich laboratory
    (Fig. 19a/b).
    """
    return {
        "fig18a_omni_clean": _capacity_vs_power("omni", True, tx_powers_mw,
                                                distance_m),
        "fig18b_directional_clean": _capacity_vs_power("directional", True,
                                                       tx_powers_mw, distance_m),
        "fig19a_omni_multipath": _capacity_vs_power("omni", False,
                                                    tx_powers_mw, distance_m),
        "fig19b_directional_multipath": _capacity_vs_power(
            "directional", False, tx_powers_mw, distance_m),
    }


# ---------------------------------------------------------------------- #
# Fig. 20 — commodity Wi-Fi link with/without the surface
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class IoTDeviceResult:
    """RSSI distributions of the ESP8266 link with/without the surface."""

    with_surface_rssi_dbm: Tuple[float, ...]
    without_surface_rssi_dbm: Tuple[float, ...]
    optimal_bias_v: Tuple[float, float]

    @property
    def improvement_db(self) -> float:
        """Mean RSSI improvement (paper: ~10 dB)."""
        return (float(np.mean(self.with_surface_rssi_dbm)) -
                float(np.mean(self.without_surface_rssi_dbm)))

    @property
    def throughput_improvement_mbps(self) -> float:
        """802.11g PHY-rate improvement unlocked by the RSSI gain."""
        with_rate = wifi_rate_for_rssi_mbps(
            float(np.mean(self.with_surface_rssi_dbm)))
        without_rate = wifi_rate_for_rssi_mbps(
            float(np.mean(self.without_surface_rssi_dbm)))
        return float(with_rate - without_rate)


def figure20_iot_device_pdf(sample_count: int = 200,
                            distance_m: float = 3.0,
                            seed: int = 2021) -> IoTDeviceResult:
    """Fig. 20: ESP8266 Wi-Fi link RSSI with/without the metasurface."""
    with_config, _station, _ap = iot_wifi_scenario(
        mismatched=True, distance_m=distance_m, with_surface=True, seed=seed)
    without_config, _station, _ap = iot_wifi_scenario(
        mismatched=True, distance_m=distance_m, with_surface=False, seed=seed)
    with_link = WirelessLink(with_config)
    best_power, best_vx, best_vy = optimize_link(with_link)
    receiver_with = SimulatedReceiver(with_link, seed=seed)
    receiver_without = SimulatedReceiver(WirelessLink(without_config),
                                         seed=seed + 1)
    with_samples = tuple(
        receiver_with.measure_power_dbm(vx=best_vx, vy=best_vy,
                                        duration_s=0.002)
        for _ in range(sample_count))
    without_samples = tuple(
        receiver_without.measure_power_dbm(duration_s=0.002)
        for _ in range(sample_count))
    return IoTDeviceResult(with_surface_rssi_dbm=with_samples,
                           without_surface_rssi_dbm=without_samples,
                           optimal_bias_v=(best_vx, best_vy))


# ---------------------------------------------------------------------- #
# Fig. 21 — reflective voltage heatmaps
# ---------------------------------------------------------------------- #
def figure21_reflective_heatmaps(
        distances_cm: Sequence[float] = REFLECTIVE_DISTANCES_CM,
        voltage_step_v: float = 5.0) -> Tuple[HeatmapResult, ...]:
    """Fig. 21: reflective received-power heatmaps vs Tx-surface distance."""
    heatmaps: List[HeatmapResult] = []
    for distance_cm in distances_cm:
        scenario = ReflectiveScenario(surface_distance_m=distance_cm / 100.0)
        grid = voltage_grid_sweep(scenario.link(), step_v=voltage_step_v)
        heatmaps.append(HeatmapResult(distance_cm=float(distance_cm),
                                      grid_dbm=grid))
    return tuple(heatmaps)


# ---------------------------------------------------------------------- #
# Fig. 22 — reflective power and capacity improvement
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReflectiveGainResult:
    """Reflective received power and capacity with/without the surface."""

    distances_cm: Tuple[float, ...]
    power_with_dbm: Tuple[float, ...]
    power_without_dbm: Tuple[float, ...]
    efficiency_with: Tuple[float, ...]
    efficiency_without: Tuple[float, ...]

    @property
    def gains_db(self) -> Tuple[float, ...]:
        """Per-distance power improvement."""
        return tuple(w - wo for w, wo in zip(self.power_with_dbm,
                                             self.power_without_dbm))

    @property
    def max_gain_db(self) -> float:
        """Best reflective power improvement (paper: up to 17 dB)."""
        return max(self.gains_db)

    @property
    def max_capacity_improvement(self) -> float:
        """Best spectral-efficiency improvement (bit/s/Hz)."""
        return max(w - wo for w, wo in zip(self.efficiency_with,
                                           self.efficiency_without))


def figure22_reflective_gain(
        distances_cm: Sequence[float] = REFLECTIVE_DISTANCES_CM,
        exhaustive: bool = False) -> ReflectiveGainResult:
    """Fig. 22: reflective power/capacity with and without the surface.

    Driven by the vectorized sweep engine: the surface-offset axis is
    one batched distance sweep (with the aimed-antenna direct-path
    roll-off recomputed per offset, as the scalar per-point loop did),
    followed by one vectorized Shannon evaluation.
    """
    distances_m = np.asarray(distances_cm, dtype=float) / 100.0
    scenario = ReflectiveScenario(surface_distance_m=float(distances_m[0]))
    # The noise floor depends only on bandwidth/noise figure, not on the
    # swept distance, so one link's floor covers the whole axis.
    noise = scenario.link().noise_power_dbm()
    points = multi_axis_sweep("distance", distances_m, scenario.link(),
                              baseline_link=scenario.baseline_link(),
                              exhaustive=exhaustive)
    power_with = np.array([point.power_with_dbm for point in points])
    power_without = np.array([point.power_without_dbm for point in points])
    eff_with = spectral_efficiency_from_powers(power_with, noise)
    eff_without = spectral_efficiency_from_powers(power_without, noise)
    return ReflectiveGainResult(
        distances_cm=tuple(float(d) for d in distances_cm),
        power_with_dbm=tuple(float(p) for p in power_with),
        power_without_dbm=tuple(float(p) for p in power_without),
        efficiency_with=tuple(float(e) for e in eff_with),
        efficiency_without=tuple(float(e) for e in eff_without),
    )


# ---------------------------------------------------------------------- #
# Two-axis scenario runners (the N-D grid engine's figure plane)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GainSurfaceResult:
    """Optimized gain over a joint frequency x distance grid.

    Every 2-D array is indexed ``[frequency, distance]``; the surface
    is optimized per cell (Algorithm 1, all cells batched together) and
    compared against the matching no-surface baseline.
    """

    frequencies_hz: Tuple[float, ...]
    distances_m: Tuple[float, ...]
    power_with_dbm: np.ndarray
    power_without_dbm: np.ndarray
    best_vx: np.ndarray
    best_vy: np.ndarray

    @property
    def gain_db(self) -> np.ndarray:
        """Per-cell received-power improvement (dB)."""
        return self.power_with_dbm - self.power_without_dbm

    @property
    def min_gain_db(self) -> float:
        """Worst-case improvement anywhere on the surface."""
        return float(np.min(self.gain_db))

    @property
    def max_gain_db(self) -> float:
        """Best improvement anywhere on the surface."""
        return float(np.max(self.gain_db))


def gain_surface_frequency_distance(
        frequencies_hz: Optional[Sequence[float]] = None,
        distances_m: Optional[Sequence[float]] = None) -> GainSurfaceResult:
    """Joint frequency x distance gain surface (transmissive layout).

    The two-axis generalisation of Figs. 16 and 17: one
    :class:`~repro.channel.grid.ProbeGrid` covers the whole ISM band
    crossed with the transmissive distance range, the per-cell
    Algorithm 1 searches all batched through the grid engine.
    """
    if frequencies_hz is None:
        frequencies_hz = np.arange(2.40e9, 2.501e9, 0.02e9)
    if distances_m is None:
        distances_m = np.asarray(TRANSMISSIVE_DISTANCES_CM, dtype=float) / 100.0
    frequencies = np.asarray(frequencies_hz, dtype=float).ravel()
    distances = np.asarray(distances_m, dtype=float).ravel()
    scenario = TransmissiveScenario(frequency_hz=float(frequencies[0]),
                                    tx_rx_distance_m=float(distances[0]))
    grid = ProbeGrid.product(frequency=frequencies, distance=distances)
    comparison = grid_sweep(grid, scenario.link(),
                            baseline_link=scenario.baseline_link())
    return GainSurfaceResult(
        frequencies_hz=tuple(float(f) for f in frequencies),
        distances_m=tuple(float(d) for d in distances),
        power_with_dbm=comparison.power_with_dbm,
        power_without_dbm=comparison.power_without_dbm,
        best_vx=comparison.best_vx,
        best_vy=comparison.best_vy,
    )


@dataclass(frozen=True)
class CoverageMapResult:
    """Capacity coverage over a joint tx-power x distance grid.

    Every 2-D array is indexed ``[tx_power, distance]``.  A cell is
    "covered" when its spectral efficiency reaches
    ``threshold_bps_hz``; the coverage fractions summarise how much of
    the operating envelope the surface opens up.
    """

    tx_powers_dbm: Tuple[float, ...]
    distances_m: Tuple[float, ...]
    efficiency_with: np.ndarray
    efficiency_without: np.ndarray
    threshold_bps_hz: float

    @property
    def covered_with(self) -> np.ndarray:
        """Boolean coverage map with the surface deployed."""
        return self.efficiency_with >= self.threshold_bps_hz

    @property
    def covered_without(self) -> np.ndarray:
        """Boolean coverage map of the no-surface baseline."""
        return self.efficiency_without >= self.threshold_bps_hz

    @property
    def coverage_fraction_with(self) -> float:
        """Fraction of the grid the surface-assisted link covers."""
        return float(np.mean(self.covered_with))

    @property
    def coverage_fraction_without(self) -> float:
        """Fraction of the grid the baseline link covers."""
        return float(np.mean(self.covered_without))

    @property
    def newly_covered_fraction(self) -> float:
        """Fraction of the grid only the surface-assisted link covers."""
        return float(np.mean(self.covered_with & ~self.covered_without))


def coverage_map_txpower_distance(
        tx_powers_dbm: Optional[Sequence[float]] = None,
        distances_m: Optional[Sequence[float]] = None,
        threshold_bps_hz: float = 2.0,
        antenna_kind: str = "directional",
        absorber: bool = True) -> CoverageMapResult:
    """Joint tx-power x distance coverage map (transmissive layout).

    The two-axis generalisation of the Fig. 18/19 capacity experiments:
    every (transmit power, distance) cell runs Algorithm 1 through the
    grid engine and the resulting powers convert to spectral
    efficiencies against the scenario's noise floor.
    """
    if tx_powers_dbm is None:
        tx_powers_dbm = np.arange(-60.0, 0.1, 10.0)
    if distances_m is None:
        distances_m = np.array([0.3, 1.0, 3.0, 10.0, 30.0])
    tx_powers = np.asarray(tx_powers_dbm, dtype=float).ravel()
    distances = np.asarray(distances_m, dtype=float).ravel()
    floor_dbm = (CHAMBER_NOISE_FLOOR_DBM if absorber
                 else LAB_INTERFERENCE_FLOOR_DBM)
    scenario = TransmissiveScenario(tx_power_dbm=float(tx_powers[0]),
                                    tx_rx_distance_m=float(distances[0]),
                                    antenna_kind=antenna_kind,
                                    absorber=absorber)
    configuration = replace(scenario.configuration(),
                            interference_floor_dbm=floor_dbm)
    link = WirelessLink(configuration)
    baseline_link = WirelessLink(configuration.without_surface())
    noise = link.noise_power_dbm()
    grid = ProbeGrid.product(tx_power=tx_powers, distance=distances)
    comparison = grid_sweep(grid, link, baseline_link=baseline_link)
    return CoverageMapResult(
        tx_powers_dbm=tuple(float(p) for p in tx_powers),
        distances_m=tuple(float(d) for d in distances),
        efficiency_with=spectral_efficiency_from_powers(
            comparison.power_with_dbm, noise),
        efficiency_without=spectral_efficiency_from_powers(
            comparison.power_without_dbm, noise),
        threshold_bps_hz=float(threshold_bps_hz),
    )


# ---------------------------------------------------------------------- #
# Fig. 23 — respiration sensing at low transmit power
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RespirationSensingResult:
    """Detection outcome with and without the metasurface."""

    true_rate_hz: float
    reading_with: RespirationReading
    reading_without: RespirationReading
    trace_swing_with_db: float
    trace_swing_without_db: float

    @property
    def surface_enables_detection(self) -> bool:
        """True when breathing is detected only with the surface present."""
        return self.reading_with.detected and not self.reading_without.detected


def figure23_respiration_sensing(tx_power_mw: float = 5.0,
                                 duration_s: float = 60.0,
                                 seed: int = 11) -> RespirationSensingResult:
    """Fig. 23: respiration sensing at 5 mW with/without the metasurface."""
    subject = BreathingSubject()
    tx_power_dbm = 10.0 * math.log10(tx_power_mw)
    surface = llama_design().build()
    with_link = RespirationSensingLink(subject=subject, metasurface=surface,
                                       tx_power_dbm=tx_power_dbm, seed=seed)
    without_link = RespirationSensingLink(subject=subject, metasurface=None,
                                          tx_power_dbm=tx_power_dbm, seed=seed)
    trace_with = with_link.capture(duration_s=duration_s)
    trace_without = without_link.capture(duration_s=duration_s)
    detector = RespirationDetector()
    return RespirationSensingResult(
        true_rate_hz=subject.respiration_rate_hz,
        reading_with=detector.analyse(trace_with),
        reading_without=detector.analyse(trace_without),
        trace_swing_with_db=trace_with.peak_to_peak_db,
        trace_swing_without_db=trace_without.peak_to_peak_db,
    )


# ---------------------------------------------------------------------- #
# Sec. 7 / conclusion — dense-deployment scheduling and access control
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeploymentSchedulingResult:
    """One epoch of every scheduling strategy over one fleet.

    The Sec. 7 comparison the paper sketches as "polarization reuse":
    ``results`` maps each strategy of
    :data:`repro.api.fleet.SCHEDULE_STRATEGIES` to its
    :class:`~repro.network.scheduler.ScheduleResult`.
    """

    spec: "FleetSpec"
    epoch_duration_s: float
    results: Dict[str, "ScheduleResult"]

    def result_for(self, strategy: str) -> "ScheduleResult":
        """One strategy's schedule (raises ``KeyError`` when unknown)."""
        if strategy not in self.results:
            raise KeyError(f"no schedule for strategy {strategy!r}; ran "
                           f"{sorted(self.results)}")
        return self.results[strategy]

    @property
    def best_surface_strategy(self) -> str:
        """The surface-using strategy with the highest net throughput."""
        surface_strategies = [name for name in self.results
                              if name != "no-surface"]
        return max(surface_strategies,
                   key=lambda name: self.results[name].total_throughput_mbps)

    @property
    def reuse_throughput_gain_mbps(self) -> float:
        """Polarization reuse's net-throughput gain over no surface."""
        return (self.results["polarization-reuse"].total_throughput_mbps -
                self.results["no-surface"].total_throughput_mbps)

    @property
    def reuse_retune_savings(self) -> int:
        """Retunes saved per epoch by clustering vs per-station tuning."""
        return (self.results["per-station"].retune_count -
                self.results["polarization-reuse"].retune_count)

    def rows(self) -> List[List]:
        """Table rows (strategy, throughput, worst rate, fairness,
        retunes) in the benchmark's standard format."""
        return [
            [name, result.total_throughput_mbps,
             result.worst_station_rate_mbps, result.fairness,
             result.retune_count]
            for name, result in self.results.items()
        ]


def deployment_scheduling_comparison(
        spec: Optional["FleetSpec"] = None,
        epoch_duration_s: float = 300.0,
        bias_search_step_v: float = 5.0,
        orientation_tolerance_deg: float = 20.0) -> DeploymentSchedulingResult:
    """Sec. 7 deployment comparison: one epoch of every strategy.

    Runs the whole comparison through a fleet-stacked
    :class:`~repro.api.fleet.FleetSession`: each strategy's utility
    search is a handful of NumPy passes over the full station x bias
    grid, independent of the station count.  ``spec`` defaults to the
    reproducible office fleet (mixed orientations on the 802.11g rate
    cliff, where polarization correction buys throughput).
    """
    from repro.api.fleet import FleetSession, FleetSpec
    if spec is None:
        spec = FleetSpec.office(station_count=8, seed=42)
    session = FleetSession(spec)
    return DeploymentSchedulingResult(
        spec=spec,
        epoch_duration_s=float(epoch_duration_s),
        results=session.schedule_all(
            epoch_duration_s=epoch_duration_s,
            bias_search_step_v=bias_search_step_v,
            orientation_tolerance_deg=orientation_tolerance_deg))


@dataclass(frozen=True)
class AccessIsolationResult:
    """Access-control isolation achieved for every ordered station pair."""

    spec: "FleetSpec"
    pairs: Tuple[Tuple[str, str], ...]
    isolation_db: Tuple[float, ...]
    improvement_db: Tuple[float, ...]

    @property
    def best_pair(self) -> Tuple[str, str]:
        """The station pair the surface isolates best."""
        return self.pairs[int(np.argmax(self.isolation_db))]

    @property
    def max_isolation_db(self) -> float:
        """Best intended-over-unauthorised power margin achieved."""
        return float(max(self.isolation_db))

    @property
    def mean_improvement_db(self) -> float:
        """Mean isolation improvement over the no-surface baseline."""
        return float(np.mean(self.improvement_db))


def deployment_access_isolation(
        spec: Optional["FleetSpec"] = None,
        step_v: float = 5.0) -> AccessIsolationResult:
    """Access-control sweep over every ordered pair of fleet stations.

    One fleet-stacked probe evaluates the whole station x bias grid;
    every ordered pair's best isolating bias pair is then a pairwise
    reduction over the stacked rows (first maximum in vx-major order,
    matching the unconstrained
    :func:`repro.network.access_control.polarization_access_control`
    search pair by pair).
    """
    from repro.api.fleet import FleetSession, FleetSpec
    if spec is None:
        spec = FleetSpec.office(station_count=4, seed=42)
    session = FleetSession(spec)
    levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
    vx_grid, vy_grid = np.meshgrid(levels, levels, indexing="ij")
    rssi = session.measure_grid(vx_grid.ravel(), vy_grid.ravel())
    baseline = session.baseline_rssi_dbm()
    pairs: List[Tuple[str, str]] = []
    isolation: List[float] = []
    improvement: List[float] = []
    for i, intended in enumerate(session.station_names):
        for j, unauthorized in enumerate(session.station_names):
            if i == j:
                continue
            margin = rssi[i] - rssi[j]
            best = float(margin[int(np.argmax(margin))])
            pairs.append((intended, unauthorized))
            isolation.append(best)
            improvement.append(best - float(baseline[i] - baseline[j]))
    return AccessIsolationResult(
        spec=spec, pairs=tuple(pairs), isolation_db=tuple(isolation),
        improvement_db=tuple(improvement))


__all__ = [
    "TABLE1_VOLTAGES_V",
    "TRANSMISSIVE_DISTANCES_CM",
    "REFLECTIVE_DISTANCES_CM",
    "MismatchImpactResult",
    "figure2_mismatch_impact",
    "EfficiencyCurve",
    "figure8_to_10_material_designs",
    "VoltageEfficiencyResult",
    "figure11_voltage_efficiency",
    "RotationTableResult",
    "table1_rotation_degrees",
    "RotationEstimationResult",
    "figure12_rotation_estimation",
    "HeatmapResult",
    "Figure15Result",
    "figure15_voltage_heatmaps",
    "GainVsDistanceResult",
    "figure16_transmissive_gain",
    "FrequencySweepResult",
    "figure17_frequency_sweep",
    "CapacityVsPowerResult",
    "figure18_19_txpower_capacity",
    "IoTDeviceResult",
    "figure20_iot_device_pdf",
    "figure21_reflective_heatmaps",
    "ReflectiveGainResult",
    "figure22_reflective_gain",
    "GainSurfaceResult",
    "gain_surface_frequency_distance",
    "CoverageMapResult",
    "coverage_map_txpower_distance",
    "RespirationSensingResult",
    "figure23_respiration_sensing",
    "DeploymentSchedulingResult",
    "deployment_scheduling_comparison",
    "AccessIsolationResult",
    "deployment_access_isolation",
]
