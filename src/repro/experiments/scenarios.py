"""Canonical experimental scenarios (paper Sec. 4 and Fig. 14).

Each scenario bundles the geometry, antennas, environment and surface of
one of the paper's experimental setups and exposes ready-to-evaluate
:class:`~repro.channel.link.WirelessLink` objects for the "with" and
"without" metasurface cases.  The figure runners in
:mod:`repro.experiments.figures` are thin sweeps over these scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional, Tuple

from repro.channel.antenna import Antenna, dipole_antenna, directional_antenna, omni_antenna
from repro.channel.geometry import LinkGeometry
from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.channel.multipath import MultipathEnvironment
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.devices.base import IoTDevice
from repro.devices.ble import metamotion_wearable, raspberry_pi_central
from repro.devices.wifi import esp8266_station, netgear_access_point
from repro.devices.zigbee import zigbee_coordinator, zigbee_sensor
from repro.metasurface.design import llama_design
from repro.metasurface.surface import Metasurface


@lru_cache(maxsize=1)
def _default_surface() -> Metasurface:
    """The paper's optimized FR4 prototype.

    The surface is immutable (a frozen dataclass stack), so one build is
    shared by every scenario that doesn't override it — which is what
    lets registry runs of overlapping experiments share their scenario
    construction.
    """
    return llama_design().build()


@dataclass(frozen=True)
class TransmissiveScenario:
    """Through-surface setup: the surface sits between the endpoints.

    Attributes mirror the knobs the paper varies: Tx-Rx distance, antenna
    type/orientation (mismatch by default), transmit power, frequency and
    whether the chamber is covered with absorber.
    """

    tx_rx_distance_m: float = 0.42
    tx_orientation_deg: float = 0.0
    rx_orientation_deg: float = 90.0
    tx_power_dbm: float = 0.0
    frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    antenna_kind: str = "directional"
    absorber: bool = True
    metasurface: Metasurface = field(default_factory=_default_surface)
    environment_seed: int = 2021

    def __post_init__(self) -> None:
        if self.tx_rx_distance_m <= 0:
            raise ValueError("Tx-Rx distance must be positive")
        if self.antenna_kind not in ("directional", "omni", "dipole"):
            raise ValueError("antenna kind must be directional, omni or dipole")

    def _antenna(self, orientation_deg: float) -> Antenna:
        if self.antenna_kind == "directional":
            return directional_antenna(orientation_deg=orientation_deg)
        if self.antenna_kind == "omni":
            return omni_antenna(orientation_deg=orientation_deg)
        return dipole_antenna(orientation_deg=orientation_deg)

    def _environment(self) -> MultipathEnvironment:
        if self.absorber:
            return MultipathEnvironment.anechoic(seed=self.environment_seed)
        return MultipathEnvironment.laboratory(seed=self.environment_seed)

    def configuration(self) -> LinkConfiguration:
        """Link configuration with the metasurface deployed."""
        geometry = LinkGeometry.transmissive(self.tx_rx_distance_m)
        return LinkConfiguration(
            tx_antenna=self._antenna(self.tx_orientation_deg),
            rx_antenna=self._antenna(self.rx_orientation_deg),
            geometry=geometry,
            frequency_hz=self.frequency_hz,
            tx_power_dbm=self.tx_power_dbm,
            environment=self._environment(),
            metasurface=self.metasurface,
            deployment=DeploymentMode.TRANSMISSIVE,
        )

    def link(self) -> WirelessLink:
        """Link with the metasurface present."""
        return WirelessLink(self.configuration())

    def baseline_link(self) -> WirelessLink:
        """Link with the metasurface removed."""
        return WirelessLink(self.configuration().without_surface())

    def with_distance(self, tx_rx_distance_m: float) -> "TransmissiveScenario":
        """Copy of the scenario at a different Tx-Rx distance."""
        return replace(self, tx_rx_distance_m=tx_rx_distance_m)

    def with_frequency(self, frequency_hz: float) -> "TransmissiveScenario":
        """Copy of the scenario at a different carrier frequency."""
        return replace(self, frequency_hz=frequency_hz)

    def with_tx_power(self, tx_power_dbm: float) -> "TransmissiveScenario":
        """Copy of the scenario at a different transmit power."""
        return replace(self, tx_power_dbm=tx_power_dbm)

    def matched(self) -> "TransmissiveScenario":
        """Copy with the endpoints polarization-matched."""
        return replace(self, rx_orientation_deg=self.tx_orientation_deg)


@dataclass(frozen=True)
class ReflectiveScenario:
    """Same-side setup: endpoints on one side of the surface (Fig. 14 right)."""

    tx_rx_separation_m: float = 0.70
    surface_distance_m: float = 0.42
    tx_orientation_deg: float = 0.0
    rx_orientation_deg: float = 90.0
    tx_power_dbm: float = 0.0
    frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    antenna_kind: str = "directional"
    absorber: bool = True
    metasurface: Metasurface = field(default_factory=_default_surface)
    environment_seed: int = 2021

    def __post_init__(self) -> None:
        if self.tx_rx_separation_m <= 0 or self.surface_distance_m <= 0:
            raise ValueError("geometry distances must be positive")
        if self.antenna_kind not in ("directional", "omni", "dipole"):
            raise ValueError("antenna kind must be directional, omni or dipole")

    def _antenna(self, orientation_deg: float) -> Antenna:
        if self.antenna_kind == "directional":
            return directional_antenna(orientation_deg=orientation_deg)
        if self.antenna_kind == "omni":
            return omni_antenna(orientation_deg=orientation_deg)
        return dipole_antenna(orientation_deg=orientation_deg)

    def _environment(self) -> MultipathEnvironment:
        if self.absorber:
            return MultipathEnvironment.anechoic(seed=self.environment_seed)
        return MultipathEnvironment.laboratory(seed=self.environment_seed)

    def configuration(self) -> LinkConfiguration:
        """Link configuration with the metasurface deployed."""
        geometry = LinkGeometry.reflective(self.tx_rx_separation_m,
                                           self.surface_distance_m)
        return LinkConfiguration(
            tx_antenna=self._antenna(self.tx_orientation_deg),
            rx_antenna=self._antenna(self.rx_orientation_deg),
            geometry=geometry,
            frequency_hz=self.frequency_hz,
            tx_power_dbm=self.tx_power_dbm,
            environment=self._environment(),
            metasurface=self.metasurface,
            deployment=DeploymentMode.REFLECTIVE,
            aim_at_surface=True,
        )

    def link(self) -> WirelessLink:
        """Link with the metasurface present."""
        return WirelessLink(self.configuration())

    def baseline_link(self) -> WirelessLink:
        """Link with the metasurface removed (same antenna aiming)."""
        return WirelessLink(self.configuration().without_surface())

    def with_surface_distance(self, surface_distance_m: float) -> "ReflectiveScenario":
        """Copy of the scenario at a different Tx-to-surface distance."""
        return replace(self, surface_distance_m=surface_distance_m)

    def with_tx_power(self, tx_power_dbm: float) -> "ReflectiveScenario":
        """Copy of the scenario at a different transmit power."""
        return replace(self, tx_power_dbm=tx_power_dbm)


def iot_wifi_scenario(mismatched: bool = True,
                      distance_m: float = 3.0,
                      with_surface: bool = False,
                      metasurface: Optional[Metasurface] = None,
                      absorber: bool = False,
                      seed: int = 2021) -> Tuple[LinkConfiguration, IoTDevice, IoTDevice]:
    """The commodity Wi-Fi link of Figs. 2a and 20.

    Returns ``(link_configuration, transmitter_device, receiver_device)``.
    The transmitter is the ESP8266 station, the receiver the AP (uplink
    direction, matching the RSSI the AP-side controller would observe).
    """
    station = esp8266_station(orientation_deg=90.0 if mismatched else 0.0)
    access_point = netgear_access_point(orientation_deg=0.0)
    surface = metasurface if metasurface is not None else _default_surface()
    geometry = LinkGeometry.transmissive(distance_m)
    # A home/office deployment has moderate clutter (K ~ 10 dB), clearly
    # less reflective than the paper's instrument-packed laboratory.
    environment = (MultipathEnvironment.anechoic(seed=seed) if absorber
                   else MultipathEnvironment(absorber_enabled=False,
                                             rician_k_db=10.0,
                                             ray_count=12, seed=seed))
    configuration = LinkConfiguration(
        tx_antenna=station.antenna,
        rx_antenna=access_point.antenna,
        geometry=geometry,
        frequency_hz=station.frequency_hz,
        tx_power_dbm=station.tx_power_dbm,
        bandwidth_hz=station.channel_bandwidth_hz,
        environment=environment,
        metasurface=surface if with_surface else None,
        deployment=(DeploymentMode.TRANSMISSIVE if with_surface
                    else DeploymentMode.NONE),
    )
    return configuration, station, access_point


def iot_ble_scenario(mismatched: bool = True,
                     distance_m: float = 2.0,
                     with_surface: bool = False,
                     metasurface: Optional[Metasurface] = None,
                     absorber: bool = False,
                     seed: int = 2021) -> Tuple[LinkConfiguration, IoTDevice, IoTDevice]:
    """The BLE wearable link of Fig. 2b.

    Returns ``(link_configuration, transmitter_device, receiver_device)``
    with the wearable transmitting to the Raspberry Pi.
    """
    wearable = metamotion_wearable(orientation_deg=90.0 if mismatched else 0.0)
    central = raspberry_pi_central(orientation_deg=0.0)
    surface = metasurface if metasurface is not None else _default_surface()
    geometry = LinkGeometry.transmissive(distance_m)
    environment = (MultipathEnvironment.anechoic(seed=seed) if absorber
                   else MultipathEnvironment(absorber_enabled=False,
                                             rician_k_db=10.0,
                                             ray_count=12, seed=seed))
    configuration = LinkConfiguration(
        tx_antenna=wearable.antenna,
        rx_antenna=central.antenna,
        geometry=geometry,
        frequency_hz=wearable.frequency_hz,
        tx_power_dbm=wearable.tx_power_dbm,
        bandwidth_hz=wearable.channel_bandwidth_hz,
        environment=environment,
        metasurface=surface if with_surface else None,
        deployment=(DeploymentMode.TRANSMISSIVE if with_surface
                    else DeploymentMode.NONE),
    )
    return configuration, wearable, central


def iot_zigbee_scenario(mismatched: bool = True,
                        distance_m: float = 4.0,
                        with_surface: bool = False,
                        metasurface: Optional[Metasurface] = None,
                        absorber: bool = False,
                        seed: int = 2021) -> Tuple[LinkConfiguration, IoTDevice, IoTDevice]:
    """The Zigbee sensor link of the Sec. 5.1.2/5.1.3 discussion.

    The third commodity device family the paper names (alongside Wi-Fi
    and BLE): a battery-powered Zigbee sensor transmitting to a
    mains-powered coordinator hub.  Returns
    ``(link_configuration, transmitter_device, receiver_device)``.
    """
    sensor = zigbee_sensor(orientation_deg=90.0 if mismatched else 0.0)
    coordinator = zigbee_coordinator(orientation_deg=0.0)
    surface = metasurface if metasurface is not None else _default_surface()
    geometry = LinkGeometry.transmissive(distance_m)
    environment = (MultipathEnvironment.anechoic(seed=seed) if absorber
                   else MultipathEnvironment(absorber_enabled=False,
                                             rician_k_db=10.0,
                                             ray_count=12, seed=seed))
    configuration = LinkConfiguration(
        tx_antenna=sensor.antenna,
        rx_antenna=coordinator.antenna,
        geometry=geometry,
        frequency_hz=sensor.frequency_hz,
        tx_power_dbm=sensor.tx_power_dbm,
        bandwidth_hz=sensor.channel_bandwidth_hz,
        environment=environment,
        metasurface=surface if with_surface else None,
        deployment=(DeploymentMode.TRANSMISSIVE if with_surface
                    else DeploymentMode.NONE),
    )
    return configuration, sensor, coordinator


#: The three commodity IoT device families, by scenario-factory name.
IOT_SCENARIOS = {
    "iot_wifi": iot_wifi_scenario,
    "iot_ble": iot_ble_scenario,
    "iot_zigbee": iot_zigbee_scenario,
}


__all__ = [
    "IOT_SCENARIOS",
    "TransmissiveScenario",
    "ReflectiveScenario",
    "iot_wifi_scenario",
    "iot_ble_scenario",
    "iot_zigbee_scenario",
]
