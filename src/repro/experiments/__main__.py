"""``python -m repro.experiments`` — the experiment-suite CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
