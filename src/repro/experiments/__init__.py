"""Evaluation harness: one runner per paper table/figure.

``scenarios`` builds the canonical experimental setups of paper Sec. 4,
``sweeps`` provides the generic parameter-sweep drivers, ``figures``
exposes one function per table/figure of the evaluation (each returning
a plain-data result object), and ``reporting`` renders those results as
the text tables the benchmarks print.
"""

from repro.experiments.scenarios import (
    TransmissiveScenario,
    ReflectiveScenario,
    iot_wifi_scenario,
    iot_ble_scenario,
)
from repro.experiments.sweeps import (
    distance_sweep,
    frequency_sweep,
    tx_power_sweep,
    voltage_grid_sweep,
)
from repro.experiments import figures
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "TransmissiveScenario",
    "ReflectiveScenario",
    "iot_wifi_scenario",
    "iot_ble_scenario",
    "distance_sweep",
    "frequency_sweep",
    "tx_power_sweep",
    "voltage_grid_sweep",
    "figures",
    "format_table",
    "format_series",
]
