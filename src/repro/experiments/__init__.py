"""Evaluation harness: a declarative registry of paper experiments.

``scenarios`` builds the canonical experimental setups of paper Sec. 4,
``sweeps`` provides the generic parameter-sweep drivers, ``figures``
registers one experiment per table/figure of the evaluation (each
returning a plain-data payload inside an
:class:`~repro.experiments.runner.ExperimentResult` envelope),
``reporting`` renders results as text tables, ``registry``/``runner``
hold the experiment catalogue and its execution engine, and ``cli``
backs ``python -m repro.experiments`` (list / describe / run /
run-all / coverage).

Importing this package registers the full catalogue in
:data:`~repro.experiments.registry.REGISTRY`.
"""

from repro.experiments.scenarios import (
    IOT_SCENARIOS,
    TransmissiveScenario,
    ReflectiveScenario,
    iot_wifi_scenario,
    iot_ble_scenario,
    iot_zigbee_scenario,
)
from repro.experiments.sweeps import (
    distance_sweep,
    frequency_sweep,
    tx_power_sweep,
    voltage_grid_sweep,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    Param,
    ParameterError,
    experiment,
)
from repro.experiments.runner import (
    ExperimentResult,
    Runner,
    default_runner,
    run_experiment,
)
from repro.experiments.store import ResultStore, code_fingerprint
from repro.experiments.parallel import (
    ProgressReporter,
    evaluate_grid_sharded,
)
from repro.experiments import figures
from repro.experiments import robustness
from repro.experiments import serving
from repro.experiments import worlds
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "IOT_SCENARIOS",
    "TransmissiveScenario",
    "ReflectiveScenario",
    "iot_wifi_scenario",
    "iot_ble_scenario",
    "iot_zigbee_scenario",
    "distance_sweep",
    "frequency_sweep",
    "tx_power_sweep",
    "voltage_grid_sweep",
    "REGISTRY",
    "ExperimentRegistry",
    "ExperimentSpec",
    "Param",
    "ParameterError",
    "experiment",
    "ExperimentResult",
    "Runner",
    "ResultStore",
    "ProgressReporter",
    "code_fingerprint",
    "evaluate_grid_sharded",
    "default_runner",
    "run_experiment",
    "figures",
    "robustness",
    "serving",
    "worlds",
    "format_table",
    "format_series",
]
