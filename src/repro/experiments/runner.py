"""Experiment runner: overrides, two-tier caching and result envelopes.

:class:`Runner` executes :class:`~repro.experiments.registry.ExperimentSpec`\\ s
with validated parameter overrides and a **two-tier** content-keyed
cache: a per-instance in-memory dict in front of an optional persistent
:class:`~repro.experiments.store.ResultStore` on disk (one entry per
distinct ``(experiment, resolved-parameters, code fingerprint)``), so
``run_many``/``run_all`` never recompute a result two entry points
share — across processes and across sessions when a store is attached
— and the legacy ``figureN_*`` shims, which delegate here, hit the
same cache as registry runs.  ``run_all(workers=N)`` delegates to the
sharded multiprocess executor in :mod:`repro.experiments.parallel`;
``workers`` absent/0/1 is the exact serial identity path.

Every run returns an :class:`ExperimentResult` envelope: the spec, the
fully-resolved parameters and the payload, with a ``to_dict`` /
``to_json`` / ``from_json`` round-trip (via
:mod:`repro.experiments.artifacts`) and a ``summary()`` rendered with
:mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.experiments import artifacts
from repro.experiments.registry import (
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
)
from repro.experiments.reporting import format_table
from repro.experiments.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.parallel import ProgressReporter


def _content_key(name: str, params: Mapping[str, Any]) -> str:
    return json.dumps(
        [name, artifacts.canonical_json(dict(sorted(params.items())))])


def _isolated(result: "ExperimentResult") -> "ExperimentResult":
    """A deep-copied view of a cached result (the spec is shared — it is
    frozen and carries only schema/functions)."""
    return ExperimentResult(spec=result.spec,
                            params=copy.deepcopy(result.params),
                            payload=copy.deepcopy(result.payload))


def _describe_value(value: Any) -> str:
    if isinstance(value, tuple) and len(value) > 6:
        head = ", ".join(f"{v:g}" for v in value[:4])
        return f"({head}, ... {len(value)} values)"
    return repr(value)


@dataclass(frozen=True, eq=False)
class ExperimentResult:
    """One experiment run: spec, resolved parameters and payload.

    Equality is :meth:`equal` (numeric tolerance, NaN-aware) rather
    than ``==`` because payloads may hold NumPy arrays.
    """

    spec: ExperimentSpec
    params: Dict[str, Any] = field(default_factory=dict)
    payload: Any = None

    @property
    def name(self) -> str:
        """The experiment's registry name."""
        return self.spec.name

    def summary(self) -> str:
        """The paper's rows/series for this payload (plain text)."""
        if self.spec.summarize is not None:
            return self.spec.summarize(self.payload, self.params)
        rows = [[name, _describe_value(value)]
                for name, value in self.params.items()]
        rows.append(["payload", type(self.payload).__name__])
        return format_table(["parameter", "value"], rows,
                            title=f"{self.name} — {self.spec.title}")

    def check(self) -> None:
        """Run the spec's shape assertions against this payload."""
        if self.spec.check is not None:
            self.spec.check(self.payload, self.params)

    def equal(self, other: "ExperimentResult",
              tolerance: float = 1e-9) -> bool:
        """Same experiment, same parameters, equal payload."""
        return (self.name == other.name and
                artifacts.payload_equal(self.params, other.params, tolerance)
                and artifacts.payload_equal(self.payload, other.payload,
                                            tolerance))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (see :mod:`repro.experiments.artifacts`)."""
        return {
            "experiment": self.name,
            "title": self.spec.title,
            "tags": list(self.spec.tags),
            "params": {name: artifacts.encode(value)
                       for name, value in self.params.items()},
            "payload": artifacts.encode(self.payload),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialized :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  registry: Optional[ExperimentRegistry] = None
                  ) -> "ExperimentResult":
        """Rebuild a result; the spec is looked up in ``registry``."""
        registry = registry if registry is not None else REGISTRY
        spec = registry.get(data["experiment"])
        params = {name: artifacts.decode(value)
                  for name, value in data.get("params", {}).items()}
        # Re-validate: a hand-edited file with unknown/ill-typed
        # parameters fails here, not at the next run.
        params = spec.resolve(params)
        return cls(spec=spec, params=params,
                   payload=artifacts.decode(data["payload"]))

    @classmethod
    def from_json(cls, text: str,
                  registry: Optional[ExperimentRegistry] = None
                  ) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text), registry=registry)


class Runner:
    """Executes registered experiments with overrides and caching.

    ``store`` attaches the persistent disk tier: a
    :class:`~repro.experiments.store.ResultStore` instance or a
    directory path for one.  Lookups go memory → store → compute, and
    every computed (or externally :meth:`absorb`\\ ed) result is written
    back through both tiers.
    """

    def __init__(self, registry: Optional[ExperimentRegistry] = None,
                 cache: bool = True,
                 store: Optional[Union[ResultStore, str, Any]] = None) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self._cache_enabled = bool(cache)
        self._cache: Dict[str, ExperimentResult] = {}
        self._hits = 0
        self._misses = 0
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store, registry=self.registry)
        self.store: Optional[ResultStore] = store

    def _remember(self, key: str, result: ExperimentResult,
                  write_store: bool = True) -> None:
        if self._cache_enabled:
            self._cache[key] = result
        if write_store and self.store is not None:
            self.store.put(result)

    def absorb(self, result: ExperimentResult) -> None:
        """Adopt an externally computed result into both cache tiers.

        The parallel executor calls this with results its worker
        processes computed, so the parent runner's memory cache and
        store end up exactly as if :meth:`run` had computed them here.
        """
        key = _content_key(result.name, result.params)
        self._remember(key, _isolated(result))

    def resolved_params(self, name: str, smoke: bool = False,
                        **overrides: Any) -> Dict[str, Any]:
        """The fully-resolved parameter dict :meth:`run` would use."""
        return self.registry.get(name).resolve(overrides, smoke=smoke)

    def cached(self, name: str, smoke: bool = False,
               **overrides: Any) -> bool:
        """Would :meth:`run` be served from a cache tier right now?"""
        params = self.resolved_params(name, smoke=smoke, **overrides)
        key = _content_key(name, params)
        if self._cache_enabled and key in self._cache:
            return True
        return self.store is not None and (name, params) in self.store

    def run(self, name: str, smoke: bool = False,
            **overrides: Any) -> ExperimentResult:
        """Run one experiment.

        ``overrides`` are validated against the spec's parameter schema
        (unknown names and ill-typed values raise
        :class:`~repro.experiments.registry.ParameterError`).  With
        ``smoke=True`` the spec's smoke profile is applied first, then
        the overrides.  Identical ``(name, resolved params)`` runs are
        served from the memory cache, then from the store (when one is
        attached), and only computed on a full miss.
        """
        spec = self.registry.get(name)
        params = spec.resolve(overrides, smoke=smoke)
        key = _content_key(name, params)
        if self._cache_enabled and key in self._cache:
            self._hits += 1
            return _isolated(self._cache[key])
        if self.store is not None:
            stored = self.store.get(name, params)
            if stored is not None:
                # Promote to the memory tier; no write-back needed.
                self._remember(key, stored, write_store=False)
                return _isolated(stored)
        result = ExperimentResult(spec=spec, params=params,
                                  payload=spec.run(params))
        if self._cache_enabled or self.store is not None:
            self._misses += 1
            self._remember(key, result)
            # Hand out a copy so a caller mutating a payload (dicts
            # inside the frozen dataclasses are mutable) cannot poison
            # the cached pristine result.
            return _isolated(result)
        return result

    def run_many(self, names: Iterable[str], smoke: bool = False,
                 **overrides: Any) -> List[ExperimentResult]:
        """Run several experiments, sharing the cache (and, underneath,
        the memoized scenario/surface construction) across them."""
        return [self.run(name, smoke=smoke, **overrides) for name in names]

    def run_all(self, tag: Optional[str] = None,
                smoke: bool = False,
                workers: Optional[int] = None,
                overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
                progress: Optional["ProgressReporter"] = None,
                mp_context: Optional[str] = None) -> List[ExperimentResult]:
        """Run every registered experiment, optionally one tag's worth.

        ``workers > 1`` shards the suite across a multiprocess worker
        pool (see :mod:`repro.experiments.parallel`); results come back
        in registry order and are bit-identical to the serial path.
        ``workers`` absent, 0 or 1 *is* the serial path — no pool is
        created.  ``overrides`` maps experiment names to per-experiment
        parameter overrides; ``progress`` receives claim/finish events
        (the CLI's live progress line).
        """
        specs = self.registry.all(tag)
        by_name = dict(overrides or {})
        for name in by_name:
            self.registry.get(name)  # unknown names fail loudly
        if workers is not None and workers > 1 and len(specs) > 1:
            from repro.experiments.parallel import run_all_parallel
            return run_all_parallel(self, specs, smoke=smoke,
                                    workers=workers, overrides=by_name,
                                    progress=progress,
                                    mp_context=mp_context)
        results = []
        for spec in specs:
            spec_overrides = dict(by_name.get(spec.name, {}))
            if progress is not None:
                progress.claim(spec.name)
                cached = self.cached(spec.name, smoke=smoke,
                                     **spec_overrides)
                with progress.timed(spec.name,
                                    "cached" if cached else "ok"):
                    results.append(self.run(spec.name, smoke=smoke,
                                            **spec_overrides))
            else:
                results.append(self.run(spec.name, smoke=smoke,
                                        **spec_overrides))
        return results

    @property
    def cache_info(self) -> Tuple[int, int, int]:
        """``(hits, misses, entries)`` of the in-memory cache tier."""
        return (self._hits, self._misses, len(self._cache))

    def clear_cache(self, store: bool = False) -> None:
        """Drop every cached result (``store=True`` clears disk too)."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0
        if store and self.store is not None:
            self.store.clear()


_DEFAULT_RUNNER: Optional[Runner] = None


def default_runner() -> Runner:
    """The process-wide :class:`Runner` the legacy shims delegate to."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = Runner()
    return _DEFAULT_RUNNER


def run_experiment(name: str, smoke: bool = False,
                   **overrides: Any) -> ExperimentResult:
    """Run ``name`` on the default runner (cache shared process-wide)."""
    return default_runner().run(name, smoke=smoke, **overrides)


__all__ = [
    "ExperimentResult",
    "Runner",
    "default_runner",
    "run_experiment",
]
