"""Dynamic-world experiments: time, topology and coexistence axes.

Three registered experiments close the loop on :mod:`repro.world`:

* ``world_mobility_tracking`` — a fleet advancing through random-
  waypoint mobility and rotation random walks on one epoch grid, with
  the single-link tracking loop riding a rotating station.  The check
  gates the subsystem's parity anchors: a traceless timeline equals the
  static :meth:`~repro.api.fleet.FleetSession.measure_aligned` snapshot
  to <= 1e-9 dB, the batched ``(T, N)`` probe equals the scalar
  per-cell reference to <= 1e-9 dB, and trace digests + the payload
  replay bit-exact from the seed.
* ``world_topology_sweep`` — every placement family crossed with a
  station-count ladder, scheduled per deployment.  The check gates
  monotone-with-slack aggregate throughput in deployment density per
  family, topology round-trips through ``to_json``/``from_json``, and
  bit-exact placement digests on replay.
* ``world_coexistence`` — duty-cycled Wi-Fi/BLE/Zigbee interference
  folded into the victim's noise floor.  The check gates exact
  thermal-floor parity at zero duty, a non-increasing capacity curve
  in duty cycle, and bit-exact replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Tuple

import numpy as np

from repro.api.fleet import FleetSession, FleetSpec
from repro.experiments.artifacts import payload_equal
from repro.experiments.registry import Param, experiment
from repro.experiments.reporting import format_table
from repro.experiments.serving import (
    MONOTONE_SLACK_FRACTION,
    PARITY_TOLERANCE_DB,
)
from repro.world.coexistence import COEXISTENCE_FAMILIES, CoexistenceModel
from repro.world.dynamics import WorldTimeline
from repro.world.topology import TOPOLOGY_FAMILIES, generate_fleet, \
    topology_digest
from repro.world.traces import MobilityTrace, RotationTrace


# ---------------------------------------------------------------------- #
# world_mobility_tracking — trace-driven fleet + tracking loop
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorldMobilityResult:
    """One trace-driven fleet run plus its parity anchors."""

    station_count: int
    epoch_count: int
    moving_stations: Tuple[str, ...]
    rotating_stations: Tuple[str, ...]
    mean_gain_db: float
    worst_gain_db: float
    epoch_mean_power_dbm: Tuple[float, ...]
    trace_digests: Tuple[Tuple[str, int], ...]
    static_parity_db: float
    reference_parity_db: float
    tracking_station: str
    tracking_mean_gain_db: float
    tracking_retune_count: int


def _summary_world_mobility(payload: WorldMobilityResult,
                            params: Mapping[str, Any]) -> str:
    rows = [["stations", payload.station_count],
            ["epochs", payload.epoch_count],
            ["moving / rotating", f"{len(payload.moving_stations)} / "
                                  f"{len(payload.rotating_stations)}"],
            ["mean gain (dB)", payload.mean_gain_db],
            ["worst gain (dB)", payload.worst_gain_db],
            ["static parity (dB)", payload.static_parity_db],
            ["batched-vs-scalar parity (dB)", payload.reference_parity_db],
            [f"tracking gain @ {payload.tracking_station} (dB)",
             payload.tracking_mean_gain_db],
            ["tracking retunes", payload.tracking_retune_count]]
    return format_table(
        ["metric", "value"], rows, precision=4,
        title="Dynamic world — trace-driven fleet over "
              f"{payload.epoch_count} epochs")


def _check_world_mobility(payload: WorldMobilityResult,
                          params: Mapping[str, Any]) -> None:
    # The zero-motion anchor: a traceless timeline is the static
    # snapshot, epoch for epoch.
    assert payload.static_parity_db <= PARITY_TOLERANCE_DB, (
        f"static-world timeline drifted {payload.static_parity_db:.3e} dB "
        "from the static fleet snapshot")
    # The batched (T, N) probe and the scalar per-cell loop are the same
    # physics; any drift is a broadcasting bug.
    assert payload.reference_parity_db <= PARITY_TOLERANCE_DB, (
        f"batched timeline drifted {payload.reference_parity_db:.3e} dB "
        "from the scalar reference")
    # The tuned surface must help a moving fleet on average.
    assert payload.mean_gain_db > 0.0, (
        f"surface gain not positive under motion: "
        f"{payload.mean_gain_db:.3f} dB")
    assert payload.epoch_count == len(payload.epoch_mean_power_dbm)
    assert payload.tracking_retune_count >= 1, "tracking loop never retuned"
    # Exact replay: identical seed -> identical traces and payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("world_mobility_tracking").run(dict(params))
    assert replay.trace_digests == payload.trace_digests, (
        "mobility/rotation traces not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "world_mobility_tracking",
    title="Dynamic world — trace-driven fleet mobility with tracking",
    tags=("sweep", "world", "network"),
    params=(
        Param("stations", "int", 6, "fleet size (office deployment)"),
        Param("moving", "int", 3, "stations given a mobility trace"),
        Param("rotating", "int", 2, "stations given a rotation trace"),
        Param("duration_s", "float", 10.0, "timeline span (seconds)"),
        Param("time_step_s", "float", 0.5, "epoch spacing (seconds)"),
        Param("bias_step_v", "float", 10.0, "bias grid-search step (V)"),
        Param("seed", "int", 2021, "trace-stream seed"),
    ),
    scenarios=("fleet",),
    modules=("api", "channel", "core", "network", "world"),
    smoke={"stations": 4, "moving": 2, "rotating": 1, "duration_s": 2.0,
           "time_step_s": 0.5, "bias_step_v": 15.0},
    summarize=_summary_world_mobility,
    check=_check_world_mobility)
def _run_world_mobility(stations: int, moving: int, rotating: int,
                        duration_s: float, time_step_s: float,
                        bias_step_v: float, seed: int) -> WorldMobilityResult:
    if not 0 < moving <= stations or not 0 < rotating <= stations:
        raise ValueError("moving and rotating must be in [1, stations]")
    spec = FleetSpec.office(station_count=stations)
    names = spec.station_names
    # The first `moving` stations walk, the last `rotating` rotate (the
    # sets may overlap — a station can do both).
    mobility = {
        name: MobilityTrace.random_waypoint(seed, name,
                                            duration_s=duration_s)
        for name in names[:moving]}
    rotation = {
        name: RotationTrace.random_walk(seed, name, duration_s=duration_s)
        for name in names[-rotating:]}
    timeline = WorldTimeline(spec, mobility=mobility, rotation=rotation,
                             duration_s=duration_s,
                             time_step_s=time_step_s)
    report = timeline.run(bias_search_step_v=bias_step_v)

    # Parity anchor 1: a traceless timeline reproduces the static
    # snapshot at the static plan's biases, every epoch.
    fleet = FleetSession(spec)
    plan = fleet.best_bias_plan(step_v=bias_step_v)
    static_timeline = WorldTimeline(spec, duration_s=duration_s,
                                    time_step_s=time_step_s)
    static_plane = static_timeline.evaluate(vx=plan.best_vx,
                                            vy=plan.best_vy)
    snapshot = fleet.measure_aligned(plan.best_vx, plan.best_vy)
    static_parity = float(np.max(np.abs(static_plane - snapshot[None, :])))

    # Parity anchor 2: the batched (T, N) pass equals the scalar loop
    # at the retuned bias planes.
    reference = timeline.evaluate_reference(vx=report.bias_vx,
                                            vy=report.bias_vy)
    reference_parity = float(
        np.max(np.abs(report.powers_with_dbm - reference)))

    tracking_station = names[-1]
    tracking = timeline.run_tracking(tracking_station)
    return WorldMobilityResult(
        station_count=stations,
        epoch_count=timeline.epoch_count,
        moving_stations=tuple(sorted(mobility)),
        rotating_stations=tuple(sorted(rotation)),
        mean_gain_db=report.mean_gain_db,
        worst_gain_db=report.worst_gain_db,
        epoch_mean_power_dbm=tuple(
            float(p) for p in report.epoch_mean_power_dbm),
        trace_digests=report.trace_digests,
        static_parity_db=static_parity,
        reference_parity_db=reference_parity,
        tracking_station=tracking_station,
        tracking_mean_gain_db=tracking.mean_gain_db,
        tracking_retune_count=tracking.retune_count)


# ---------------------------------------------------------------------- #
# world_topology_sweep — placement family x station count
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorldTopologyResult:
    """Scheduled throughput across placement families and densities."""

    families: Tuple[str, ...]
    station_counts: Tuple[int, ...]
    throughput_mbps: Tuple[Tuple[float, ...], ...]
    fairness: Tuple[Tuple[float, ...], ...]
    worst_rate_mbps: Tuple[Tuple[float, ...], ...]
    placement_digests: Tuple[Tuple[int, ...], ...]
    round_trips_ok: bool
    strategy: str


def _summary_world_topology(payload: WorldTopologyResult,
                            params: Mapping[str, Any]) -> str:
    rows = []
    for row, family in enumerate(payload.families):
        for col, count in enumerate(payload.station_counts):
            rows.append([family, count,
                         payload.throughput_mbps[row][col],
                         payload.fairness[row][col],
                         payload.worst_rate_mbps[row][col]])
    return format_table(
        ["family", "stations", "throughput (Mbps)", "fairness",
         "worst rate (Mbps)"],
        rows, precision=3,
        title=f"Topology sweep — {payload.strategy} scheduling "
              f"(round-trips {'ok' if payload.round_trips_ok else 'BAD'})")


def _check_world_topology(payload: WorldTopologyResult,
                          params: Mapping[str, Any]) -> None:
    counts = payload.station_counts
    assert counts == tuple(sorted(counts)), "station counts must ascend"
    assert len(set(counts)) == len(counts), "station counts must be distinct"
    assert payload.round_trips_ok, (
        "a generated FleetSpec did not survive to_json/from_json")
    # Denser deployments offer more aggregate demand, so the scheduled
    # throughput may not fall beyond slack as the count rises.
    for family, curve in zip(payload.families, payload.throughput_mbps):
        assert all(rate > 0.0 for rate in curve), (
            f"{family}: zero-throughput deployment: {curve}")
        slack = MONOTONE_SLACK_FRACTION * max(curve)
        for previous, current in zip(curve, curve[1:]):
            assert current >= previous - slack, (
                f"{family}: throughput not monotone within slack in "
                f"density: {curve}")
    # Fairness is a Jain index: always in (0, 1].
    for curve in payload.fairness:
        assert all(0.0 < value <= 1.0 + 1e-12 for value in curve), (
            f"fairness outside (0, 1]: {curve}")
    # Exact replay: identical seed -> identical placements and payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("world_topology_sweep").run(dict(params))
    assert replay.placement_digests == payload.placement_digests, (
        "topology placements not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "world_topology_sweep",
    title="Topology sweep — placement families x deployment density",
    tags=("sweep", "world", "network"),
    params=(
        Param("station_counts", "float_seq", (2.0, 4.0, 8.0),
              "deployment sizes to sweep (ascending integers)"),
        Param("strategy", "str", "polarization-reuse",
              "TDMA scheduling strategy"),
        Param("bias_step_v", "float", 10.0, "bias grid-search step (V)"),
        Param("seed", "int", 2021, "placement-stream seed"),
    ),
    scenarios=("fleet",),
    modules=("api", "channel", "network", "world"),
    smoke={"station_counts": (2.0, 4.0), "bias_step_v": 15.0},
    summarize=_summary_world_topology,
    check=_check_world_topology)
def _run_world_topology(station_counts: Tuple[float, ...], strategy: str,
                        bias_step_v: float, seed: int) -> WorldTopologyResult:
    counts = tuple(sorted(int(count) for count in station_counts))
    throughput: List[Tuple[float, ...]] = []
    fairness: List[Tuple[float, ...]] = []
    worst: List[Tuple[float, ...]] = []
    digests: List[Tuple[int, ...]] = []
    round_trips_ok = True
    for family in TOPOLOGY_FAMILIES:
        family_throughput: List[float] = []
        family_fairness: List[float] = []
        family_worst: List[float] = []
        family_digests: List[int] = []
        for count in counts:
            spec = generate_fleet(family, count, seed=seed)
            family_digests.append(topology_digest(spec))
            round_trips_ok &= FleetSpec.from_json(spec.to_json()) == spec
            result = FleetSession(spec).schedule(
                strategy, bias_search_step_v=bias_step_v)
            family_throughput.append(float(result.total_throughput_mbps))
            family_fairness.append(float(result.fairness))
            family_worst.append(float(result.worst_station_rate_mbps))
        throughput.append(tuple(family_throughput))
        fairness.append(tuple(family_fairness))
        worst.append(tuple(family_worst))
        digests.append(tuple(family_digests))
    return WorldTopologyResult(
        families=TOPOLOGY_FAMILIES,
        station_counts=counts,
        throughput_mbps=tuple(throughput),
        fairness=tuple(fairness),
        worst_rate_mbps=tuple(worst),
        placement_digests=tuple(digests),
        round_trips_ok=round_trips_ok,
        strategy=strategy)


# ---------------------------------------------------------------------- #
# world_coexistence — duty-cycled cross-family interference
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorldCoexistenceResult:
    """Capacity of a victim link vs interferer duty cycle."""

    victim: str
    duties: Tuple[float, ...]
    floors_dbm: Tuple[float, ...]
    efficiencies: Tuple[float, ...]
    interferer_powers_dbm: Tuple[Tuple[str, float], ...]
    thermal_floor_dbm: float
    victim_power_dbm: float
    zero_duty_parity_db: float


def _summary_world_coexistence(payload: WorldCoexistenceResult,
                               params: Mapping[str, Any]) -> str:
    rows = [[duty, floor, floor - payload.thermal_floor_dbm, efficiency]
            for duty, floor, efficiency in zip(
                payload.duties, payload.floors_dbm, payload.efficiencies)]
    return format_table(
        ["duty cycle", "floor (dBm)", "floor rise (dB)",
         "efficiency (b/s/Hz)"],
        rows, precision=3,
        title=f"Coexistence — victim {payload.victim} at "
              f"{payload.victim_power_dbm:.1f} dBm, thermal floor "
              f"{payload.thermal_floor_dbm:.1f} dBm")


def _check_world_coexistence(payload: WorldCoexistenceResult,
                             params: Mapping[str, Any]) -> None:
    duties = payload.duties
    assert duties == tuple(sorted(duties)), "duty cycles must ascend"
    # Zero duty everywhere is exactly the thermal floor — no epsilon.
    assert payload.zero_duty_parity_db == 0.0, (
        f"zero-duty floor drifted {payload.zero_duty_parity_db:.3e} dB "
        "from thermal")
    # More interference can only raise the floor and shrink capacity.
    for previous, current in zip(payload.floors_dbm,
                                 payload.floors_dbm[1:]):
        assert current >= previous - 1e-12, (
            f"noise floor fell as duty rose: {payload.floors_dbm}")
    for previous, current in zip(payload.efficiencies,
                                 payload.efficiencies[1:]):
        assert current <= previous + 1e-12, (
            f"capacity rose as duty rose: {payload.efficiencies}")
    assert all(efficiency > 0.0 for efficiency in payload.efficiencies), (
        "spectral efficiency must stay positive")
    # Exact replay: the model is draw-free given the seed.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("world_coexistence").run(dict(params))
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "world_coexistence",
    title="Coexistence — victim capacity vs interferer duty cycle",
    tags=("sweep", "world", "iot"),
    params=(
        Param("victim", "str", "iot_wifi", "victim device family"),
        Param("duties", "float_seq",
              (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
              "shared interferer duty cycles (ascending, in [0, 1])"),
        Param("noise_figure_db", "float", 6.0, "victim receiver NF (dB)"),
        Param("seed", "int", 2021, "scenario multipath seed"),
    ),
    scenarios=("iot_wifi", "iot_ble", "iot_zigbee"),
    modules=("channel", "devices", "world"),
    smoke={"duties": (0.0, 0.1, 1.0)},
    summarize=_summary_world_coexistence,
    check=_check_world_coexistence)
def _run_world_coexistence(victim: str, duties: Tuple[float, ...],
                           noise_figure_db: float,
                           seed: int) -> WorldCoexistenceResult:
    levels = tuple(sorted(float(duty) for duty in duties))
    model = CoexistenceModel(victim=victim,
                             noise_figure_db=noise_figure_db, seed=seed)
    floors, efficiencies = model.capacity_curve(levels)
    interferers = tuple(
        (family, float(model.interferer_power_dbm(family)))
        for family in COEXISTENCE_FAMILIES if family != victim)
    zero_parity = abs(
        model.effective_floor_dbm({family: 0.0 for family, _power
                                   in interferers}) -
        model.thermal_floor_dbm)
    return WorldCoexistenceResult(
        victim=victim,
        duties=levels,
        floors_dbm=tuple(float(floor) for floor in floors),
        efficiencies=tuple(float(eff) for eff in efficiencies),
        interferer_powers_dbm=interferers,
        thermal_floor_dbm=model.thermal_floor_dbm,
        victim_power_dbm=model.victim_power_dbm,
        zero_duty_parity_db=float(zero_parity))


__all__ = [
    "WorldCoexistenceResult",
    "WorldMobilityResult",
    "WorldTopologyResult",
]
