"""Plain-text rendering of experiment results.

The benchmark harness prints, for every reproduced table and figure, the
same rows/series the paper reports.  These helpers keep that rendering
consistent (fixed-width columns, explicit units, no external plotting
dependencies).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

Number = Union[int, float]

#: Cell text used for missing values (NaN cells, empty tables).
PLACEHOLDER_CELL = "n/a"


def _format_cell(value, precision: int) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return PLACEHOLDER_CELL
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence],
                 precision: int = 2,
                 title: str = "") -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of row sequences; floats are formatted to ``precision``.
    precision:
        Decimal places for float cells.
    title:
        Optional title printed above the table.
    """
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows]
    header_row = [str(h) for h in headers]
    if not rendered_rows:
        # Empty input still renders a well-formed table: one placeholder
        # row instead of a dangling header.
        rendered_rows = [[PLACEHOLDER_CELL] * len(header_row)]
    widths = [len(h) for h in header_row]
    for row in rendered_rows:
        if len(row) != len(header_row):
            raise ValueError("row length does not match header length")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_row, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Number], ys: Sequence[Number],
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 2) -> str:
    """Render an (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    return format_table([x_label, y_label], zip(xs, ys), precision=precision,
                        title=name)


def format_comparison(name: str, xs: Sequence[Number],
                      with_values: Sequence[Number],
                      without_values: Sequence[Number],
                      x_label: str = "x",
                      precision: int = 2) -> str:
    """Render a with/without-metasurface comparison as a table."""
    if not (len(xs) == len(with_values) == len(without_values)):
        raise ValueError("series lengths differ")
    rows = [
        (x, w, wo, w - wo)
        for x, w, wo in zip(xs, with_values, without_values)
    ]
    return format_table(
        [x_label, "with surface", "without surface", "improvement"],
        rows, precision=precision, title=name)


def format_heatmap(grid: dict, precision: int = 1, title: str = "") -> str:
    """Render a (vx, vy) -> value grid as a matrix-style table.

    Missing and NaN cells render as :data:`PLACEHOLDER_CELL`; an empty
    grid renders a single placeholder row instead of raising.
    """
    if not grid:
        return format_table(["Vx\\Vy"], [], precision=precision, title=title)
    vx_values = sorted({key[0] for key in grid})
    vy_values = sorted({key[1] for key in grid})
    headers = ["Vx\\Vy"] + [f"{vy:g}" for vy in vy_values]
    rows = []
    for vx in vx_values:
        row = [f"{vx:g}"]
        for vy in vy_values:
            value = grid.get((vx, vy))
            row.append(float("nan") if value is None else float(value))
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


__all__ = ["PLACEHOLDER_CELL", "format_table", "format_series",
           "format_comparison", "format_heatmap"]
