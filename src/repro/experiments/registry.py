"""Declarative experiment registry.

Every reproduced table, figure and sweep of the paper is described by a
frozen :class:`ExperimentSpec`: a name, a typed/validated parameter
schema with defaults, tags (``figure`` / ``table`` / ``sweep`` /
``network`` / ``sensing`` / ...), and coverage metadata naming the
canonical scenarios, :data:`~repro.channel.grid.SWEEP_AXES` and
``repro`` modules the experiment exercises.  Specs are registered with
the :func:`experiment` decorator::

    @experiment("fig16", title="Fig. 16 - transmissive gain",
                tags=("figure", "sweep"),
                params=(Param("distance_cm", "float_seq", (24, 30)),),
                scenarios=("transmissive",), axes=("distance",))
    def _run_fig16(distance_cm):
        ...

which leaves the function untouched and records the spec in the
module-level :data:`REGISTRY`.  The registry makes the whole
reproduction one enumerable suite: :class:`~repro.experiments.runner.Runner`
executes specs with parameter overrides and caching, and
``python -m repro.experiments`` lists, describes, runs and
coverage-audits them from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.channel.grid import SWEEP_AXES

#: Parameter kinds a spec may declare.  ``float_seq`` is a tuple of
#: floats; it accepts a bare number (one-element axis), any sequence of
#: numbers, or — from the CLI — a comma-separated string.
PARAM_KINDS = ("int", "float", "bool", "str", "float_seq")

#: Canonical scenario families an experiment can exercise (the coverage
#: universe of the ``coverage`` CLI subcommand).
SCENARIO_NAMES = ("transmissive", "reflective", "iot_wifi", "iot_ble",
                  "iot_zigbee", "fleet", "respiration")

#: ``repro`` subsystems an experiment can exercise.
MODULE_NAMES = ("api", "channel", "core", "devices", "metasurface",
                "network", "radio", "sensing", "serve", "world")


class ParameterError(ValueError):
    """An override used an unknown parameter name or an ill-typed value."""


class DuplicateExperimentError(ValueError):
    """Two specs tried to register under the same name."""


class UnknownExperimentError(KeyError):
    """A lookup named an experiment the registry does not know."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep prose.
        return self.args[0]


def _coerce_float_seq(value: Any) -> Tuple[float, ...]:
    if isinstance(value, bool):
        raise ParameterError("expected a sequence of numbers, got a bool")
    if isinstance(value, (int, float)):
        return (float(value),)
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(",") if part.strip()]
        if not parts:
            raise ParameterError(f"cannot parse {value!r} as a number list")
        try:
            return tuple(float(part) for part in parts)
        except ValueError as error:
            raise ParameterError(
                f"cannot parse {value!r} as a number list") from error
    try:
        items = list(value)
    except TypeError as error:
        raise ParameterError(
            f"expected a sequence of numbers, got {type(value).__name__}"
        ) from error
    if not items:
        raise ParameterError("expected a non-empty sequence of numbers")
    coerced = []
    for item in items:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ParameterError(
                f"sequence items must be numbers, got {item!r}")
        coerced.append(float(item))
    return tuple(coerced)


@dataclass(frozen=True)
class Param:
    """One typed parameter of an experiment.

    Attributes
    ----------
    name:
        Keyword name, matching the registered function's signature.
    kind:
        One of :data:`PARAM_KINDS`.
    default:
        Default value (coerced at registration, so specs always carry
        canonical defaults).
    help:
        One-line description for ``describe``.
    """

    name: str
    kind: str
    default: Any
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(f"unknown parameter kind {self.kind!r}; "
                             f"expected one of {PARAM_KINDS}")
        object.__setattr__(self, "default", self.coerce(self.default))

    def coerce(self, value: Any) -> Any:
        """Validate/convert a Python value for this parameter.

        Integers widen to floats for ``float`` parameters; everything
        else must already have the declared type.  Raises
        :class:`ParameterError` on mismatch.
        """
        if self.kind == "float_seq":
            return _coerce_float_seq(value)
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ParameterError(
                    f"parameter {self.name!r} expects a bool, "
                    f"got {value!r}")
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ParameterError(
                    f"parameter {self.name!r} expects an int, got {value!r}")
            return int(value)
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ParameterError(
                    f"parameter {self.name!r} expects a number, "
                    f"got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise ParameterError(
                f"parameter {self.name!r} expects a string, got {value!r}")
        return value

    def parse(self, text: str) -> Any:
        """Parse a CLI ``--set name=value`` string into a typed value."""
        if self.kind == "str":
            return text
        if self.kind == "bool":
            lowered = text.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ParameterError(
                f"parameter {self.name!r} expects true/false, got {text!r}")
        if self.kind == "int":
            try:
                return int(text)
            except ValueError as error:
                raise ParameterError(
                    f"parameter {self.name!r} expects an int, "
                    f"got {text!r}") from error
        if self.kind == "float":
            try:
                return float(text)
            except ValueError as error:
                raise ParameterError(
                    f"parameter {self.name!r} expects a number, "
                    f"got {text!r}") from error
        return self.coerce(text)


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one registered experiment.

    ``function`` runs the experiment (keyword arguments exactly the
    declared parameter names) and returns the payload.  ``smoke`` maps
    parameter names to cheaper values for quick suite-wide runs.
    ``summarize(payload, params)`` renders the paper's table/series for
    the payload and ``check(payload, params)`` asserts its shape (the
    claims the benchmarks gate).
    """

    name: str
    title: str
    function: Callable[..., Any]
    params: Tuple[Param, ...] = ()
    tags: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()
    axes: Tuple[str, ...] = ()
    modules: Tuple[str, ...] = ()
    smoke: Mapping[str, Any] = field(default_factory=dict)
    summarize: Optional[Callable[[Any, Mapping[str, Any]], str]] = None
    check: Optional[Callable[[Any, Mapping[str, Any]], None]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if not self.tags:
            raise ValueError(f"experiment {self.name!r} declares no tags")
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ValueError(
                f"experiment {self.name!r} declares duplicate parameters")
        for axis in self.axes:
            if axis not in SWEEP_AXES:
                raise ValueError(
                    f"experiment {self.name!r} names unknown axis {axis!r}; "
                    f"expected a subset of {SWEEP_AXES}")
        for scenario in self.scenarios:
            if scenario not in SCENARIO_NAMES:
                raise ValueError(
                    f"experiment {self.name!r} names unknown scenario "
                    f"{scenario!r}; expected a subset of {SCENARIO_NAMES}")
        for module in self.modules:
            if module not in MODULE_NAMES:
                raise ValueError(
                    f"experiment {self.name!r} names unknown module "
                    f"{module!r}; expected a subset of {MODULE_NAMES}")
        # Fail at registration, not first run, on a bad smoke profile.
        object.__setattr__(self, "smoke", dict(self.smoke))
        self.resolve(self.smoke)

    def param(self, name: str) -> Param:
        """The declared parameter called ``name``."""
        for param in self.params:
            if param.name == name:
                return param
        known = ", ".join(sorted(p.name for p in self.params)) or "(none)"
        raise ParameterError(
            f"experiment {self.name!r} has no parameter {name!r}; "
            f"known parameters: {known}")

    def defaults(self) -> Dict[str, Any]:
        """Default parameter values, in declaration order."""
        return {param.name: param.default for param in self.params}

    def resolve(self, overrides: Mapping[str, Any],
                smoke: bool = False) -> Dict[str, Any]:
        """Full parameter dict: defaults, then smoke profile, then
        ``overrides`` — every override validated against the schema."""
        resolved = self.defaults()
        layers = [self.smoke, overrides] if smoke else [overrides]
        for layer in layers:
            for name, value in layer.items():
                resolved[name] = self.param(name).coerce(value)
        return resolved

    def run(self, params: Mapping[str, Any]) -> Any:
        """Execute the experiment with an already-resolved param dict."""
        return self.function(**params)

    def describe(self) -> str:
        """Human-readable multi-line description (CLI ``describe``)."""
        lines = [f"{self.name} — {self.title}",
                 f"  tags      : {', '.join(self.tags)}"]
        if self.scenarios:
            lines.append(f"  scenarios : {', '.join(self.scenarios)}")
        if self.axes:
            lines.append(f"  axes      : {', '.join(self.axes)}")
        if self.modules:
            lines.append(f"  modules   : {', '.join(self.modules)}")
        if self.params:
            lines.append("  parameters:")
            for param in self.params:
                smoke = (f"  [smoke: {self.smoke[param.name]!r}]"
                         if param.name in self.smoke else "")
                help_text = f"  — {param.help}" if param.help else ""
                lines.append(f"    {param.name} ({param.kind}) = "
                             f"{param.default!r}{smoke}{help_text}")
        else:
            lines.append("  parameters: (none)")
        return "\n".join(lines)


class ExperimentRegistry:
    """Ordered collection of :class:`ExperimentSpec`\\ s."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; duplicate names are an error."""
        if spec.name in self._specs:
            raise DuplicateExperimentError(
                f"experiment {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """Look a spec up by name."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none registered)"
            raise UnknownExperimentError(
                f"unknown experiment {name!r}; known experiments: "
                f"{known}") from None

    def all(self, tag: Optional[str] = None) -> Tuple[ExperimentSpec, ...]:
        """Every spec, optionally restricted to one tag."""
        specs = self._specs.values()
        if tag is None:
            return tuple(specs)
        return tuple(spec for spec in specs if tag in spec.tags)

    def names(self, tag: Optional[str] = None) -> Tuple[str, ...]:
        """Registered names, optionally restricted to one tag."""
        return tuple(spec.name for spec in self.all(tag))

    def tags(self) -> Tuple[str, ...]:
        """Every tag any spec declares, sorted."""
        return tuple(sorted({tag for spec in self._specs.values()
                             for tag in spec.tags}))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry the :func:`experiment` decorator fills.
#: Importing :mod:`repro.experiments` registers the full catalogue.
REGISTRY = ExperimentRegistry()


def experiment(name: str, *, title: str,
               params: Sequence[Param] = (),
               tags: Sequence[str] = (),
               scenarios: Sequence[str] = (),
               axes: Sequence[str] = (),
               modules: Sequence[str] = (),
               smoke: Optional[Mapping[str, Any]] = None,
               summarize: Optional[Callable] = None,
               check: Optional[Callable] = None,
               registry: Optional[ExperimentRegistry] = None):
    """Register the decorated function as an experiment.

    The function itself is returned unchanged; the registration is a
    side effect on ``registry`` (default: the module-level
    :data:`REGISTRY`).
    """
    target = registry if registry is not None else REGISTRY

    def decorate(function: Callable) -> Callable:
        target.register(ExperimentSpec(
            name=name, title=title, function=function,
            params=tuple(params), tags=tuple(tags),
            scenarios=tuple(scenarios), axes=tuple(axes),
            modules=tuple(modules), smoke=dict(smoke or {}),
            summarize=summarize, check=check))
        return function

    return decorate


__all__ = [
    "DuplicateExperimentError",
    "ExperimentRegistry",
    "ExperimentSpec",
    "MODULE_NAMES",
    "PARAM_KINDS",
    "Param",
    "ParameterError",
    "REGISTRY",
    "SCENARIO_NAMES",
    "UnknownExperimentError",
    "experiment",
]
