"""Service-level experiments: capacity curves and degradation under load.

Two registered experiments close the loop on :mod:`repro.serve`:

* ``serve_capacity`` — delivered throughput vs batching window at a
  fixed open-loop load.  One deterministic request trace is served
  repeatedly by fresh fault-free services whose only difference is the
  coalescing window; throughput is ``ok`` responses over the virtual
  makespan.  The check gates a monotone-with-slack capacity curve
  (wider windows amortize the fixed probe-epoch cost, so throughput
  must not fall beyond slack), and pins zero-fault exactness: every
  ``ok`` measure value equals the direct
  :meth:`~repro.api.fleet.FleetSession.measure_aligned` probe for the
  same trace to <= 1e-9 dB.
* ``serve_degradation`` — the same service under a scaled fault mix.
  As the intensity knob rises, dropouts and probe errors turn requests
  into ``failed`` responses; the check gates graceful degradation
  (failure rate non-decreasing, throughput non-increasing, both within
  slack), zero-fault parity at intensity 0, and exact replay of both
  the fault traces and the payload.

Both experiments serve the *same* digest-pinned request trace at every
point of their sweep, so the curves compare service configurations,
never workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Tuple

import numpy as np

from repro.api.fleet import FleetSession, FleetSpec
from repro.experiments.artifacts import payload_equal
from repro.experiments.registry import Param, experiment
from repro.experiments.reporting import format_table
from repro.faults import FaultSchedule, FaultSpec, RetryPolicy
from repro.serve.loadgen import MEASURE_ONLY, LoadProfile, RequestMix
from repro.serve.loadgen import generate_trace
from repro.serve.requests import RequestTrace
from repro.serve.service import ServiceConfig, ServiceRunResult, serve_trace

#: Tolerance (dB) between served measure values and the direct fleet
#: probe for the same trace — the repo-wide parity discipline.
PARITY_TOLERANCE_DB = 1e-9

#: Fractional slack the monotone capacity/degradation gates allow
#: between adjacent sweep points (queueing makes the curves noisy at
#: smoke-scale traces; a capacity *cliff* is far larger).
MONOTONE_SLACK_FRACTION = 0.05


def _measure_parity_error_db(fleet: FleetSession, trace: RequestTrace,
                             result: ServiceRunResult) -> float:
    """Largest |served - direct| over the run's ok measure responses.

    The direct reference is one vectorized
    :meth:`~repro.api.fleet.FleetSession.measure_aligned` pass over the
    same (station, vx, vy) rows the service coalesced — the "what if a
    client had called the fleet API directly" baseline.
    """
    by_id = {request.request_id: request for request in trace.requests}
    served = [(by_id[response.request_id], response.value)
              for response in result.responses
              if response.kind == "measure" and response.ok]
    if not served:
        return 0.0
    names = [request.station for request, _value in served]
    vx = np.asarray([request.vx for request, _value in served], dtype=float)
    vy = np.asarray([request.vy for request, _value in served], dtype=float)
    direct = fleet.measure_aligned(vx, vy, stations=names)
    values = np.asarray([value for _request, value in served], dtype=float)
    return float(np.max(np.abs(values - direct)))


# ---------------------------------------------------------------------- #
# serve_capacity — throughput vs batching window at fixed load
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServeCapacityResult:
    """Capacity curve of the service across coalescing windows."""

    windows_s: Tuple[float, ...]
    throughput_rps: Tuple[float, ...]
    avg_latency_s: Tuple[float, ...]
    p95_latency_s: Tuple[float, ...]
    p99_latency_s: Tuple[float, ...]
    failure_rate: Tuple[float, ...]
    mean_batch_size: Tuple[float, ...]
    shed_counts: Tuple[int, ...]
    request_count: int
    station_count: int
    trace_digest: int
    max_parity_error_db: float

    @property
    def best_throughput_rps(self) -> float:
        """Highest delivered throughput anywhere on the curve."""
        return max(self.throughput_rps)


def _summary_serve_capacity(payload: ServeCapacityResult,
                            params: Mapping[str, Any]) -> str:
    rows = [[window * 1e3, rps, avg * 1e3, p95 * 1e3, p99 * 1e3, failure,
             batch, shed]
            for window, rps, avg, p95, p99, failure, batch, shed in zip(
                payload.windows_s, payload.throughput_rps,
                payload.avg_latency_s, payload.p95_latency_s,
                payload.p99_latency_s, payload.failure_rate,
                payload.mean_batch_size, payload.shed_counts)]
    return format_table(
        ["window (ms)", "throughput (rps)", "avg (ms)", "p95 (ms)",
         "p99 (ms)", "failure rate", "mean batch", "shed"],
        rows, precision=3,
        title=f"Serve capacity — {payload.request_count} requests over "
              f"{payload.station_count} stations "
              f"(max parity err {payload.max_parity_error_db:.1e} dB)")


def _check_serve_capacity(payload: ServeCapacityResult,
                          params: Mapping[str, Any]) -> None:
    windows = payload.windows_s
    throughput = payload.throughput_rps
    assert windows == tuple(sorted(windows)), "windows must be ascending"
    assert len(set(windows)) == len(windows), "windows must be distinct"
    # Monotone-with-slack capacity curve *until saturation*: widening
    # the window amortizes the fixed probe-epoch cost, so throughput
    # must not fall beyond slack anywhere on the rising edge up to the
    # peak.  Past the peak a window wider than its own fill time only
    # adds idle wait (and tail latency), so the decay side is shaped by
    # design, not gated.
    peak = throughput.index(max(throughput))
    slack = MONOTONE_SLACK_FRACTION * max(throughput) + 1.0
    for index in range(peak):
        assert throughput[index + 1] >= throughput[index] - slack, (
            f"capacity curve not monotone within slack up to its peak: "
            f"{throughput}")
    # Batching relieves admission-control pressure: wider windows may
    # not shed (noticeably) more than narrower ones.
    shed_slack = max(2, payload.request_count // 50)
    for previous, current in zip(payload.shed_counts,
                                 payload.shed_counts[1:]):
        assert current <= previous + shed_slack, (
            f"shed counts grew with the window: {payload.shed_counts}")
    # Zero-fault service == direct fleet probes for the same trace.
    assert payload.max_parity_error_db <= PARITY_TOLERANCE_DB, (
        f"served measure values drifted {payload.max_parity_error_db:.3e} "
        "dB from the direct fleet probe")
    # Exact replay: identical parameters -> identical trace and payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("serve_capacity").run(dict(params))
    assert replay.trace_digest == payload.trace_digest, (
        "request trace not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "serve_capacity",
    title="Serving capacity — throughput vs batching window at fixed load",
    tags=("sweep", "serving", "network"),
    params=(
        Param("stations", "int", 8, "fleet size (office deployment)"),
        Param("rate_rps", "float", 300.0, "aggregate open-loop arrival rate"),
        Param("duration_s", "float", 1.5, "trace duration (virtual seconds)"),
        Param("windows_s", "float_seq", (0.0, 0.005, 0.01, 0.02, 0.05),
              "coalescing windows to sweep (ascending; 0 = unbatched)"),
        Param("queue_capacity", "int", 64, "admission-control queue bound"),
        Param("max_batch", "int", 32, "most requests one window coalesces"),
        Param("arrival", "str", "poisson", "arrival process"),
        Param("seed", "int", 2021, "load-generator seed"),
    ),
    scenarios=("fleet",),
    modules=("api", "channel", "network", "serve"),
    smoke={"stations": 4, "rate_rps": 300.0, "duration_s": 0.4,
           "windows_s": (0.0, 0.01, 0.05)},
    summarize=_summary_serve_capacity,
    check=_check_serve_capacity)
def _run_serve_capacity(stations: int, rate_rps: float, duration_s: float,
                        windows_s: Tuple[float, ...], queue_capacity: int,
                        max_batch: int, arrival: str,
                        seed: int) -> ServeCapacityResult:
    windows = tuple(sorted(float(window) for window in windows_s))
    spec = FleetSpec.office(station_count=stations)
    profile = LoadProfile(rate_rps=rate_rps, duration_s=duration_s,
                          arrival=arrival, mix=MEASURE_ONLY, seed=seed)
    trace = generate_trace(profile, spec.station_names)

    throughput: List[float] = []
    avg_latency: List[float] = []
    p95_latency: List[float] = []
    p99_latency: List[float] = []
    failure: List[float] = []
    batch_sizes: List[float] = []
    shed: List[int] = []
    parity = 0.0
    for window in windows:
        fleet = FleetSession(spec)
        result = serve_trace(fleet, trace, ServiceConfig(
            batch_window_s=window, queue_capacity=queue_capacity,
            max_batch=max_batch))
        metrics = result.metrics
        throughput.append(metrics.throughput_rps)
        avg_latency.append(metrics.latency.avg_s)
        p95_latency.append(metrics.latency.p95_s)
        p99_latency.append(metrics.latency.p99_s)
        failure.append(metrics.failure_rate)
        batch_sizes.append(metrics.mean_batch_size)
        shed.append(metrics.rejected_count)
        parity = max(parity,
                     _measure_parity_error_db(fleet, trace, result))
    return ServeCapacityResult(
        windows_s=windows,
        throughput_rps=tuple(throughput),
        avg_latency_s=tuple(avg_latency),
        p95_latency_s=tuple(p95_latency),
        p99_latency_s=tuple(p99_latency),
        failure_rate=tuple(failure),
        mean_batch_size=tuple(batch_sizes),
        shed_counts=tuple(shed),
        request_count=len(trace),
        station_count=stations,
        trace_digest=trace.digest(),
        max_parity_error_db=parity)


# ---------------------------------------------------------------------- #
# serve_degradation — capacity under a scaled fault mix
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServeDegradationResult:
    """Degradation curve of the service under injected faults."""

    intensities: Tuple[float, ...]
    failure_rate: Tuple[float, ...]
    throughput_rps: Tuple[float, ...]
    p95_latency_s: Tuple[float, ...]
    mean_retries: Tuple[float, ...]
    total_faults: Tuple[int, ...]
    fault_digests: Tuple[int, ...]
    request_count: int
    trace_digest: int
    zero_fault_parity_db: float


def _serve_fault_spec(intensity: float) -> FaultSpec:
    """The serving fault mix one scalar intensity parameterizes.

    Dropouts dominate (lossy RSSI reads), with call-level probe errors
    and noise bursts riding along at fixed fractions so the whole mix
    scales together.
    """
    return FaultSpec(probe_dropout_rate=0.02,
                     noise_burst_rate=0.01,
                     noise_burst_db=6.0,
                     probe_error_rate=0.01).scaled(intensity)


def _summary_serve_degradation(payload: ServeDegradationResult,
                               params: Mapping[str, Any]) -> str:
    rows = [[intensity, failure, rps, p95 * 1e3, retries, faults]
            for intensity, failure, rps, p95, retries, faults in zip(
                payload.intensities, payload.failure_rate,
                payload.throughput_rps, payload.p95_latency_s,
                payload.mean_retries, payload.total_faults)]
    return format_table(
        ["fault intensity", "failure rate", "throughput (rps)",
         "p95 (ms)", "retries", "faults"],
        rows, precision=3,
        title="Serve degradation — service capacity vs fault intensity "
              f"({payload.request_count} requests; zero-fault parity "
              f"{payload.zero_fault_parity_db:.1e} dB)")


def _check_serve_degradation(payload: ServeDegradationResult,
                             params: Mapping[str, Any]) -> None:
    intensities = payload.intensities
    failure = payload.failure_rate
    throughput = payload.throughput_rps
    assert intensities == tuple(sorted(intensities)), (
        "intensities must be ascending")
    # The fault-free service is exact: no failures, no faults, and
    # measure responses match the direct fleet probe bit-for-bit.
    if intensities[0] == 0.0:
        assert failure[0] == 0.0, "zero-fault service must not fail"
        assert payload.total_faults[0] == 0, "zero-fault run saw faults"
        assert payload.zero_fault_parity_db <= PARITY_TOLERANCE_DB, (
            f"zero-fault parity {payload.zero_fault_parity_db:.3e} dB")
    # Graceful degradation: more injected faults can only push the
    # failure rate up and the delivered throughput down (within slack).
    for previous, current in zip(failure, failure[1:]):
        assert current >= previous - MONOTONE_SLACK_FRACTION, (
            f"failure-rate curve not monotone within slack: {failure}")
    slack = MONOTONE_SLACK_FRACTION * max(throughput) + 1.0
    for previous, current in zip(throughput, throughput[1:]):
        assert current <= previous + slack, (
            f"throughput curve not monotone within slack: {throughput}")
    # No cliff: even at the top intensity the service keeps answering.
    assert failure[-1] <= 0.5, (
        f"degradation cliff: failure rate {failure[-1]:.2f}")
    # Exact replay: identical seed -> identical fault traces + payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("serve_degradation").run(dict(params))
    assert replay.fault_digests == payload.fault_digests, (
        "fault traces not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "serve_degradation",
    title="Serving degradation — capacity under a scaled fault mix",
    tags=("sweep", "serving", "robustness", "network"),
    params=(
        Param("intensities", "float_seq", (0.0, 0.5, 1.0, 2.0),
              "fault-mix scale factors (ascending)"),
        Param("stations", "int", 6, "fleet size (office deployment)"),
        Param("rate_rps", "float", 200.0, "aggregate open-loop arrival rate"),
        Param("duration_s", "float", 1.0, "trace duration (virtual seconds)"),
        Param("window_s", "float", 0.02, "coalescing window"),
        Param("seed", "int", 2021, "load + fault schedule seed"),
    ),
    scenarios=("fleet",),
    modules=("api", "channel", "network", "serve"),
    smoke={"stations": 4, "rate_rps": 150.0, "duration_s": 0.4,
           "intensities": (0.0, 1.0, 2.0)},
    summarize=_summary_serve_degradation,
    check=_check_serve_degradation)
def _run_serve_degradation(intensities: Tuple[float, ...], stations: int,
                           rate_rps: float, duration_s: float,
                           window_s: float,
                           seed: int) -> ServeDegradationResult:
    levels = tuple(sorted(float(intensity) for intensity in intensities))
    spec = FleetSpec.office(station_count=stations)
    mix = RequestMix(measure=0.90, optimize=0.03, schedule=0.02,
                     health=0.05)
    profile = LoadProfile(rate_rps=rate_rps, duration_s=duration_s,
                          mix=mix, seed=seed)
    trace = generate_trace(profile, spec.station_names)
    config = ServiceConfig(batch_window_s=window_s)

    failure: List[float] = []
    throughput: List[float] = []
    p95_latency: List[float] = []
    retries: List[float] = []
    faults: List[int] = []
    digests: List[int] = []
    parity = 0.0
    for intensity in levels:
        schedule = FaultSchedule(_serve_fault_spec(intensity), seed=seed)
        fleet = FleetSession(spec, fault_schedule=schedule,
                             retry_policy=RetryPolicy(max_attempts=3))
        result = serve_trace(fleet, trace, config)
        metrics = result.metrics
        failure.append(metrics.failure_rate)
        throughput.append(metrics.throughput_rps)
        p95_latency.append(metrics.latency.p95_s)
        retries.append(float(fleet.health.retries))
        faults.append(int(fleet.health.total_faults))
        digests.append(schedule.trace.digest())
        if intensity == 0.0:
            parity = _measure_parity_error_db(FleetSession(spec), trace,
                                              result)
    return ServeDegradationResult(
        intensities=levels,
        failure_rate=tuple(failure),
        throughput_rps=tuple(throughput),
        p95_latency_s=tuple(p95_latency),
        mean_retries=tuple(retries),
        total_faults=tuple(faults),
        fault_digests=tuple(digests),
        request_count=len(trace),
        trace_digest=trace.digest(),
        zero_fault_parity_db=parity)


__all__ = [
    "MONOTONE_SLACK_FRACTION",
    "PARITY_TOLERANCE_DB",
    "ServeCapacityResult",
    "ServeDegradationResult",
]
