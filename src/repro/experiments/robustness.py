"""Degradation-curve experiments for the fault/resilience plane.

Two registered experiments close the loop on :mod:`repro.faults`:

* ``fault_degradation`` — Algorithm 1 convergence error vs probe-fault
  rate.  For each injected fault rate the controller (with retries and
  median-of-k re-probing) searches the bias grid of the canonical
  transmissive link; the *regret* is how far the found optimum falls
  short of the fault-free search.  The check gates assert exact replay
  determinism, zero regret at zero fault rate, and graceful — not
  cliff — degradation up to a 20 % fault rate.
* ``fleet_churn`` — scheduled fleet throughput vs station-churn rate.
  A :class:`~repro.faults.StationChurn` process drives quarantine on a
  :class:`~repro.api.fleet.FleetSession` epoch by epoch; delivered
  throughput is normalized to the *full* roster (airtime a dead
  station cannot use is lost, not re-counted), so more churn can only
  cost throughput.  Gates mirror ``fault_degradation``: determinism,
  zero-churn parity with the fault-free scheduling pipeline, and
  bounded, monotone-with-slack degradation.

Both experiments draw every fault from one named-seed
:class:`~repro.faults.FaultSchedule` stream family, so identical
parameters reproduce the exact fault trace (pinned via the trace
digests carried in the payloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Tuple

import numpy as np

from repro.api.fleet import FleetSession, FleetSpec
from repro.api.session import LinkSession
from repro.core.controller import VoltageSweepConfig
from repro.experiments.artifacts import payload_equal
from repro.experiments.registry import Param, experiment
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import TransmissiveScenario
from repro.faults import (
    FaultSchedule,
    FaultSpec,
    ProbePolicy,
    RetryPolicy,
    StationChurn,
)

#: Slack (dB / Mbps) the monotone-degradation gates allow between
#: adjacent fault rates: resilience makes the curves noisy at the
#: replicate counts a smoke run affords, but a *cliff* is far larger.
MONOTONE_SLACK_DB = 1.5
MONOTONE_SLACK_MBPS = 3.0


# ---------------------------------------------------------------------- #
# fault_degradation — convergence error vs probe-fault rate
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultDegradationResult:
    """Degradation curve of Algorithm 1 under injected probe faults."""

    fault_rates: Tuple[float, ...]
    mean_regret_db: Tuple[float, ...]
    mean_retries: Tuple[float, ...]
    mean_faults: Tuple[float, ...]
    clean_power_dbm: float
    trace_digests: Tuple[Tuple[int, ...], ...]

    @property
    def worst_regret_db(self) -> float:
        """Largest mean regret anywhere on the curve."""
        return max(self.mean_regret_db)


def _degradation_spec(rate: float) -> FaultSpec:
    """The fault mix one scalar ``rate`` parameterizes.

    Dropouts dominate (the paper's probes are RSSI reads over a lossy
    control channel); bursts, hard probe errors and stuck actuators
    ride along at fixed fractions of the same rate so the whole mix
    scales together and stays nested across rates.
    """
    return FaultSpec(
        probe_dropout_rate=rate,
        noise_burst_rate=0.5 * rate,
        noise_burst_db=6.0,
        probe_error_rate=0.25 * rate,
        stuck_rate=0.1 * rate,
    )


def _summary_fault_degradation(payload: FaultDegradationResult,
                               params: Mapping[str, Any]) -> str:
    rows = [[rate, regret, retries, faults]
            for rate, regret, retries, faults in zip(
                payload.fault_rates, payload.mean_regret_db,
                payload.mean_retries, payload.mean_faults)]
    return format_table(
        ["fault rate", "mean regret (dB)", "mean retries", "mean faults"],
        rows, precision=3,
        title="Fault degradation — Algorithm 1 convergence error vs "
              "probe-fault rate (graceful, no cliff)")


def _check_fault_degradation(payload: FaultDegradationResult,
                             params: Mapping[str, Any]) -> None:
    rates = payload.fault_rates
    regrets = payload.mean_regret_db
    assert rates == tuple(sorted(rates)), "rates must be ascending"
    # Zero-fault configs match the fault-free pipeline exactly.
    if rates[0] == 0.0:
        assert regrets[0] == 0.0, "zero-fault regret must be exactly 0"
        assert payload.mean_faults[0] == 0.0
    # Graceful degradation: monotone up to slack, and no cliff — the
    # resilient controller stays within a handful of dB of the clean
    # optimum even at a 20 % probe-fault rate.
    for previous, current in zip(regrets, regrets[1:]):
        assert current >= previous - MONOTONE_SLACK_DB, (
            f"regret curve not monotone within slack: {regrets}")
    assert payload.worst_regret_db <= 10.0, (
        f"degradation cliff: worst regret {payload.worst_regret_db:.2f} dB")
    # Exact replay: identical seed -> identical fault trace and payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("fault_degradation").run(dict(params))
    assert replay.trace_digests == payload.trace_digests, (
        "fault trace not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "fault_degradation",
    title="Degradation curve — Algorithm 1 convergence vs probe-fault rate",
    tags=("sweep", "robustness", "network"),
    params=(
        Param("fault_rates", "float_seq",
              (0.0, 0.02, 0.05, 0.10, 0.20),
              "injected probe-fault rates (ascending)"),
        Param("replicates", "int", 5, "fault-seed replicates per rate"),
        Param("repeats", "int", 3, "median-of-k probe re-voting factor"),
        Param("iterations", "int", 2, "Algorithm 1 refinement iterations"),
        Param("switches_per_axis", "int", 5, "voltage levels per axis"),
        Param("seed", "int", 2021, "base fault-schedule seed"),
    ),
    scenarios=("transmissive",),
    modules=("api", "core", "channel"),
    smoke={"replicates": 2, "fault_rates": (0.0, 0.05, 0.20)},
    summarize=_summary_fault_degradation,
    check=_check_fault_degradation)
def _run_fault_degradation(fault_rates: Tuple[float, ...], replicates: int,
                           repeats: int, iterations: int,
                           switches_per_axis: int,
                           seed: int) -> FaultDegradationResult:
    rates = tuple(sorted(float(rate) for rate in fault_rates))
    configuration = TransmissiveScenario().configuration()
    sweep = VoltageSweepConfig(iterations=iterations,
                               switches_per_axis=switches_per_axis)
    clean = LinkSession(configuration, sweep_config=sweep)
    clean_power = float(clean.optimize().best_power_dbm)

    mean_regret = []
    mean_retries = []
    mean_faults = []
    digests = []
    for rate in rates:
        regrets = []
        retries = []
        faults = []
        rate_digests = []
        for replicate in range(replicates):
            schedule = FaultSchedule(_degradation_spec(rate),
                                     seed=seed + replicate)
            session = LinkSession(
                configuration, sweep_config=sweep,
                fault_schedule=schedule,
                retry_policy=RetryPolicy(max_attempts=4),
                probe_policy=ProbePolicy(repeats=repeats))
            result = session.optimize()
            health = session.health
            # A faulty search can only do as well as the clean one on
            # this grid; clamp at zero so lucky noise never reports a
            # negative "error".
            regrets.append(max(0.0,
                               clean_power - float(result.best_power_dbm)))
            retries.append(float(health.retries))
            faults.append(float(health.total_faults))
            rate_digests.append(schedule.trace.digest())
        mean_regret.append(float(np.mean(regrets)))
        mean_retries.append(float(np.mean(retries)))
        mean_faults.append(float(np.mean(faults)))
        digests.append(tuple(rate_digests))
    return FaultDegradationResult(
        fault_rates=rates,
        mean_regret_db=tuple(mean_regret),
        mean_retries=tuple(mean_retries),
        mean_faults=tuple(mean_faults),
        clean_power_dbm=clean_power,
        trace_digests=tuple(digests))


# ---------------------------------------------------------------------- #
# fleet_churn — scheduled throughput vs station-churn rate
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FleetChurnResult:
    """Degradation curve of fleet scheduling under station churn."""

    churn_rates: Tuple[float, ...]
    mean_delivered_mbps: Tuple[float, ...]
    mean_survivor_fraction: Tuple[float, ...]
    fault_free_mbps: float
    trace_digests: Tuple[int, ...]


def _delivered_mbps(result, roster_size: int) -> float:
    """Epoch throughput normalized to the full roster.

    Airtime a quarantined station would have used is *lost* (its slot
    goes idle, TDMA does not silently re-pack), so each surviving
    allocation contributes ``rate / roster_size`` — a metric that can
    only fall as churn removes stations.
    """
    raw = sum(allocation.rate_mbps for allocation in result.allocations)
    return (raw / roster_size) * (1.0 - result.retune_overhead_fraction)


def _summary_fleet_churn(payload: FleetChurnResult,
                         params: Mapping[str, Any]) -> str:
    rows = [[rate, delivered, fraction]
            for rate, delivered, fraction in zip(
                payload.churn_rates, payload.mean_delivered_mbps,
                payload.mean_survivor_fraction)]
    return format_table(
        ["churn rate (1/MTBF)", "delivered (Mbps)", "survivor fraction"],
        rows, precision=3,
        title="Fleet churn — scheduled throughput vs station-churn rate "
              f"(fault-free: {payload.fault_free_mbps:.1f} Mbps)")


def _check_fleet_churn(payload: FleetChurnResult,
                       params: Mapping[str, Any]) -> None:
    rates = payload.churn_rates
    delivered = payload.mean_delivered_mbps
    assert rates == tuple(sorted(rates)), "rates must be ascending"
    # Zero churn matches the fault-free scheduling pipeline (every
    # epoch's delivered throughput is bit-identical; averaging the
    # epochs costs one float rounding, hence the 1e-9).
    if rates[0] == 0.0:
        assert abs(delivered[0] - payload.fault_free_mbps) <= 1e-9, (
            "zero-churn throughput must equal the fault-free pipeline")
        assert payload.mean_survivor_fraction[0] == 1.0
    # Graceful degradation: throughput falls monotonically with churn
    # (no suspicious rebounds beyond slack), and no cliff — the
    # quarantine/re-schedule path keeps delivering at least in
    # proportion to the stations that actually survive (with margin).
    for previous, current in zip(delivered, delivered[1:]):
        assert current <= previous + MONOTONE_SLACK_MBPS, (
            f"throughput curve not monotone within slack: {delivered}")
    for rate, value, fraction in zip(rates, delivered,
                                     payload.mean_survivor_fraction):
        floor = 0.5 * payload.fault_free_mbps * fraction
        assert value >= floor, (
            f"throughput cliff at churn rate {rate}: {value:.2f} Mbps "
            f"< proportional floor {floor:.2f} Mbps")
    # Exact replay: identical seed -> identical churn trace and payload.
    from repro.experiments.registry import REGISTRY
    replay = REGISTRY.get("fleet_churn").run(dict(params))
    assert replay.trace_digests == payload.trace_digests, (
        "churn trace not reproducible under identical seed")
    assert payload_equal(replay, payload, tolerance=0.0), (
        "payload not bit-identical under identical seed")


@experiment(
    "fleet_churn",
    title="Degradation curve — fleet throughput vs station-churn rate",
    tags=("sweep", "robustness", "network"),
    params=(
        Param("churn_rates", "float_seq", (0.0, 0.05, 0.10, 0.20),
              "per-epoch station failure probabilities (1/MTBF)"),
        Param("epochs", "int", 12, "scheduling epochs per rate"),
        Param("station_count", "int", 6, "fleet size"),
        Param("mttr_epochs", "float", 2.0, "mean epochs to recover"),
        Param("strategy", "str", "polarization-reuse",
              "scheduling strategy under churn"),
        Param("seed", "int", 2021, "churn-schedule seed"),
    ),
    scenarios=("fleet",),
    modules=("api", "network", "channel"),
    smoke={"epochs": 6, "station_count": 4,
           "churn_rates": (0.0, 0.10, 0.20)},
    summarize=_summary_fleet_churn,
    check=_check_fleet_churn)
def _run_fleet_churn(churn_rates: Tuple[float, ...], epochs: int,
                     station_count: int, mttr_epochs: float, strategy: str,
                     seed: int) -> FleetChurnResult:
    rates = tuple(sorted(float(rate) for rate in churn_rates))
    spec = FleetSpec.random_home(station_count=station_count)
    fault_free = FleetSession(spec).schedule(strategy)
    fault_free_mbps = _delivered_mbps(fault_free, station_count)

    mean_delivered = []
    mean_fraction = []
    digests = []
    for rate in rates:
        fault_spec = (FaultSpec() if rate == 0.0 else
                      FaultSpec(station_mtbf_epochs=1.0 / rate,
                                station_mttr_epochs=max(1.0, mttr_epochs)))
        schedule = FaultSchedule(fault_spec, seed=seed)
        fleet = FleetSession(spec, fault_schedule=schedule)
        churn = StationChurn(schedule, fleet.station_names)
        # Epochs with the same survivor set re-use the same schedule
        # (the searches are deterministic in the survivor subset).
        memo: Dict[FrozenSet[str], Any] = {}
        delivered = []
        fractions = []
        for _epoch in range(epochs):
            survivors = fleet.apply_churn(churn.advance())
            key = frozenset(survivors)
            if key not in memo:
                memo[key] = fleet.schedule(strategy)
            delivered.append(_delivered_mbps(memo[key], station_count))
            fractions.append(len(survivors) / station_count)
        mean_delivered.append(float(np.mean(delivered)))
        mean_fraction.append(float(np.mean(fractions)))
        digests.append(schedule.trace.digest())
    return FleetChurnResult(
        churn_rates=rates,
        mean_delivered_mbps=tuple(mean_delivered),
        mean_survivor_fraction=tuple(mean_fraction),
        fault_free_mbps=fault_free_mbps,
        trace_digests=tuple(digests))


__all__ = [
    "FaultDegradationResult",
    "FleetChurnResult",
    "MONOTONE_SLACK_DB",
    "MONOTONE_SLACK_MBPS",
]
