"""Sharded multiprocess execution: experiment pools and grid shards.

Two parallel planes, one claiming discipline:

* :func:`run_all_parallel` — the experiment-level executor behind
  ``Runner.run_all(workers=N)`` and ``python -m repro.experiments
  run-all --workers N``.  The registry selection is the work list; a
  ``ProcessPoolExecutor`` of ``N`` workers *claims* one experiment at a
  time off it (at most one unclaimed slice is in flight per idle
  worker, so a slow experiment never starves the queue), runs it in the
  child through an ordinary store-less
  :class:`~repro.experiments.runner.Runner`, and ships the result back
  as the lossless tagged JSON of :mod:`repro.experiments.artifacts`.
  The parent :meth:`~repro.experiments.runner.Runner.absorb`\\ s every
  envelope, so its memory cache and
  :class:`~repro.experiments.store.ResultStore` end up exactly as a
  serial run would leave them — and results come back in registry
  order, ``payload_equal`` to the serial path (every experiment's RNG
  is seeded from its own parameters, so streams cannot depend on which
  worker claimed it).

* :func:`evaluate_grid_sharded` — the grid-level executor for one huge
  :class:`~repro.channel.grid.ProbeGrid`.  The grid is
  :meth:`~repro.channel.grid.ProbeGrid.split` along its largest axis
  into per-worker slices; each worker evaluates its shard and writes
  the power slab straight into a :class:`multiprocessing.shared_memory.
  SharedMemory` block (no result pickling), and the parent reassembles
  the stacked ndarray — bit-identical to ``link.evaluate_grid(grid)``
  because the budget is per-point and slicing an axis slices the
  result.

Both planes report through :class:`ProgressReporter`
(claimed/done/total slices plus an ETA — the ``run-all`` live progress
line).  Worker processes default to the ``fork`` start method where the
platform offers it (cheap, inherits warm caches) and fall back to
``spawn``; either way the child re-imports :mod:`repro.experiments`
before touching the registry, so the catalogue exists even in a cold
interpreter.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

import numpy as np

from repro.channel.grid import ProbeGrid
from repro.channel.link import WirelessLink

#: Default worker count: one per CPU, at least one.
DEFAULT_WORKERS = max(1, int(multiprocessing.cpu_count()))


def default_mp_context() -> str:
    """``fork`` where available (cheap, warm caches), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------- #
# Progress reporting
# ---------------------------------------------------------------------- #
class ProgressReporter:
    """Claimed/done/total slice accounting with a live ETA line.

    On a TTY the line redraws in place (``\\r``); on plain streams every
    completion prints a full line, so CI logs keep the history.  The
    reporter is shared by the serial and parallel ``run_all`` paths and
    by the grid-shard executor — "slices" are experiments in the first
    case and grid shards in the second.
    """

    def __init__(self, total: int, label: str = "run-all",
                 stream: Optional[TextIO] = None,
                 enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None) -> None:
        # A negative total is a caller bug, but the reporter is pure
        # accounting — clamp rather than poison every later division.
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stdout
        self.enabled = bool(enabled)
        self.claimed = 0
        self.done = 0
        self.computed = 0
        self.cached = 0
        self.failed = 0
        self._clock = clock if clock is not None else time.perf_counter
        self._started = self._clock()
        self._live_line = False

    # -------------------------------------------------------------- #
    # Events
    # -------------------------------------------------------------- #
    def claim(self, name: str = "") -> None:
        """One slice was handed to a worker (or the serial loop)."""
        self.claimed += 1
        self._render(f"claimed {name}" if name else "claimed")

    def finish(self, name: str, status: str = "ok",
               elapsed: Optional[float] = None) -> None:
        """One slice completed; ``status`` is ``ok``/``cached``/...."""
        self.done += 1
        if status == "cached":
            self.cached += 1
        elif status.startswith("fail") or status.startswith("CHECK"):
            self.failed += 1
            self.computed += 1
        else:
            self.computed += 1
        timing = f" {elapsed:7.2f}s" if elapsed is not None else ""
        self._print_line(f"{name:24s}{timing}  {status}")
        self._render("")

    @contextmanager
    def timed(self, name: str, status: str = "ok") -> Iterator[None]:
        """Time one serial slice and emit its completion line."""
        start = self._clock()
        yield
        self.finish(name, status=status,
                    elapsed=max(0.0, self._clock() - start))

    # -------------------------------------------------------------- #
    # Rendering
    # -------------------------------------------------------------- #
    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion (``None`` before any data).

        Never negative: a clock stepping backwards (NTP slew, frozen
        test clocks) clamps elapsed time to zero, and completions past
        ``total`` (double-counted slices) clamp the remainder.
        """
        if self.done == 0 or self.total == 0:
            return None
        elapsed = max(0.0, self._clock() - self._started)
        remaining = max(0, self.total - self.done)
        return elapsed / self.done * remaining

    def line(self, suffix: str = "") -> str:
        """The live progress line."""
        eta = self.eta_seconds()
        eta_text = f"{eta:.1f}s" if eta is not None else "--"
        text = (f"[{self.label}] claimed {self.claimed}/{self.total}  "
                f"done {self.done}/{self.total}  eta {eta_text}")
        return f"{text}  {suffix}" if suffix else text

    def summary(self) -> str:
        """Post-run accounting (the CLI's closing line)."""
        elapsed = max(0.0, self._clock() - self._started)
        return (f"{self.done}/{self.total} slices in {elapsed:.2f}s "
                f"({self.computed} computed, {self.cached} cached)")

    def _is_tty(self) -> bool:
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def _render(self, suffix: str) -> None:
        if not self.enabled:
            return
        if self._is_tty():
            self.stream.write("\r\x1b[2K" + self.line(suffix))
            if self.done >= self.total:
                self.stream.write("\n")
                self._live_line = False
            else:
                self._live_line = True
            self.stream.flush()
        else:
            self.stream.write(self.line(suffix) + "\n")
            self.stream.flush()

    def _print_line(self, text: str) -> None:
        if not self.enabled:
            return
        if self._live_line:
            self.stream.write("\r\x1b[2K")
            self._live_line = False
        self.stream.write(text + "\n")
        self.stream.flush()


# ---------------------------------------------------------------------- #
# Claiming pool driver
# ---------------------------------------------------------------------- #
def _worker_init(sys_paths: List[str]) -> None:
    """Make the parent's import roots visible in a spawned child."""
    for path in reversed(sys_paths):
        if path not in sys.path:
            sys.path.insert(0, path)


def _claimed_completions(
    pool: ProcessPoolExecutor,
    tasks: Sequence[Tuple[str, Callable[..., Any], Tuple[Any, ...]]],
    window: int,
    progress: Optional[ProgressReporter],
) -> Iterator[Tuple[str, Any]]:
    """Run ``tasks`` through ``pool`` with slice claiming.

    At most ``window`` slices are claimed (submitted) at once; each
    completion claims the next unclaimed slice, so workers pull work as
    they free up instead of the queue being dealt out up front.  Yields
    ``(label, result)`` in completion order; a worker exception
    propagates immediately (remaining claims are cancelled by the
    caller's shutdown).
    """
    queue = deque(tasks)
    pending: Dict[Any, str] = {}

    def claim_next() -> None:
        if not queue:
            return
        label, function, args = queue.popleft()
        future = pool.submit(function, *args)
        pending[future] = label
        if progress is not None:
            progress.claim(label)

    for _ in range(max(1, window)):
        claim_next()
    while pending:
        done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
        for future in done:
            label = pending.pop(future)
            yield label, future.result()
            claim_next()


# ---------------------------------------------------------------------- #
# Experiment-level executor (run_all --workers N)
# ---------------------------------------------------------------------- #
_WORKER_RUNNER = None


def _run_experiment_in_worker(name: str,
                              params: Mapping[str, Any]) -> Tuple[str, float]:
    """Child-side slice body: run one experiment, return its JSON.

    ``params`` is the parent's fully-resolved parameter dict, so the
    child's ``resolve`` reproduces it exactly and the content key — and
    every parameter-derived RNG seed — is identical no matter which
    worker claimed the slice.
    """
    import repro.experiments  # noqa: F401  (registers the catalogue)
    from repro.experiments.runner import Runner

    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        _WORKER_RUNNER = Runner()
    start = time.perf_counter()
    result = _WORKER_RUNNER.run(name, **dict(params))
    return result.to_json(), time.perf_counter() - start


def run_all_parallel(
    runner: Any,
    specs: Sequence[Any],
    smoke: bool = False,
    workers: int = 2,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    progress: Optional[ProgressReporter] = None,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """Execute ``specs`` across a claiming worker pool.

    The parent resolves every spec's parameters first and serves
    anything its two-tier cache already holds (those slices finish as
    ``cached`` without touching the pool — a warm store makes this a
    zero-evaluation pass).  The rest are claimed by worker processes;
    each returned envelope is re-hydrated from its lossless JSON and
    absorbed into the parent's caches.  Results are returned in spec
    order, ``payload_equal`` to a serial ``run_all``.
    """
    from repro.experiments.runner import ExperimentResult

    overrides = overrides or {}
    results: Dict[str, Any] = {}
    tasks: List[Tuple[str, Callable[..., Any], Tuple[Any, ...]]] = []
    for spec in specs:
        spec_overrides = dict(overrides.get(spec.name, {}))
        if runner.cached(spec.name, smoke=smoke, **spec_overrides):
            if progress is not None:
                progress.claim(spec.name)
                with progress.timed(spec.name, "cached"):
                    results[spec.name] = runner.run(spec.name, smoke=smoke,
                                                    **spec_overrides)
            else:
                results[spec.name] = runner.run(spec.name, smoke=smoke,
                                                **spec_overrides)
            continue
        params = runner.resolved_params(spec.name, smoke=smoke,
                                        **spec_overrides)
        tasks.append((spec.name, _run_experiment_in_worker,
                      (spec.name, params)))

    if tasks:
        context = multiprocessing.get_context(mp_context or
                                              default_mp_context())
        pool = ProcessPoolExecutor(max_workers=min(workers, len(tasks)),
                                   mp_context=context,
                                   initializer=_worker_init,
                                   initargs=(list(sys.path),))
        try:
            for name, (text, elapsed) in _claimed_completions(
                    pool, tasks, workers, progress):
                result = ExperimentResult.from_json(
                    text, registry=runner.registry)
                runner.absorb(result)
                results[name] = result
                if progress is not None:
                    progress.finish(name, "ok", elapsed)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    return [results[spec.name] for spec in specs]


# ---------------------------------------------------------------------- #
# Grid-level executor (one huge ProbeGrid across workers)
# ---------------------------------------------------------------------- #
def _evaluate_shard_into(link: WirelessLink, shard: ProbeGrid,
                         shm_name: str, moved_shape: Tuple[int, ...],
                         dim: int, row_offset: int) -> int:
    """Child-side shard body: evaluate and write the slab in place.

    The shard's power slab goes into rows ``[row_offset, row_offset +
    shard.shape[dim])`` of the shared output (split dimension moved to
    the front, so every shard's slab is one contiguous row block — a
    single memcpy, no result pickling).
    """
    powers = np.moveaxis(link.evaluate_grid(shard), dim, 0)
    block = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray(moved_shape, dtype=np.float64, buffer=block.buf)
        out[row_offset:row_offset + powers.shape[0]] = powers
    finally:
        block.close()
    return powers.shape[0]


def evaluate_grid_sharded(link: WirelessLink, grid: ProbeGrid,
                          workers: Optional[int] = None,
                          progress: Optional[ProgressReporter] = None,
                          mp_context: Optional[str] = None) -> np.ndarray:
    """``link.evaluate_grid(grid)`` sharded across a worker pool.

    The grid is split along its largest axis
    (:meth:`~repro.channel.grid.ProbeGrid.split`), one claiming worker
    pool evaluates the shards, and the slabs are reassembled through a
    shared-memory output block — bit-identical to the serial
    evaluation.  ``workers`` absent/0/1, or a grid too small to split,
    evaluates serially in-process (the exact identity path).
    """
    workers = DEFAULT_WORKERS if workers is None else int(workers)
    shards = grid.split(workers)
    if workers <= 1 or len(shards) <= 1:
        return link.evaluate_grid(grid)
    dim = grid.split_dim()
    assert dim is not None  # len(shards) > 1 implies a split dimension
    shape = grid.shape
    moved_shape = (shape[dim],) + shape[:dim] + shape[dim + 1:]
    if progress is None:
        reporter: Optional[ProgressReporter] = None
    else:
        reporter = progress

    block = shared_memory.SharedMemory(create=True,
                                       size=max(8 * grid.size, 8))
    context = multiprocessing.get_context(mp_context or default_mp_context())
    pool = ProcessPoolExecutor(max_workers=min(workers, len(shards)),
                               mp_context=context,
                               initializer=_worker_init,
                               initargs=(list(sys.path),))
    try:
        tasks: List[Tuple[str, Callable[..., Any], Tuple[Any, ...]]] = []
        row_offset = 0
        for index, shard in enumerate(shards):
            tasks.append((f"shard{index}", _evaluate_shard_into,
                          (link, shard, block.name, moved_shape, dim,
                           row_offset)))
            row_offset += shard.shape[dim]
        for label, _rows in _claimed_completions(pool, tasks, workers,
                                                 reporter):
            if reporter is not None:
                reporter.finish(label, "ok")
        stacked = np.ndarray(moved_shape, dtype=np.float64,
                             buffer=block.buf).copy()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
        block.close()
        block.unlink()
    return np.ascontiguousarray(np.moveaxis(stacked, 0, dim))


__all__ = [
    "DEFAULT_WORKERS",
    "ProgressReporter",
    "default_mp_context",
    "evaluate_grid_sharded",
    "run_all_parallel",
]
