"""Command-line front end for the experiment registry.

``python -m repro.experiments`` drives the whole reproduction suite:

* ``list [--tag TAG]``            — enumerate registered experiments.
* ``describe NAME``               — parameter schema, tags, coverage.
* ``run NAME [--set k=v] [--smoke] [--json PATH] [--check]`` — run one
  experiment, print its summary, optionally archive the serialized
  :class:`~repro.experiments.runner.ExperimentResult`.
* ``run-all [--tag TAG] [--smoke] [--workers N] [--store DIR]
  [--json-dir DIR] [--check]`` — run a tag's worth (or everything)
  with a live claimed/done/ETA progress line; ``--workers`` shards the
  suite across a multiprocess pool, ``--store`` attaches the
  persistent result store so warm re-runs skip anything already
  computed.
* ``coverage [--json PATH]``      — which scenarios,
  :data:`~repro.channel.grid.SWEEP_AXES` and ``repro`` modules the
  registered suite exercises, and what remains uncovered.
* ``bench-report [--dir DIR] [--json PATH]`` — render the per-PR
  ``BENCH_<n>.json`` benchmark archives as the perf trajectory across
  PRs.
* ``serve [--stations N] [--rate RPS] [--duration S] [--window S]
  [--arrival KIND] [--seed N] [--json PATH]`` — one ad-hoc
  :class:`~repro.serve.service.SurfaceService` run: generate an
  open-loop trace, serve it on the virtual clock, print the service
  metrics (throughput, latency percentiles, batch occupancy, queue
  depth, shed counts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.channel.grid import SWEEP_AXES
from repro.experiments.parallel import ProgressReporter
from repro.experiments.registry import (
    MODULE_NAMES,
    REGISTRY,
    SCENARIO_NAMES,
    ExperimentRegistry,
    ParameterError,
    UnknownExperimentError,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import Runner


def _parse_overrides(spec, assignments: Sequence[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for assignment in assignments:
        name, separator, text = assignment.partition("=")
        if not separator:
            raise ParameterError(
                f"malformed --set {assignment!r}; expected name=value")
        overrides[name.strip()] = spec.param(name.strip()).parse(text)
    return overrides


def _cmd_list(registry: ExperimentRegistry, tag: Optional[str]) -> int:
    specs = registry.all(tag)
    rows = [[spec.name, ", ".join(spec.tags), len(spec.params), spec.title]
            for spec in specs]
    suffix = f" tagged {tag!r}" if tag else ""
    print(format_table(["name", "tags", "params", "title"], rows,
                       title=f"{len(specs)} registered experiments{suffix}"))
    return 0


def _cmd_describe(registry: ExperimentRegistry, name: str) -> int:
    print(registry.get(name).describe())
    return 0


def _cmd_run(registry: ExperimentRegistry, name: str,
             assignments: Sequence[str], smoke: bool,
             json_path: Optional[str], check: bool, quiet: bool) -> int:
    runner = Runner(registry)
    spec = registry.get(name)
    result = runner.run(name, smoke=smoke,
                        **_parse_overrides(spec, assignments))
    if not quiet:
        print(result.summary())
    if json_path:
        Path(json_path).write_text(result.to_json(indent=2))
        print(f"\nwrote {json_path}")
    if check:
        try:
            result.check()
        except AssertionError as error:
            detail = f" ({error})" if str(error) else ""
            print(f"check FAILED: {name}{detail}", file=sys.stderr)
            return 1
        print(f"check passed: {name}")
    return 0


def _cmd_run_all(registry: ExperimentRegistry, tag: Optional[str],
                 smoke: bool, json_dir: Optional[str], check: bool,
                 workers: int, store_dir: Optional[str]) -> int:
    runner = Runner(registry, store=store_dir)
    specs = registry.all(tag)
    if not specs:
        print(f"no experiments tagged {tag!r}")
        return 1
    directory = Path(json_dir) if json_dir else None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    progress = ProgressReporter(total=len(specs), label="run-all")
    start = time.perf_counter()
    results = runner.run_all(tag=tag, smoke=smoke, workers=workers,
                             progress=progress)
    elapsed = time.perf_counter() - start
    failures: List[str] = []
    for result in results:
        if check:
            try:
                result.check()
            except AssertionError as error:
                failures.append(result.name)
                detail = f" ({error})" if str(error) else ""
                print(f"CHECK FAILED: {result.name}{detail}")
        if directory is not None:
            (directory / f"{result.name}.json").write_text(
                result.to_json(indent=2))
    mode = "smoke" if smoke else "full"
    pool = f", {workers} workers" if workers and workers > 1 else ""
    print(f"\nran {len(specs)} experiments ({mode} parameters{pool}) "
          f"in {elapsed:.2f}s: {progress.computed} computed, "
          f"{progress.cached} cached"
          + (f"; archived to {directory}" if directory else ""))
    if runner.store is not None:
        stats = runner.store.stats
        print(f"store {runner.store.directory}: {stats.entries} entries, "
              f"{stats.hits} hits, {stats.writes} writes, "
              f"{stats.corrupt} corrupt")
    if failures:
        print(f"failed checks: {', '.join(failures)}")
        return 1
    return 0


def coverage_report(registry: ExperimentRegistry) -> Dict[str, object]:
    """Aggregate which scenarios/axes/modules the suite exercises."""
    def exercised(universe, attribute):
        return {item: sorted(spec.name for spec in registry
                             if item in getattr(spec, attribute))
                for item in universe}

    scenarios = exercised(SCENARIO_NAMES, "scenarios")
    axes = exercised(SWEEP_AXES, "axes")
    modules = exercised(MODULE_NAMES, "modules")
    return {
        "experiment_count": len(registry),
        "tags": {tag: len(registry.all(tag)) for tag in registry.tags()},
        "scenarios": scenarios,
        "axes": axes,
        "modules": modules,
        "uncovered": {
            "scenarios": sorted(k for k, v in scenarios.items() if not v),
            "axes": sorted(k for k, v in axes.items() if not v),
            "modules": sorted(k for k, v in modules.items() if not v),
        },
    }


def format_coverage(report: Dict[str, object]) -> str:
    """Render :func:`coverage_report` as the CLI's text tables."""
    blocks = [f"{report['experiment_count']} experiments; tags: " +
              ", ".join(f"{tag} ({count})"
                        for tag, count in report["tags"].items())]
    for title, key in (("scenario coverage", "scenarios"),
                       ("sweep-axis coverage", "axes"),
                       ("module coverage", "modules")):
        rows = [[name, len(users), ", ".join(users) if users else "—"]
                for name, users in report[key].items()]
        blocks.append(format_table([key[:-1] if key != "axes" else "axis",
                                    "experiments", "exercised by"],
                                   rows, title=title))
    uncovered = report["uncovered"]
    missing = [f"{kind}: {', '.join(items)}"
               for kind, items in uncovered.items() if items]
    blocks.append("uncovered: " + ("; ".join(missing) if missing else
                                   "nothing — full coverage"))
    return "\n\n".join(blocks)


def load_bench_archives(directory: Path) -> List[Dict[str, Any]]:
    """Parse every ``BENCH_<n>.json`` in ``directory``.

    Returns one record per benchmark block:
    ``{"pr", "file", "benchmark", "meta", "rows"}``, sorted by PR
    number.  Both archive shapes are understood — the
    ``benchmarks/trajectory.py`` format (``{"pr": n, "benchmarks":
    [...]}``) and the earlier single-benchmark files (``{"benchmark":
    ..., "rows": [...]}``, e.g. ``BENCH_7.json``).  Unparseable files
    are reported as a block with an ``"error"`` key rather than raised.
    """
    records: List[Dict[str, Any]] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        stem_tag = path.stem.split("_", 1)[-1]
        pr = int(stem_tag) if stem_tag.isdigit() else -1
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            records.append({"pr": pr, "file": path.name, "benchmark": "?",
                            "meta": {}, "rows": [], "error": str(error)})
            continue
        pr = int(data.get("pr", pr))
        if isinstance(data.get("benchmarks"), list):
            blocks = data["benchmarks"]
        else:
            blocks = [{"benchmark": data.get("benchmark", path.stem),
                       "meta": {key: value for key, value in data.items()
                                if key not in ("benchmark", "rows")},
                       "rows": data.get("rows", [])}]
        for block in blocks:
            records.append({
                "pr": pr, "file": path.name,
                "benchmark": str(block.get("benchmark", "?")),
                "meta": dict(block.get("meta", {})),
                "rows": list(block.get("rows", [])),
            })
    records.sort(key=lambda record: (record["pr"], record["benchmark"]))
    return records


def format_bench_report(records: List[Dict[str, Any]]) -> str:
    """Render :func:`load_bench_archives` as the perf-trajectory tables."""
    if not records:
        return ("no BENCH_*.json archives found — run the benchmark "
                "suite (pytest benchmarks/) to populate the trajectory")
    overview = [[record["pr"], record["file"], record["benchmark"],
                 len(record["rows"])] for record in records]
    blocks = [format_table(["PR", "file", "benchmark", "rows"], overview,
                           title=f"perf trajectory — {len(records)} "
                                 "benchmark series across PRs")]
    for record in records:
        title = f"PR {record['pr']} — {record['benchmark']}"
        if record.get("error"):
            blocks.append(f"{title}\n  unreadable: {record['error']}")
            continue
        if not record["rows"]:
            blocks.append(f"{title}\n  (no rows)")
            continue
        headers: List[str] = []
        for row in record["rows"]:
            headers.extend(key for key in row if key not in headers)
        table_rows = [[row.get(header, "") for header in headers]
                      for row in record["rows"]]
        blocks.append(format_table(headers, table_rows, precision=3,
                                   title=title))
    return "\n\n".join(blocks)


def _cmd_bench_report(directory: str, json_path: Optional[str]) -> int:
    records = load_bench_archives(Path(directory))
    print(format_bench_report(records))
    if json_path:
        Path(json_path).write_text(json.dumps(records, indent=2))
        print(f"\nwrote {json_path}")
    return 0


def _cmd_serve(stations: int, rate_rps: float, duration_s: float,
               window_s: float, arrival: str, seed: int,
               queue_capacity: int, max_batch: int,
               json_path: Optional[str]) -> int:
    from repro.api.fleet import FleetSession, FleetSpec
    from repro.serve import LoadProfile, ServiceConfig, generate_trace
    from repro.serve import serve_trace

    spec = FleetSpec.office(station_count=stations)
    profile = LoadProfile(rate_rps=rate_rps, duration_s=duration_s,
                          arrival=arrival, seed=seed)
    trace = generate_trace(profile, spec.station_names)
    config = ServiceConfig(batch_window_s=window_s,
                           queue_capacity=queue_capacity,
                           max_batch=max_batch)
    result = serve_trace(FleetSession(spec), trace, config)
    metrics = result.metrics
    row = metrics.row()
    print(format_table(
        ["metric", "value"], sorted(row.items()), precision=4,
        title=f"serve — {len(trace)} requests, {stations} stations, "
              f"{window_s * 1e3:g} ms window ({arrival} arrivals at "
              f"{rate_rps:g} rps for {duration_s:g} s)"))
    if json_path:
        Path(json_path).write_text(json.dumps({
            "profile": {"stations": stations, "rate_rps": rate_rps,
                        "duration_s": duration_s, "arrival": arrival,
                        "seed": seed},
            "config": {"batch_window_s": window_s,
                       "queue_capacity": queue_capacity,
                       "max_batch": max_batch},
            "trace_digest": result.trace_digest,
            "metrics": row,
        }, indent=2))
        print(f"\nwrote {json_path}")
    return 0


def _cmd_world(stations: int, moving: int, rotating: int,
               duration_s: float, time_step_s: float, seed: int,
               json_path: Optional[str]) -> int:
    from repro.api.fleet import FleetSpec
    from repro.world import MobilityTrace, RotationTrace, WorldTimeline

    spec = FleetSpec.office(station_count=stations)
    names = spec.station_names
    mobility = {name: MobilityTrace.random_waypoint(
        seed, name, duration_s=duration_s) for name in names[:moving]}
    rotation = {name: RotationTrace.random_walk(
        seed, name, duration_s=duration_s)
        for name in (names[-rotating:] if rotating else ())}
    timeline = WorldTimeline(spec, mobility=mobility, rotation=rotation,
                             duration_s=duration_s,
                             time_step_s=time_step_s)
    report = timeline.run()
    rows = [[time_s, float(power)] for time_s, power in zip(
        report.times_s, report.epoch_mean_power_dbm)]
    print(format_table(
        ["time (s)", "fleet mean power (dBm)"], rows, precision=3,
        title=f"world — {stations} stations over {timeline.epoch_count} "
              f"epochs ({moving} moving, {rotating} rotating); mean gain "
              f"{report.mean_gain_db:.2f} dB, worst "
              f"{report.worst_gain_db:.2f} dB"))
    if json_path:
        Path(json_path).write_text(json.dumps({
            "spec": {"stations": stations, "moving": moving,
                     "rotating": rotating, "duration_s": duration_s,
                     "time_step_s": time_step_s, "seed": seed},
            "mean_gain_db": report.mean_gain_db,
            "worst_gain_db": report.worst_gain_db,
            "epoch_mean_power_dbm":
                [float(p) for p in report.epoch_mean_power_dbm],
            "trace_digests": [list(pair) for pair in report.trace_digests],
        }, indent=2))
        print(f"\nwrote {json_path}")
    return 0


def _cmd_coverage(registry: ExperimentRegistry,
                  json_path: Optional[str]) -> int:
    report = coverage_report(registry)
    print(format_coverage(report))
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"\nwrote {json_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiment suite.")
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser("list", help="enumerate experiments")
    list_cmd.add_argument("--tag", default=None,
                          help="only experiments with this tag")

    describe_cmd = commands.add_parser("describe",
                                       help="show one experiment's schema")
    describe_cmd.add_argument("name")

    run_cmd = commands.add_parser("run", help="run one experiment")
    run_cmd.add_argument("name")
    run_cmd.add_argument("--set", dest="assignments", action="append",
                         default=[], metavar="NAME=VALUE",
                         help="override a parameter (repeatable)")
    run_cmd.add_argument("--smoke", action="store_true",
                         help="apply the spec's fast smoke profile first")
    run_cmd.add_argument("--json", dest="json_path", default=None,
                         help="archive the serialized result here")
    run_cmd.add_argument("--check", action="store_true",
                         help="run the spec's shape assertions")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="skip the summary rendering")

    run_all_cmd = commands.add_parser("run-all",
                                      help="run every (tagged) experiment")
    run_all_cmd.add_argument("--tag", default=None,
                             help="only experiments with this tag")
    run_all_cmd.add_argument("--smoke", action="store_true",
                             help="apply each spec's smoke profile")
    run_all_cmd.add_argument("--json-dir", dest="json_dir", default=None,
                             help="archive one JSON result per experiment")
    run_all_cmd.add_argument("--check", action="store_true",
                             help="run every spec's shape assertions")
    run_all_cmd.add_argument("--workers", type=int, default=0,
                             help="shard across N worker processes "
                                  "(0/1 = serial)")
    run_all_cmd.add_argument("--store", dest="store_dir", default=None,
                             help="persistent result-store directory; "
                                  "already-computed runs are skipped")

    coverage_cmd = commands.add_parser(
        "coverage", help="scenario/axis/module coverage of the suite")
    coverage_cmd.add_argument("--json", dest="json_path", default=None,
                              help="write the machine-readable report here")

    bench_cmd = commands.add_parser(
        "bench-report",
        help="render the BENCH_<n>.json perf trajectory across PRs")
    bench_cmd.add_argument("--dir", dest="directory", default=".",
                           help="where the BENCH_*.json archives live")
    bench_cmd.add_argument("--json", dest="json_path", default=None,
                           help="write the parsed trajectory here")

    serve_cmd = commands.add_parser(
        "serve", help="one ad-hoc surface-service run under open-loop load")
    serve_cmd.add_argument("--stations", type=int, default=8,
                           help="fleet size (office deployment)")
    serve_cmd.add_argument("--rate", dest="rate_rps", type=float,
                           default=300.0, help="aggregate arrival rate (rps)")
    serve_cmd.add_argument("--duration", dest="duration_s", type=float,
                           default=1.0, help="trace duration (virtual s)")
    serve_cmd.add_argument("--window", dest="window_s", type=float,
                           default=0.01, help="coalescing window (s)")
    serve_cmd.add_argument("--arrival", default="poisson",
                           choices=("poisson", "uniform", "burst"),
                           help="arrival process")
    serve_cmd.add_argument("--seed", type=int, default=2021,
                           help="load-generator seed")
    serve_cmd.add_argument("--capacity", dest="queue_capacity", type=int,
                           default=64, help="admission-control queue bound")
    serve_cmd.add_argument("--max-batch", dest="max_batch", type=int,
                           default=32, help="most requests per window")
    serve_cmd.add_argument("--json", dest="json_path", default=None,
                           help="write the metrics record here")

    world_cmd = commands.add_parser(
        "world", help="one ad-hoc trace-driven dynamic-world fleet run")
    world_cmd.add_argument("--stations", type=int, default=6,
                           help="fleet size (office deployment)")
    world_cmd.add_argument("--moving", type=int, default=3,
                           help="stations given a mobility trace")
    world_cmd.add_argument("--rotating", type=int, default=2,
                           help="stations given a rotation trace")
    world_cmd.add_argument("--duration", dest="duration_s", type=float,
                           default=10.0, help="timeline span (s)")
    world_cmd.add_argument("--step", dest="time_step_s", type=float,
                           default=0.5, help="epoch spacing (s)")
    world_cmd.add_argument("--seed", type=int, default=2021,
                           help="trace-stream seed")
    world_cmd.add_argument("--json", dest="json_path", default=None,
                           help="write the timeline record here")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         registry: Optional[ExperimentRegistry] = None) -> int:
    """CLI entry point; returns the process exit code."""
    registry = registry if registry is not None else REGISTRY
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "list":
            return _cmd_list(registry, arguments.tag)
        if arguments.command == "describe":
            return _cmd_describe(registry, arguments.name)
        if arguments.command == "run":
            return _cmd_run(registry, arguments.name, arguments.assignments,
                            arguments.smoke, arguments.json_path,
                            arguments.check, arguments.quiet)
        if arguments.command == "run-all":
            return _cmd_run_all(registry, arguments.tag, arguments.smoke,
                                arguments.json_dir, arguments.check,
                                arguments.workers, arguments.store_dir)
        if arguments.command == "bench-report":
            return _cmd_bench_report(arguments.directory,
                                     arguments.json_path)
        if arguments.command == "serve":
            return _cmd_serve(arguments.stations, arguments.rate_rps,
                              arguments.duration_s, arguments.window_s,
                              arguments.arrival, arguments.seed,
                              arguments.queue_capacity, arguments.max_batch,
                              arguments.json_path)
        if arguments.command == "world":
            return _cmd_world(arguments.stations, arguments.moving,
                              arguments.rotating, arguments.duration_s,
                              arguments.time_step_s, arguments.seed,
                              arguments.json_path)
        return _cmd_coverage(registry, arguments.json_path)
    except (ParameterError, UnknownExperimentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = ["build_parser", "coverage_report", "format_bench_report",
           "format_coverage", "load_bench_archives", "main"]
