"""Persistent content-keyed store for experiment results.

:class:`ResultStore` is the disk tier of the runner's two-tier cache:
every :class:`~repro.experiments.runner.ExperimentResult` is archived
as one JSON file (the lossless tagged codec of
:mod:`repro.experiments.artifacts`) under a **content key** derived
from

* the experiment's registry name,
* its fully-resolved parameters (canonical JSON), and
* a fingerprint of the ``repro`` package's source code,

so editing any ``repro`` module invalidates every stored result — a
stale entry can never be served after the code that produced it
changed.  Lookups are fail-open: a truncated, corrupt or hand-mangled
entry counts as a miss (and is recorded in :meth:`ResultStore.stats`),
never an exception, so the caller simply recomputes.

Writes are atomic (temp file + ``os.replace``) and therefore safe under
the parallel executor's concurrent workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments import artifacts

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.registry import ExperimentRegistry
    from repro.experiments.runner import ExperimentResult

#: Format tag written into every entry; bumping it invalidates the store.
STORE_FORMAT = "repro-result-store/v1"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest of every ``repro`` source file's contents.

    Part of the store's content key: results computed by different code
    land under different keys, so a stale entry is unreachable rather
    than wrong.  Cached per process (the tree does not change under a
    running executor).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def content_key(name: str, params: Mapping[str, Any],
                fingerprint: Optional[str] = None) -> str:
    """The store's content key for one ``(experiment, params)`` run."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    encoded = artifacts.canonical_json(dict(sorted(params.items())))
    digest = hashlib.sha256(
        json.dumps([name, encoded, fingerprint]).encode()).hexdigest()
    return digest[:24]


@dataclass(frozen=True)
class StoreStats:
    """Counters of one :class:`ResultStore` instance's lifetime."""

    hits: int
    misses: int
    corrupt: int
    writes: int
    evictions: int
    entries: int
    total_bytes: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses,
            "corrupt": self.corrupt, "writes": self.writes,
            "evictions": self.evictions, "entries": self.entries,
            "total_bytes": self.total_bytes,
        }


class ResultStore:
    """On-disk content-keyed archive of experiment results.

    Parameters
    ----------
    directory:
        Where entries live (created on first use).  One JSON file per
        entry, named ``<experiment>--<key>.json`` so the store is
        greppable by eye.
    registry:
        Registry used to rebuild specs on :meth:`get` (defaults to the
        process-wide catalogue).
    fingerprint:
        Override of :func:`code_fingerprint`, for tests that need to
        simulate a code change without editing files.
    """

    def __init__(self, directory: Any,
                 registry: Optional["ExperimentRegistry"] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self._registry = registry
        self._fingerprint = fingerprint
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._writes = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """The code fingerprint keyed into every entry."""
        return (self._fingerprint if self._fingerprint is not None
                else code_fingerprint())

    def key_for(self, name: str, params: Mapping[str, Any]) -> str:
        """Content key of one ``(experiment, resolved params)`` run."""
        return content_key(name, params, self.fingerprint)

    def path_for(self, name: str, params: Mapping[str, Any]) -> Path:
        """Entry path for one run (whether or not it exists yet)."""
        return self.directory / f"{name}--{self.key_for(name, params)}.json"

    # ------------------------------------------------------------------ #
    # Read / write / evict
    # ------------------------------------------------------------------ #
    def get(self, name: str,
            params: Mapping[str, Any]) -> Optional["ExperimentResult"]:
        """The stored result for a run, or ``None``.

        Missing entries are plain misses.  Unreadable ones — truncated
        JSON, a bad codec node, an envelope whose parameters no longer
        validate — are counted as ``corrupt``, removed, and reported as
        misses so the caller recomputes; the store never raises on read.
        """
        from repro.experiments.runner import ExperimentResult

        path = self.path_for(name, params)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry.get("format") != STORE_FORMAT:
                raise artifacts.ArtifactError(
                    f"unknown store format in {path.name}")
            result = ExperimentResult.from_dict(entry["result"],
                                                registry=self._registry)
        except FileNotFoundError:
            self._misses += 1
            return None
        except Exception:
            # Fail open: a mangled entry is recomputed, never fatal.
            self._corrupt += 1
            self._misses += 1
            path.unlink(missing_ok=True)
            return None
        self._hits += 1
        return result

    def put(self, result: "ExperimentResult") -> Path:
        """Archive one result (atomic write; last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.name, result.params)
        entry = {
            "format": STORE_FORMAT,
            "experiment": result.name,
            "key": self.key_for(result.name, result.params),
            "fingerprint": self.fingerprint,
            "result": result.to_dict(),
        }
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{path.stem}-", suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(entry, stream, indent=2)
            os.replace(temp_name, path)
        except BaseException:
            Path(temp_name).unlink(missing_ok=True)
            raise
        self._writes += 1
        return path

    def evict(self, name: str,
              params: Optional[Mapping[str, Any]] = None) -> int:
        """Remove entries; returns how many were deleted.

        With ``params`` exactly one run's entry is targeted; without,
        every entry of experiment ``name`` (any parameters, any code
        fingerprint) is removed.
        """
        if params is not None:
            targets = [self.path_for(name, params)]
        else:
            targets = sorted(self.directory.glob(f"{name}--*.json"))
        removed = 0
        for path in targets:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        self._evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        self._evictions += removed
        return removed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _entry_paths(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(path for path in self.directory.glob("*--*.json")
                      if not path.name.startswith("."))

    def __len__(self) -> int:
        return len(self._entry_paths())

    def __contains__(self, key: Tuple[str, Mapping[str, Any]]) -> bool:
        name, params = key
        return self.path_for(name, params).is_file()

    def keys(self) -> List[str]:
        """Entry file stems (``experiment--key``), sorted."""
        return [path.stem for path in self._entry_paths()]

    @property
    def stats(self) -> StoreStats:
        """Lifetime counters plus the current on-disk footprint."""
        paths = self._entry_paths()
        return StoreStats(
            hits=self._hits, misses=self._misses, corrupt=self._corrupt,
            writes=self._writes, evictions=self._evictions,
            entries=len(paths),
            total_bytes=sum(path.stat().st_size for path in paths))

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary: counters plus per-experiment entry counts
        (what the CI job archives as ``store-stats.json``)."""
        per_experiment: Dict[str, int] = {}
        for path in self._entry_paths():
            experiment = path.stem.rsplit("--", 1)[0]
            per_experiment[experiment] = per_experiment.get(experiment, 0) + 1
        summary = self.stats.to_dict()
        summary["directory"] = str(self.directory)
        summary["fingerprint"] = self.fingerprint
        summary["per_experiment"] = dict(sorted(per_experiment.items()))
        return summary


__all__ = [
    "ResultStore",
    "STORE_FORMAT",
    "StoreStats",
    "code_fingerprint",
    "content_key",
]
