"""LLAMA reproduction: programmable metasurfaces for IoT polarization matching.

This package reproduces, in simulation, the system presented in
"Pushing the Physical Limits of IoT Devices with Programmable
Metasurfaces" (NSDI 2021): a low-cost, voltage-programmable metasurface
polarization rotator deployed in the radio environment, a centralized
controller that tunes it in real time from receiver power reports, and
the evaluation harness that regenerates every table and figure of the
paper's evaluation.

Top-level convenience imports expose the most common entry points; see
the subpackages for the full API:

* :mod:`repro.api` -- batched measurement plane: backends, sessions, builder
* :mod:`repro.core` -- Jones calculus, rotator, controller, LLAMA system
* :mod:`repro.metasurface` -- EM model of the surface and its design space
* :mod:`repro.channel` -- antennas, propagation, multipath, link budgets
* :mod:`repro.radio` -- baseband signals and the simulated SDR transceiver
* :mod:`repro.hardware` -- power supply, VISA, turntable, chamber
* :mod:`repro.devices` -- Wi-Fi / BLE / Zigbee endpoint models
* :mod:`repro.sensing` -- respiration sensing application
* :mod:`repro.experiments` -- per-figure experiment runners
"""

from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ, ISM_2G4_BAND
from repro.core.controller import CentralizedController, VoltageSweepConfig
from repro.core.jones import JonesMatrix, JonesVector, polarization_rotator
from repro.core.llama import LlamaResult, LlamaSystem
from repro.core.polarization import (
    PolarizationState,
    linear_polarization,
    polarization_loss_factor,
    polarization_mismatch_loss_db,
)
from repro.core.rotator import ProgrammableRotator, RotatorConfig
from repro.channel.antenna import (
    Antenna,
    dipole_antenna,
    directional_antenna,
    omni_antenna,
)
from repro.channel.geometry import LinkGeometry, Position
from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.channel.multipath import MultipathEnvironment
from repro.metasurface.design import (
    fr4_naive_design,
    llama_design,
    rogers_reference_design,
)
from repro.metasurface.surface import Metasurface, SurfaceMode

# The batched measurement-plane API builds on core + channel, so it is
# imported last (keeps the submodule import order acyclic).
from repro.api import (
    CallableBackend,
    LinkBackend,
    LinkSession,
    MeasurementBackend,
    ScenarioBuilder,
)

__version__ = "1.0.0"

__all__ = [
    "MeasurementBackend",
    "LinkBackend",
    "CallableBackend",
    "LinkSession",
    "ScenarioBuilder",
    "DEFAULT_CENTER_FREQUENCY_HZ",
    "ISM_2G4_BAND",
    "CentralizedController",
    "VoltageSweepConfig",
    "JonesMatrix",
    "JonesVector",
    "polarization_rotator",
    "LlamaResult",
    "LlamaSystem",
    "PolarizationState",
    "linear_polarization",
    "polarization_loss_factor",
    "polarization_mismatch_loss_db",
    "ProgrammableRotator",
    "RotatorConfig",
    "Antenna",
    "dipole_antenna",
    "directional_antenna",
    "omni_antenna",
    "LinkGeometry",
    "Position",
    "DeploymentMode",
    "LinkConfiguration",
    "WirelessLink",
    "MultipathEnvironment",
    "fr4_naive_design",
    "llama_design",
    "rogers_reference_design",
    "Metasurface",
    "SurfaceMode",
    "__version__",
]
