"""The :class:`LinkSession` facade: one link under measurement.

A session owns everything a measurement campaign over one link needs —
the :class:`~repro.channel.link.WirelessLink` physics, the
:class:`~repro.core.rotator.ProgrammableRotator` and
:class:`~repro.hardware.power_supply.ProgrammablePowerSupply` bundle
(when a metasurface is deployed), a configured
:class:`~repro.core.controller.CentralizedController` and the matching
no-surface baseline — and exposes the batched measurement plane as its
primary surface.  It replaces the ad-hoc ``WirelessLink(...)``
construction sprinkled through the seed's controllers, estimators and
figure runners:

* ``measure`` / ``measure_batch`` probe the link (vectorized fast path),
* ``optimize`` / ``full_sweep`` run Algorithm 1 / the exhaustive grid
  against the session's backend and park the supply at the optimum,
* ``with_rx_orientation`` returns a cached per-orientation session so
  turntable procedures never rebuild links probe by probe,
* ``estimate_rotation`` runs the Sec. 3.4 procedure with batched
  voltage sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.api.backend import LinkBackend, OrientationBackend
from repro.channel.grid import ProbeGrid
from repro.channel.link import (
    DeploymentMode,
    LinkConfiguration,
    LinkReport,
    WirelessLink,
)
from repro.core.controller import (
    CentralizedController,
    SweepResult,
    VoltageSweepConfig,
)
from repro.core.rotation_estimation import (
    RotationAngleEstimator,
    RotationEstimate,
)
from repro.core.rotator import ProgrammableRotator, RotatorConfig
from repro.faults import (
    FaultSchedule,
    FaultyBackend,
    HealthMonitor,
    HealthReport,
    ProbePolicy,
    RetryingBackend,
    RetryPolicy,
)
from repro.hardware.power_supply import ProgrammablePowerSupply
from repro.metasurface.surface import SurfaceMode


class LinkSession:
    """A measurement session over one link configuration.

    Parameters
    ----------
    configuration:
        The link under measurement (a :class:`LinkConfiguration`, or an
        existing :class:`WirelessLink` to adopt).
    sweep_config:
        Controller search parameters (Algorithm 1 defaults).
    rotator_config:
        Bias-chain configuration for the rotator/supply bundle (only
        used when a metasurface is deployed).
    supply:
        Power-supply simulation; one is created when a surface is
        deployed and none is provided.
    fault_schedule:
        Optional :class:`~repro.faults.FaultSchedule`; when it is
        active the session's backend is wrapped in a
        :class:`~repro.faults.FaultyBackend`, so every probe runs
        through the deterministic fault plane.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy`; probes then run
        under a :class:`~repro.faults.RetryingBackend` (virtual-clock
        backoff, typed retryable classification).
    probe_policy:
        Optional :class:`~repro.faults.ProbePolicy` for the
        controller's median-of-k probe re-voting.
    """

    def __init__(self,
                 configuration: Union[LinkConfiguration, WirelessLink],
                 sweep_config: Optional[VoltageSweepConfig] = None,
                 rotator_config: Optional[RotatorConfig] = None,
                 supply: Optional[ProgrammablePowerSupply] = None,
                 fault_schedule: Optional[FaultSchedule] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 probe_policy: Optional[ProbePolicy] = None):
        if isinstance(configuration, WirelessLink):
            self.link = configuration
        else:
            self.link = WirelessLink(configuration)
        config = self.link.configuration
        self.monitor = HealthMonitor()
        self.fault_schedule = fault_schedule
        self.backend = LinkBackend(self.link)
        if fault_schedule is not None and fault_schedule.spec.active:
            self.backend = FaultyBackend(self.backend, fault_schedule,
                                         monitor=self.monitor)
        if retry_policy is not None:
            self.backend = RetryingBackend(self.backend, retry_policy,
                                           monitor=self.monitor,
                                           schedule=fault_schedule)
        self.controller = CentralizedController(sweep_config,
                                                probe_policy=probe_policy)
        self.rotator: Optional[ProgrammableRotator] = None
        self.supply: Optional[ProgrammablePowerSupply] = None
        if (config.metasurface is not None and
                config.deployment is not DeploymentMode.NONE):
            mode = (SurfaceMode.TRANSMISSIVE
                    if config.deployment is DeploymentMode.TRANSMISSIVE
                    else SurfaceMode.REFLECTIVE)
            self.rotator = ProgrammableRotator(config.metasurface,
                                               config=rotator_config,
                                               mode=mode)
            self.supply = supply if supply is not None else ProgrammablePowerSupply()
            self.supply.enable_output(True)
            self.supply.on_voltage_change = self.rotator.set_bias_voltages
        self._baseline: Optional["LinkSession"] = None
        self._orientation_sessions: Dict[float, "LinkSession"] = {}
        self._orientation_backend: Optional[OrientationBackend] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def configuration(self) -> LinkConfiguration:
        """The link configuration under measurement."""
        return self.link.configuration

    @property
    def has_surface(self) -> bool:
        """True when a metasurface participates in the link."""
        config = self.link.configuration
        return (config.metasurface is not None and
                config.deployment is not DeploymentMode.NONE)

    @property
    def health(self) -> HealthReport:
        """Probe / retry / fault accounting for this session.

        All zeros for a session with no fault plane wired in; derived
        sessions (:meth:`baseline`, :meth:`with_rx_orientation`) are
        always fault-free and keep their own clean report.
        """
        return self.monitor.report()

    # ------------------------------------------------------------------ #
    # Measurement plane
    # ------------------------------------------------------------------ #
    def measure(self, vx: float = 0.0, vy: float = 0.0) -> float:
        """Received power (dBm) at one bias pair."""
        return self.backend.measure(vx, vy)

    def measure_batch(self, vx, vy) -> np.ndarray:
        """Received power (dBm) over whole bias grids in one pass."""
        return self.backend.measure_batch(vx, vy)

    def measure_sweep(self, axis: str, values, vx=0.0, vy=0.0) -> np.ndarray:
        """Received power (dBm) along a whole link-parameter axis at once.

        ``axis`` is one of :data:`repro.channel.link.SWEEP_AXES`
        (``"frequency"``, ``"tx_power"``, ``"distance"``,
        ``"rx_orientation"``); the voltage-independent direct and
        clutter fields are computed once for the entire sweep.
        """
        return self.backend.measure_sweep(axis, values, vx=vx, vy=vy)

    def optimize_sweep(self, axis: str, values, exhaustive: bool = False,
                       step_v: float = 1.0):
        """Run the configured bias search at every axis point at once.

        Returns a :class:`repro.core.controller.MultiAxisSweepResult`
        whose per-point optima match running :meth:`optimize` on a
        session rebuilt at each axis value.
        """
        return self.controller.optimize_multi(self.backend, axis, values,
                                              exhaustive=exhaustive,
                                              step_v=step_v)

    def measure_grid(self, grid=None, *legacy_args, step_v=None,
                     v_min=None, v_max=None):
        """Received power over an N-D probe grid (or a legacy heatmap).

        Pass a :class:`~repro.channel.grid.ProbeGrid` to evaluate any
        joint grid over bias voltages and
        :data:`repro.channel.grid.SWEEP_AXES` — e.g. a frequency x
        distance surface — in one vectorized pass; the returned array
        has ``grid.shape``.  Called without a grid it keeps the
        historical ``measure_grid(step_v, v_min, v_max)`` signature
        (positionally or by keyword) and returns the exhaustive
        ``{(vx, vy): power}`` dict of the Fig. 15/21 heatmap figures.
        """
        if isinstance(grid, ProbeGrid):
            if legacy_args or not all(value is None
                                      for value in (step_v, v_min, v_max)):
                raise TypeError("step_v/v_min/v_max do not apply when "
                                "measuring a ProbeGrid")
            return self.backend.measure_grid(grid)
        # Historical signature: the leading positionals (if any) are
        # (step_v, v_min, v_max) in order, keywords fill the rest.
        positional = ([] if grid is None else [grid]) + list(legacy_args)
        if len(positional) > 3:
            raise TypeError("measure_grid takes at most a ProbeGrid or "
                            "(step_v, v_min, v_max)")
        legacy = {"step_v": step_v, "v_min": v_min, "v_max": v_max}
        for name, value in zip(("step_v", "v_min", "v_max"), positional):
            if legacy[name] is not None:
                raise TypeError(f"measure_grid got multiple values for "
                                f"{name!r}")
            legacy[name] = float(value)
        # Deferred import: repro.experiments builds on this package.
        from repro.experiments.sweeps import voltage_grid_sweep
        return voltage_grid_sweep(
            self.link,
            step_v=2.0 if legacy["step_v"] is None else legacy["step_v"],
            v_min=0.0 if legacy["v_min"] is None else legacy["v_min"],
            v_max=30.0 if legacy["v_max"] is None else legacy["v_max"])

    def optimize_grid(self, grid, exhaustive: bool = False,
                      step_v: float = 1.0):
        """Run the configured bias search at every grid point at once.

        ``grid`` is a :class:`~repro.channel.grid.ProbeGrid` over
        link-parameter axes only (the controller owns the voltages);
        returns a :class:`repro.core.controller.GridSweepResult` whose
        per-cell optima match running :meth:`optimize` on a session
        rebuilt at each cell's axis values.
        """
        return self.controller.optimize_grid(self.backend, grid,
                                             exhaustive=exhaustive,
                                             step_v=step_v)

    def evaluate(self, vx: float = 0.0, vy: float = 0.0) -> LinkReport:
        """Full link report at one bias pair."""
        return self.link.evaluate(vx, vy)

    def noise_power_dbm(self) -> float:
        """Receiver noise-plus-interference floor."""
        return self.link.noise_power_dbm()

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def apply(self, vx: float, vy: float) -> Tuple[float, float]:
        """Program the supply/rotator bundle; returns the applied pair.

        No-op (returning the requested pair) for baseline sessions that
        have no surface to bias.
        """
        if self.supply is None or self.rotator is None:
            return (float(vx), float(vy))
        self.supply.set_bias_pair(vx, vy)
        return self.rotator.bias_voltages

    def optimize(self, exhaustive: bool = False,
                 step_v: float = 1.0) -> SweepResult:
        """Run the configured search and park the hardware at the best pair."""
        result = self.controller.optimize(self.backend, exhaustive=exhaustive,
                                          step_v=step_v)
        self.apply(result.best_vx, result.best_vy)
        return result

    def full_sweep(self, step_v: float = 1.0) -> SweepResult:
        """Exhaustive controller sweep (Fig. 15 / Fig. 21 heatmap path)."""
        return self.controller.full_sweep(self.backend, step_v=step_v)

    # ------------------------------------------------------------------ #
    # Derived sessions
    # ------------------------------------------------------------------ #
    def baseline(self) -> "LinkSession":
        """The matching no-surface session (cached)."""
        if self.has_surface:
            if self._baseline is None:
                self._baseline = LinkSession(
                    self.link.configuration.without_surface(),
                    sweep_config=self.controller.config)
            return self._baseline
        return self

    def baseline_power_dbm(self) -> float:
        """Received power with the metasurface removed."""
        return self.baseline().measure()

    def power_gain_over_baseline_db(self, vx: float, vy: float) -> float:
        """Received-power improvement over the no-surface baseline (dB)."""
        return self.measure(vx, vy) - self.baseline_power_dbm()

    def with_rx_orientation(self, orientation_deg: float) -> "LinkSession":
        """Session with the receive antenna rotated (cached per angle).

        This is the turntable primitive of the Sec. 3.4 estimation: one
        link per probed orientation, built once (shared with
        :meth:`orientation_backend`) and reused across the whole
        voltage sweep at that orientation.
        """
        key = float(orientation_deg)
        if key not in self._orientation_sessions:
            self._orientation_sessions[key] = LinkSession(
                self.orientation_backend().link_for_orientation(key),
                sweep_config=self.controller.config)
        return self._orientation_sessions[key]

    def orientation_backend(self) -> OrientationBackend:
        """Orientation-aware measurement backend over this link (cached)."""
        if self._orientation_backend is None:
            self._orientation_backend = OrientationBackend(self.link)
        return self._orientation_backend

    def estimate_rotation(self,
                          orientation_step_deg: float = 2.0,
                          exhaustive_voltage_sweep: bool = False) -> RotationEstimate:
        """Run the Sec. 3.4 rotation-angle estimation on this link."""
        estimator = RotationAngleEstimator(
            sweep_config=self.controller.config,
            orientation_step_deg=orientation_step_deg)
        return estimator.estimate(
            self.orientation_backend(),
            exhaustive_voltage_sweep=exhaustive_voltage_sweep)


__all__ = ["LinkSession"]
