"""Fluent scenario construction: antennas → deployment → environment → device.

Building a :class:`~repro.channel.link.LinkConfiguration` by hand means
juggling antennas, geometry, multipath, surface and radio parameters in
one constructor call.  :class:`ScenarioBuilder` makes a new workload one
chained expression::

    session = (ScenarioBuilder()
               .with_antennas("directional", rx_orientation_deg=90.0)
               .transmissive(distance_m=0.42)
               .with_environment("anechoic", seed=2021)
               .with_surface()
               .session())

Each step returns a new builder (the builder is immutable), so partial
scenarios can be shared and specialised without aliasing surprises::

    lab = ScenarioBuilder().with_antennas("omni").with_environment("laboratory")
    near = lab.transmissive(0.3).with_surface().build()
    far = lab.transmissive(3.0).with_surface().build()
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.api.session import LinkSession
from repro.channel.antenna import (
    Antenna,
    circular_antenna,
    dipole_antenna,
    directional_antenna,
    omni_antenna,
)
from repro.channel.geometry import LinkGeometry
from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.channel.multipath import MultipathEnvironment
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.core.controller import VoltageSweepConfig
from repro.devices.base import IoTDevice
from repro.devices.ble import metamotion_wearable, raspberry_pi_central
from repro.devices.wifi import esp8266_station, netgear_access_point
from repro.metasurface.design import llama_design
from repro.metasurface.surface import Metasurface

#: Antenna factories selectable by name in :meth:`ScenarioBuilder.with_antennas`.
_ANTENNA_KINDS = {
    "directional": directional_antenna,
    "omni": omni_antenna,
    "dipole": dipole_antenna,
    "circular": lambda orientation_deg=0.0: circular_antenna(),
}

#: Device-pair presets selectable by name in :meth:`ScenarioBuilder.for_device`.
_DEVICE_PRESETS = {
    "wifi": (esp8266_station, netgear_access_point),
    "ble": (metamotion_wearable, raspberry_pi_central),
}


def _make_antenna(kind: Union[str, Antenna],
                  orientation_deg: Optional[float],
                  default_orientation_deg: float) -> Antenna:
    if isinstance(kind, Antenna):
        # An explicit orientation re-orients the instance; otherwise the
        # instance's own orientation is kept.
        if orientation_deg is not None and orientation_deg != kind.orientation_deg:
            return kind.rotated(orientation_deg)
        return kind
    if kind not in _ANTENNA_KINDS:
        raise ValueError(
            f"unknown antenna kind {kind!r}; choose from "
            f"{sorted(_ANTENNA_KINDS)} or pass an Antenna instance")
    if orientation_deg is None:
        orientation_deg = default_orientation_deg
    return _ANTENNA_KINDS[kind](orientation_deg=orientation_deg)


@dataclass(frozen=True)
class ScenarioBuilder:
    """Immutable fluent builder for measurement scenarios.

    The terminal operations are :meth:`build` (a
    :class:`LinkConfiguration`), :meth:`link` (a :class:`WirelessLink`)
    and :meth:`session` (a :class:`LinkSession` ready for batched
    sweeps).
    """

    tx_antenna: Optional[Antenna] = None
    rx_antenna: Optional[Antenna] = None
    geometry: Optional[LinkGeometry] = None
    deployment: DeploymentMode = DeploymentMode.NONE
    aim_at_surface: bool = False
    environment: Optional[MultipathEnvironment] = None
    metasurface: Optional[Metasurface] = None
    frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    tx_power_dbm: float = 0.0
    bandwidth_hz: float = 500e3
    noise_figure_db: float = 6.0
    interference_floor_dbm: Optional[float] = None
    surface_obstruction_db: float = 0.0
    sweep_config: Optional[VoltageSweepConfig] = None

    # ------------------------------------------------------------------ #
    # Antennas
    # ------------------------------------------------------------------ #
    def with_antennas(self, kind: Union[str, Antenna] = "directional",
                      rx_kind: Optional[Union[str, Antenna]] = None,
                      tx_orientation_deg: Optional[float] = None,
                      rx_orientation_deg: Optional[float] = None) -> "ScenarioBuilder":
        """Set both endpoint antennas (mismatched by default).

        ``kind`` names a stock antenna (``directional``, ``omni``,
        ``dipole``, ``circular``) or is an :class:`Antenna` instance;
        ``rx_kind`` defaults to the transmit kind.  Stock antennas
        default to the paper's mismatched setup (Tx at 0, Rx at 90
        degrees); an :class:`Antenna` instance keeps its own
        orientation unless one is given explicitly.
        """
        rx_kind = kind if rx_kind is None else rx_kind
        return replace(self,
                       tx_antenna=_make_antenna(kind, tx_orientation_deg, 0.0),
                       rx_antenna=_make_antenna(rx_kind, rx_orientation_deg,
                                                90.0))

    def with_tx_antenna(self, antenna: Antenna) -> "ScenarioBuilder":
        """Set the transmit antenna explicitly."""
        return replace(self, tx_antenna=antenna)

    def with_rx_antenna(self, antenna: Antenna) -> "ScenarioBuilder":
        """Set the receive antenna explicitly."""
        return replace(self, rx_antenna=antenna)

    def matched(self) -> "ScenarioBuilder":
        """Align the receiver's polarization with the transmitter's."""
        if self.tx_antenna is None or self.rx_antenna is None:
            raise ValueError("set antennas before calling matched()")
        return replace(self, rx_antenna=self.rx_antenna.rotated(
            self.tx_antenna.orientation_deg))

    # ------------------------------------------------------------------ #
    # Deployment geometry
    # ------------------------------------------------------------------ #
    def transmissive(self, distance_m: float = 0.42) -> "ScenarioBuilder":
        """Place the surface midway on a through-surface link."""
        return replace(self,
                       geometry=LinkGeometry.transmissive(distance_m),
                       deployment=DeploymentMode.TRANSMISSIVE,
                       aim_at_surface=False)

    def reflective(self, separation_m: float = 0.70,
                   surface_distance_m: float = 0.42) -> "ScenarioBuilder":
        """Same-side layout with both endpoints aimed at the surface."""
        return replace(self,
                       geometry=LinkGeometry.reflective(separation_m,
                                                        surface_distance_m),
                       deployment=DeploymentMode.REFLECTIVE,
                       aim_at_surface=True)

    def direct(self, distance_m: float) -> "ScenarioBuilder":
        """Plain point-to-point link with no surface in the path."""
        return replace(self,
                       geometry=LinkGeometry.transmissive(distance_m),
                       deployment=DeploymentMode.NONE,
                       aim_at_surface=False,
                       metasurface=None)

    # ------------------------------------------------------------------ #
    # Environment
    # ------------------------------------------------------------------ #
    def with_environment(self,
                         environment: Union[str, MultipathEnvironment] = "anechoic",
                         seed: int = 2021) -> "ScenarioBuilder":
        """Choose the multipath environment (``anechoic``/``laboratory``
        by name, or any :class:`MultipathEnvironment`)."""
        if isinstance(environment, str):
            if environment == "anechoic":
                environment = MultipathEnvironment.anechoic(seed=seed)
            elif environment == "laboratory":
                environment = MultipathEnvironment.laboratory(seed=seed)
            else:
                raise ValueError(
                    f"unknown environment {environment!r}; choose 'anechoic', "
                    "'laboratory' or pass a MultipathEnvironment")
        return replace(self, environment=environment)

    # ------------------------------------------------------------------ #
    # Surface
    # ------------------------------------------------------------------ #
    def with_surface(self,
                     metasurface: Optional[Metasurface] = None) -> "ScenarioBuilder":
        """Deploy a metasurface (the optimized FR4 prototype by default)."""
        surface = metasurface if metasurface is not None else llama_design().build()
        deployment = (DeploymentMode.TRANSMISSIVE
                      if self.deployment is DeploymentMode.NONE
                      else self.deployment)
        return replace(self, metasurface=surface, deployment=deployment)

    def without_surface(self) -> "ScenarioBuilder":
        """Remove the surface (baseline measurements)."""
        return replace(self, metasurface=None, deployment=DeploymentMode.NONE)

    # ------------------------------------------------------------------ #
    # Device / radio parameters
    # ------------------------------------------------------------------ #
    def for_device(self, preset: str,
                   mismatched: bool = True) -> "ScenarioBuilder":
        """Adopt a commodity device pair (``wifi`` or ``ble``).

        Sets both antennas, carrier frequency, transmit power and
        bandwidth from the transmitter/receiver device models.
        """
        if preset not in _DEVICE_PRESETS:
            raise ValueError(f"unknown device preset {preset!r}; choose from "
                             f"{sorted(_DEVICE_PRESETS)}")
        make_station, make_peer = _DEVICE_PRESETS[preset]
        station: IoTDevice = make_station(
            orientation_deg=90.0 if mismatched else 0.0)
        peer: IoTDevice = make_peer(orientation_deg=0.0)
        return replace(self,
                       tx_antenna=station.antenna,
                       rx_antenna=peer.antenna,
                       frequency_hz=station.frequency_hz,
                       tx_power_dbm=station.tx_power_dbm,
                       bandwidth_hz=station.channel_bandwidth_hz)

    def with_frequency_hz(self, frequency_hz: float) -> "ScenarioBuilder":
        """Set the carrier frequency."""
        return replace(self, frequency_hz=frequency_hz)

    def with_tx_power_dbm(self, tx_power_dbm: float) -> "ScenarioBuilder":
        """Set the transmit power."""
        return replace(self, tx_power_dbm=tx_power_dbm)

    def with_bandwidth_hz(self, bandwidth_hz: float) -> "ScenarioBuilder":
        """Set the channel bandwidth used for noise/capacity."""
        return replace(self, bandwidth_hz=bandwidth_hz)

    def with_noise_figure_db(self, noise_figure_db: float) -> "ScenarioBuilder":
        """Set the receiver noise figure."""
        return replace(self, noise_figure_db=noise_figure_db)

    def with_interference_floor_dbm(
            self, floor_dbm: Optional[float]) -> "ScenarioBuilder":
        """Set the noise-plus-interference floor (Figs. 18-19 knob)."""
        return replace(self, interference_floor_dbm=floor_dbm)

    def with_sweep_config(self,
                          sweep_config: VoltageSweepConfig) -> "ScenarioBuilder":
        """Controller parameters for sessions built from this scenario."""
        return replace(self, sweep_config=sweep_config)

    # ------------------------------------------------------------------ #
    # Terminal operations
    # ------------------------------------------------------------------ #
    def build(self) -> LinkConfiguration:
        """Materialise the :class:`LinkConfiguration`."""
        if self.tx_antenna is None or self.rx_antenna is None:
            raise ValueError(
                "scenario has no antennas; call with_antennas()/for_device()")
        if self.geometry is None:
            raise ValueError(
                "scenario has no geometry; call transmissive()/reflective()/"
                "direct()")
        metasurface = self.metasurface
        deployment = self.deployment
        if deployment is not DeploymentMode.NONE and metasurface is None:
            # A deployment was chosen but no surface supplied: default to
            # the paper's optimized FR4 prototype.
            metasurface = llama_design().build()
        environment = (self.environment if self.environment is not None
                       else MultipathEnvironment.anechoic())
        return LinkConfiguration(
            tx_antenna=self.tx_antenna,
            rx_antenna=self.rx_antenna,
            geometry=self.geometry,
            frequency_hz=self.frequency_hz,
            tx_power_dbm=self.tx_power_dbm,
            bandwidth_hz=self.bandwidth_hz,
            noise_figure_db=self.noise_figure_db,
            environment=environment,
            metasurface=metasurface,
            deployment=deployment,
            aim_at_surface=self.aim_at_surface,
            interference_floor_dbm=self.interference_floor_dbm,
            surface_obstruction_db=self.surface_obstruction_db,
        )

    def link(self) -> WirelessLink:
        """Materialise a :class:`WirelessLink`."""
        return WirelessLink(self.build())

    def baseline_link(self) -> WirelessLink:
        """Materialise the matching no-surface link."""
        return WirelessLink(self.build().without_surface())

    def session(self, **session_kwargs) -> LinkSession:
        """Materialise a :class:`LinkSession` ready for batched sweeps."""
        session_kwargs.setdefault("sweep_config", self.sweep_config)
        return LinkSession(self.build(), **session_kwargs)


__all__ = ["ScenarioBuilder"]
