"""The fleet API: many links, one session, one NumPy pass.

PRs 1-3 gave a *single* link a fully batched measurement plane
(:class:`~repro.api.session.LinkSession` over the N-D
:class:`~repro.channel.grid.ProbeGrid` engine).  The paper's Sec. 7
deployment story — dense multi-station TDMA scheduling, polarization
reuse, access control — needs the same treatment for a *fleet* of
links, and that is what this module provides:

* :class:`StationSpec` / :class:`FleetSpec` — declarative, serializable
  scenario specs.  A whole deployment (random home, office, arbitrary
  scenario file) is a plain dataclass with a ``to_dict``/``from_dict``
  JSON round-trip, so deployments are constructible, diffable and
  shippable without touching constructor plumbing.
* :class:`FleetSession` — the multi-link counterpart of
  :class:`LinkSession`.  It owns N named stations and evaluates **all
  of them in one NumPy pass** by stacking the per-station parameters
  (distance / transmit power / antenna orientation) along a leading
  ``station`` axis of the grid engine
  (:class:`~repro.channel.ensemble.LinkEnsemble`):
  :meth:`~FleetSession.measure_grid` probes every station over every
  bias pair at once, :meth:`~FleetSession.optimize_grid` runs Algorithm
  1 for every station simultaneously (one batched probe per refinement
  iteration), and :meth:`~FleetSession.schedule` drives the TDMA
  schedulers of :mod:`repro.network.scheduler` on the stacked planes.

Migration from the per-station loop idiom::

    # before (PR 1-3): one facade per station, a Python loop per probe
    for station in stations:
        session = LinkSession(configuration_for(station))
        powers[station] = session.measure_batch(vx, vy)

    # after: one fleet, one pass
    fleet = FleetSession(FleetSpec.random_home(station_count=8))
    powers = fleet.measure_grid(vx, vy)          # (8,) + grid shape
    schedule = fleet.schedule("polarization-reuse")
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.backend import LinkBackend
from repro.api.session import LinkSession
from repro.channel.ensemble import LinkEnsemble
from repro.channel.grid import ProbeGrid
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.core.controller import (
    CentralizedController,
    GridSweepResult,
    VoltageSweepConfig,
)
from repro.faults import (
    FaultSchedule,
    FaultyBackend,
    HealthMonitor,
    HealthReport,
    ProbePolicy,
    RetryingBackend,
    RetryPolicy,
    StationChurn,
)
from repro.metasurface.design import (
    fr4_naive_design,
    llama_design,
    rogers_reference_design,
)
from repro.network.access_control import (
    AccessControlResult,
    polarization_access_control,
)
from repro.network.deployment import DenseDeployment, StationPlacement
from repro.network.scheduler import (
    FixedBiasScheduler,
    PerStationScheduler,
    PolarizationReuseScheduler,
    ScheduleResult,
    baseline_without_surface,
)

#: Named metasurface designs a :class:`FleetSpec` can reference; the
#: name is what serializes, the factory builds the shared surface.
SURFACE_DESIGNS: Dict[str, Callable] = {
    "llama": llama_design,
    "fr4-naive": fr4_naive_design,
    "rogers": rogers_reference_design,
}


@dataclass(frozen=True)
class StationSpec:
    """Declarative description of one station in a fleet.

    The serializable twin of
    :class:`~repro.network.deployment.StationPlacement`: same fields,
    plus the dict/JSON round-trip the scenario-file layer needs.
    """

    name: str
    distance_m: float
    orientation_deg: float
    tx_power_dbm: float = 14.0
    traffic_demand_mbps: float = 10.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError("distance must be positive")
        if self.traffic_demand_mbps <= 0:
            raise ValueError("traffic demand must be positive")

    def to_dict(self) -> Dict[str, Union[str, float]]:
        """Plain-data form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "StationSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**dict(data))

    def to_placement(self) -> StationPlacement:
        """The deployment-layer placement this spec describes."""
        return StationPlacement(
            name=self.name, distance_m=self.distance_m,
            orientation_deg=self.orientation_deg,
            tx_power_dbm=self.tx_power_dbm,
            traffic_demand_mbps=self.traffic_demand_mbps)

    @classmethod
    def from_placement(cls, placement: StationPlacement) -> "StationSpec":
        """Lift a deployment-layer placement into a spec."""
        return cls(name=placement.name, distance_m=placement.distance_m,
                   orientation_deg=placement.orientation_deg,
                   tx_power_dbm=placement.tx_power_dbm,
                   traffic_demand_mbps=placement.traffic_demand_mbps)


@dataclass(frozen=True)
class TopologySpec:
    """Provenance of a generated fleet: which family, which knobs.

    Attached to a :class:`FleetSpec` by the deployment-topology
    generators (:mod:`repro.world.topology`) so a generated scenario
    file is self-describing — the family name plus the exact generator
    parameters survive the ``to_dict``/``from_json`` round-trip.
    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs
    (scalar values only) so the spec stays frozen and hashable.
    """

    family: str
    params: Tuple[Tuple[str, Union[str, int, float, bool]], ...] = ()

    def __post_init__(self) -> None:
        if not self.family:
            raise ValueError("topology family must be non-empty")
        pairs = []
        for name, value in self.params:
            if not isinstance(name, str) or not name:
                raise ValueError("topology parameter names must be strings")
            if not isinstance(value, (str, int, float, bool)):
                raise ValueError(
                    f"topology parameter {name!r} must be a scalar, "
                    f"got {value!r}")
            pairs.append((name, value))
        object.__setattr__(self, "params", tuple(sorted(pairs)))

    @classmethod
    def of(cls, family: str, **params: Union[str, int, float, bool]
           ) -> "TopologySpec":
        """Build from keyword generator parameters."""
        return cls(family=family, params=tuple(params.items()))

    def as_mapping(self) -> Dict[str, Union[str, int, float, bool]]:
        """The generator parameters as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> Dict:
        """Plain-data form (JSON-ready)."""
        return {"family": self.family, "params": self.as_mapping()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(family=data["family"],
                   params=tuple(dict(data.get("params", {})).items()))


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of a whole deployment.

    Everything a :class:`FleetSession` needs, as plain data: the
    stations, the shared surface (by design name, so it serializes),
    the access point's polarization orientation, the carrier and the
    multipath seed — plus, for generated deployments, the
    :class:`TopologySpec` provenance.  ``spec -> to_dict -> from_dict``
    round-trips to an equal spec, and two sessions built from equal
    specs produce identical
    :class:`~repro.network.scheduler.ScheduleResult`\\ s.
    """

    stations: Tuple[StationSpec, ...]
    surface: str = "llama"
    ap_orientation_deg: float = 0.0
    frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    environment_seed: int = 2021
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stations", tuple(self.stations))
        if not self.stations:
            raise ValueError("a fleet needs at least one station")
        names = [station.name for station in self.stations]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")
        if self.surface not in SURFACE_DESIGNS:
            raise ValueError(
                f"unknown surface design {self.surface!r}; expected one of "
                f"{sorted(SURFACE_DESIGNS)}")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def station_names(self) -> Tuple[str, ...]:
        """Station names in stacking order."""
        return tuple(station.name for station in self.stations)

    def station(self, name: str) -> StationSpec:
        """Look up one station spec by name."""
        for station in self.stations:
            if station.name == name:
                return station
        raise KeyError(f"unknown station {name!r}")

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Plain-data form (JSON-ready)."""
        data = {
            "stations": [station.to_dict() for station in self.stations],
            "surface": self.surface,
            "ap_orientation_deg": self.ap_orientation_deg,
            "frequency_hz": self.frequency_hz,
            "environment_seed": self.environment_seed,
        }
        if self.topology is not None:
            data["topology"] = self.topology.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(data)
        stations = tuple(StationSpec.from_dict(station)
                         for station in payload.pop("stations"))
        topology = payload.pop("topology", None)
        if topology is not None and not isinstance(topology, TopologySpec):
            topology = TopologySpec.from_dict(topology)
        return cls(stations=stations, topology=topology, **payload)

    def to_json(self, **dumps_kwargs) -> str:
        """Serialize to a JSON scenario document."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "FleetSpec":
        """Parse a JSON scenario document."""
        return cls.from_dict(json.loads(document))

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    @classmethod
    def from_deployment(cls, deployment: DenseDeployment,
                        surface: Optional[str] = None,
                        topology: Optional[TopologySpec] = None
                        ) -> "FleetSpec":
        """Best-effort spec of an existing deployment.

        The shared surface object itself does not serialize: ``surface``
        names the design to rebuild, and when omitted it is detected by
        matching the deployment's surface against the named
        :data:`SURFACE_DESIGNS`.  A surface no named design reproduces
        falls back to ``"llama"`` with a ``UserWarning`` — round-tripping
        such a spec changes the physics, so callers holding a custom
        surface should keep the deployment object itself.  ``topology``
        records the generator provenance (family + parameters) for
        deployments built by :mod:`repro.world.topology`; it rides
        through the dict/JSON round-trip untouched.
        """
        if surface is None:
            surface_name = deployment.metasurface.name
            matches = [key for key, design in SURFACE_DESIGNS.items()
                       if design().build().name == surface_name]
            if matches:
                surface = matches[0]
            else:
                warnings.warn(
                    f"deployment surface {surface_name!r} matches no named "
                    "design; the spec records the default 'llama' surface "
                    "and will not rebuild this deployment's physics",
                    UserWarning, stacklevel=2)
                surface = "llama"
        return cls(
            stations=tuple(StationSpec.from_placement(station)
                           for station in deployment.stations),
            surface=surface,
            ap_orientation_deg=deployment.ap_orientation_deg,
            frequency_hz=deployment.frequency_hz,
            environment_seed=deployment.environment_seed,
            topology=topology)

    @classmethod
    def random_home(cls, station_count: int = 6, seed: int = 7,
                    surface: str = "llama") -> "FleetSpec":
        """A reproducible random smart-home fleet.

        The declarative twin of
        :meth:`~repro.network.deployment.DenseDeployment.random_home`
        (same seeded draws, lifted into a spec so the scenario
        serializes).
        """
        deployment = DenseDeployment.random_home(station_count=station_count,
                                                 seed=seed)
        return cls.from_deployment(deployment, surface=surface)

    @classmethod
    def office(cls, station_count: int = 12, seed: int = 42,
               surface: str = "llama") -> "FleetSpec":
        """A reproducible office fleet: denser, farther, lower power.

        Sensors and badges spread 4-15 m from the AP at 0 dBm — the
        regime where mismatched stations sit on the 802.11g rate cliff
        and the surface's polarization correction buys throughput.
        """
        if station_count < 1:
            raise ValueError("need at least one station")
        rng = np.random.default_rng(seed)
        stations = tuple(
            StationSpec(
                name=f"desk-{index}",
                distance_m=float(rng.uniform(4.0, 15.0)),
                orientation_deg=float(rng.uniform(0.0, 180.0)),
                tx_power_dbm=0.0,
                traffic_demand_mbps=float(rng.uniform(0.5, 8.0)),
            )
            for index in range(station_count)
        )
        return cls(stations=stations, surface=surface, environment_seed=seed)

    def build(self) -> DenseDeployment:
        """Construct the deployment this spec describes."""
        return DenseDeployment(
            [station.to_placement() for station in self.stations],
            metasurface=SURFACE_DESIGNS[self.surface]().build(),
            ap_orientation_deg=self.ap_orientation_deg,
            frequency_hz=self.frequency_hz,
            environment_seed=self.environment_seed)


@dataclass(frozen=True)
class FleetBiasPlan:
    """Per-station optimal bias pairs found by one stacked search."""

    station_names: Tuple[str, ...]
    best_vx: np.ndarray
    best_vy: np.ndarray
    best_power_dbm: np.ndarray

    def __post_init__(self) -> None:
        for name in ("best_vx", "best_vy", "best_power_dbm"):
            object.__setattr__(self, name,
                               np.asarray(getattr(self, name), dtype=float))

    def bias_for(self, station: str) -> Tuple[float, float]:
        """The (vx, vy) pair chosen for one station."""
        index = self.station_names.index(station)
        return (float(self.best_vx[index]), float(self.best_vy[index]))

    def power_for(self, station: str) -> float:
        """The power the chosen pair achieves for one station."""
        return float(self.best_power_dbm[self.station_names.index(station)])

    def __iter__(self):
        """Iterate ``(station, vx, vy, power_dbm)`` rows."""
        return iter(zip(self.station_names, self.best_vx.tolist(),
                        self.best_vy.tolist(),
                        self.best_power_dbm.tolist()))


#: Scheduling strategies :meth:`FleetSession.schedule` accepts.
SCHEDULE_STRATEGIES = ("fixed-bias", "per-station", "polarization-reuse",
                       "no-surface")


class FleetSession:
    """A measurement/scheduling session over a fleet of links.

    The multi-link counterpart of :class:`~repro.api.session.LinkSession`:
    it owns N named stations (each a
    :class:`~repro.channel.link.LinkConfiguration` derived from the
    shared base), and every probe — measurement grids, Algorithm 1
    searches, scheduler utility scans — evaluates **all stations in one
    NumPy pass** along a leading ``station`` axis.

    Parameters
    ----------
    fleet:
        A :class:`FleetSpec` (declarative scenarios, the common case),
        an existing :class:`~repro.network.deployment.DenseDeployment`
        to adopt, or a sequence of :class:`StationSpec` /
        :class:`~repro.network.deployment.StationPlacement`.
    sweep_config:
        Controller search parameters for :meth:`optimize_grid`
        (Algorithm 1 defaults).
    fault_schedule:
        Optional :class:`~repro.faults.FaultSchedule`; when active, the
        stacked probe backends of :meth:`optimize_grid` run through the
        deterministic fault plane.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy` wrapping those
        probes in virtual-clock retries.
    probe_policy:
        Optional :class:`~repro.faults.ProbePolicy` for median-of-k
        probe re-voting inside the stacked Algorithm 1 searches.
    """

    def __init__(self,
                 fleet: Union[FleetSpec, DenseDeployment,
                              Sequence[Union[StationSpec, StationPlacement]]],
                 sweep_config: Optional[VoltageSweepConfig] = None,
                 fault_schedule: Optional[FaultSchedule] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 probe_policy: Optional[ProbePolicy] = None):
        if isinstance(fleet, DenseDeployment):
            self.spec = FleetSpec.from_deployment(fleet)
            self.deployment = fleet
        elif isinstance(fleet, FleetSpec):
            self.spec = fleet
            self.deployment = fleet.build()
        else:
            stations = tuple(
                station if isinstance(station, StationSpec)
                else StationSpec.from_placement(station)
                for station in fleet)
            self.spec = FleetSpec(stations=stations)
            self.deployment = self.spec.build()
        self.controller = CentralizedController(sweep_config,
                                                probe_policy=probe_policy)
        self.monitor = HealthMonitor()
        self.fault_schedule = fault_schedule
        self.retry_policy = retry_policy
        self._quarantined: set = set()
        self._last_known_good: Dict[str, Tuple[float, float]] = {}
        self._sessions: Dict[str, LinkSession] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def station_names(self) -> Tuple[str, ...]:
        """Station names, in the order of the stacked station axis."""
        return self.deployment.station_names

    @property
    def station_count(self) -> int:
        """Number of stations in the fleet."""
        return len(self.deployment.stations)

    @property
    def ensemble(self) -> LinkEnsemble:
        """The stacked with-surface ensemble of the whole fleet."""
        return self.deployment.ensemble_for()

    @property
    def baseline_ensemble(self) -> LinkEnsemble:
        """The stacked no-surface ensemble of the whole fleet."""
        return self.deployment.ensemble_for(with_surface=False)

    def station_index(self, name: str) -> int:
        """Position of a station on the stacked station axis."""
        return self.deployment.station_index(name)

    # ------------------------------------------------------------------ #
    # Resilience plane: quarantine, churn, health
    # ------------------------------------------------------------------ #
    @property
    def active_stations(self) -> Tuple[str, ...]:
        """Stations currently in service (fleet order, minus quarantine)."""
        return tuple(name for name in self.station_names
                     if name not in self._quarantined)

    @property
    def quarantined_stations(self) -> Tuple[str, ...]:
        """Stations currently quarantined, in quarantine order."""
        return self.monitor.quarantined

    @property
    def health(self) -> HealthReport:
        """Probe / retry / fault / quarantine accounting for this fleet."""
        return self.monitor.report()

    def quarantine(self, *names: str) -> Tuple[str, ...]:
        """Take stations out of service (idempotent); returns survivors.

        Quarantined stations keep their last-known-good bias pair (see
        :meth:`last_known_good_bias`) so a recovering station can be
        re-biased without a fresh search; every scheduling and stacked
        search entry point then runs on the survivor subset only.
        """
        for name in names:
            self.deployment.station(name)  # KeyError for unknown names
            if name not in self._quarantined:
                self._quarantined.add(name)
                self.monitor.record_quarantine(name)
        return self.active_stations

    def reinstate(self, *names: str) -> Tuple[str, ...]:
        """Return stations to service (idempotent); returns survivors."""
        for name in names:
            self.deployment.station(name)
            if name in self._quarantined:
                self._quarantined.discard(name)
                self.monitor.record_reinstate(name)
        return self.active_stations

    def apply_churn(self, churn: Union[StationChurn, Sequence[str]]
                    ) -> Tuple[str, ...]:
        """Synchronize quarantine with a churn process's up/down state.

        ``churn`` is a :class:`~repro.faults.StationChurn` (its current
        up-set is adopted) or an explicit sequence of up-station names;
        every other fleet station is quarantined.  Returns the
        surviving stations.
        """
        if isinstance(churn, StationChurn):
            up = set(churn.up_stations)
        else:
            up = set(churn)
        for name in self.station_names:
            if name in up:
                self.reinstate(name)
            else:
                self.quarantine(name)
        return self.active_stations

    def last_known_good_bias(self, station: str
                             ) -> Optional[Tuple[float, float]]:
        """The bias pair last scheduled for a station (None if never).

        Updated by every surface-strategy :meth:`schedule` epoch and
        kept through quarantine — the state a recovered station is
        re-biased to before its next fresh search.
        """
        self.deployment.station(station)
        return self._last_known_good.get(station)

    def _resilient_backend(self, backend):
        """Wrap a probe backend in the configured fault/retry planes."""
        if (self.fault_schedule is not None
                and self.fault_schedule.spec.active):
            backend = FaultyBackend(backend, self.fault_schedule,
                                    monitor=self.monitor)
        if self.retry_policy is not None:
            backend = RetryingBackend(backend, self.retry_policy,
                                      monitor=self.monitor,
                                      schedule=self.fault_schedule)
        return backend

    # ------------------------------------------------------------------ #
    # Measurement plane (station-stacked)
    # ------------------------------------------------------------------ #
    def measure_grid(self, vx, vy,
                     stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """Received power of every station at every bias pair, one pass.

        ``vx`` / ``vy`` may be scalars or mutually broadcastable arrays;
        the result is ``(station_count,) + broadcast(vx, vy)`` with
        stations stacked along the leading axis.  Row ``i`` matches a
        per-station :class:`LinkSession` probing the same voltages to
        <= 1e-9 dB (pinned by the fleet parity suite).
        """
        return self.deployment.rssi_matrix(vx, vy, stations)

    def measure(self, station: str, vx: float = 0.0, vy: float = 0.0) -> float:
        """Received power (dBm) of one station at one bias pair."""
        return self.deployment.rssi_dbm(station, vx, vy)

    def rate_grid(self, vx, vy,
                  stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """Achievable 802.11g PHY rates of every station, one pass."""
        return self.deployment.rate_matrix(vx, vy, stations)

    def measure_aligned(self, vx, vy,
                        stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """Per-station power at *per-station* bias pairs (one TDMA epoch)."""
        return self.deployment.rssi_aligned(vx, vy, stations)

    def probe_aligned(self, vx, vy,
                      stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """Per-station power at per-station biases, resiliently probed.

        The serving plane's coalesced-probe entry point: one TDMA-epoch
        shaped aligned grid (``stations`` may repeat — each occurrence
        is its own stacked row, so a window's worth of measure requests
        for the same station coalesces into one pass), evaluated
        through the session's fault and retry planes when configured.
        With neither configured this is exactly
        :meth:`measure_aligned`'s probe — the zero-fault service parity
        the serve experiments pin to <= 1e-9 dB.
        """
        names = self.station_names if stations is None else tuple(stations)
        ensemble = self.deployment.ensemble_for(names)
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        grid = ProbeGrid.aligned(**ensemble.station_grid(0), vx=vx, vy=vy)
        backend = self._resilient_backend(LinkBackend(ensemble.link))
        return np.asarray(backend.measure_grid(grid), dtype=float)

    def baseline_rssi_dbm(
            self, stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """No-surface received power of every station, one pass."""
        return self.deployment.baseline_rssi_vector(stations)

    def baseline_rate_mbps(
            self, stations: Optional[Sequence[str]] = None) -> np.ndarray:
        """No-surface achievable rate of every station, one pass."""
        return self.deployment.baseline_rate_vector(stations)

    # ------------------------------------------------------------------ #
    # Search plane (station-stacked)
    # ------------------------------------------------------------------ #
    def best_bias_plan(self, step_v: float = 5.0,
                       stations: Optional[Sequence[str]] = None
                       ) -> FleetBiasPlan:
        """Every station's best bias pair from one stacked grid search."""
        names = (self.station_names if stations is None
                 else tuple(stations))
        vx, vy, power = self.deployment.best_bias_per_station(
            step_v=step_v, names=names)
        return FleetBiasPlan(station_names=names, best_vx=vx, best_vy=vy,
                             best_power_dbm=power)

    def compromise_bias(self, stations: Optional[Sequence[str]] = None,
                        step_v: float = 5.0) -> Tuple[float, float]:
        """The single bias pair maximizing the stations' summed rate."""
        return self.deployment.compromise_bias(stations, step_v=step_v)

    def station_grid(self) -> ProbeGrid:
        """The fleet as an aligned probe grid over the station axis.

        One ``(station_count,)``-shaped
        :class:`~repro.channel.grid.ProbeGrid` whose distance / tx-power
        / tx-orientation values co-vary per station — the grid the
        grid-native controller consumes in :meth:`optimize_grid`.
        """
        ensemble = self.ensemble
        return ProbeGrid.aligned(**ensemble.station_grid(0))

    def optimize_grid(self, exhaustive: bool = False,
                      step_v: float = 1.0) -> GridSweepResult:
        """Run Algorithm 1 for every surviving station simultaneously.

        One batched probe per refinement iteration covers every
        station's voltage window; cell ``i`` of the result equals
        running :meth:`LinkSession.optimize` on station ``i`` alone
        (same grids, same first-maximum and NaN semantics).  Quarantined
        stations are excluded; probes run through the session's fault
        and retry planes when configured.
        """
        ensemble = self.deployment.ensemble_for(self.active_stations)
        grid = ProbeGrid.aligned(**ensemble.station_grid(0))
        return self.controller.optimize_grid(
            self._resilient_backend(LinkBackend(ensemble.link)), grid,
            exhaustive=exhaustive, step_v=step_v)

    # ------------------------------------------------------------------ #
    # Scheduling / access-control plane
    # ------------------------------------------------------------------ #
    def schedule(self, strategy: str = "polarization-reuse",
                 epoch_duration_s: float = 60.0,
                 bias_search_step_v: float = 5.0,
                 orientation_tolerance_deg: float = 20.0) -> ScheduleResult:
        """Schedule one TDMA epoch over the fleet.

        ``strategy`` is one of :data:`SCHEDULE_STRATEGIES`; all
        strategies drive the fleet-stacked utility searches, so the
        whole epoch costs a handful of NumPy passes regardless of the
        station count.  Quarantined stations are excluded from the
        epoch — with every station quarantined the result is the
        well-formed empty epoch (zero throughput, vacuous fairness) —
        and each surface-strategy epoch refreshes the survivors'
        last-known-good bias pairs.
        """
        survivors = self.active_stations
        if strategy == "no-surface":
            return baseline_without_surface(self.deployment,
                                            stations=survivors)
        if strategy == "fixed-bias":
            scheduler = FixedBiasScheduler(
                self.deployment, epoch_duration_s=epoch_duration_s,
                bias_search_step_v=bias_search_step_v, stations=survivors)
        elif strategy == "per-station":
            scheduler = PerStationScheduler(
                self.deployment, epoch_duration_s=epoch_duration_s,
                bias_search_step_v=bias_search_step_v, stations=survivors)
        elif strategy == "polarization-reuse":
            scheduler = PolarizationReuseScheduler(
                self.deployment, epoch_duration_s=epoch_duration_s,
                bias_search_step_v=bias_search_step_v,
                orientation_tolerance_deg=orientation_tolerance_deg,
                stations=survivors)
        else:
            raise ValueError(f"unknown scheduling strategy {strategy!r}; "
                             f"expected one of {SCHEDULE_STRATEGIES}")
        result = scheduler.schedule()
        for allocation in result.allocations:
            self._last_known_good[allocation.station] = allocation.bias_pair
        return result

    def schedule_all(self, epoch_duration_s: float = 60.0,
                     bias_search_step_v: float = 5.0,
                     orientation_tolerance_deg: float = 20.0
                     ) -> Dict[str, ScheduleResult]:
        """Run every strategy over one epoch (the Sec. 7 comparison)."""
        return {
            strategy: self.schedule(
                strategy, epoch_duration_s=epoch_duration_s,
                bias_search_step_v=bias_search_step_v,
                orientation_tolerance_deg=orientation_tolerance_deg)
            for strategy in SCHEDULE_STRATEGIES
        }

    def access_control(self, intended_station: str, unauthorized_station: str,
                       step_v: float = 3.0,
                       minimum_intended_rssi_dbm: Optional[float] = None
                       ) -> AccessControlResult:
        """Polarization access control between two fleet stations."""
        return polarization_access_control(
            self.deployment, intended_station, unauthorized_station,
            step_v=step_v,
            minimum_intended_rssi_dbm=minimum_intended_rssi_dbm)

    def orientation_groups(self, tolerance_deg: float = 20.0):
        """Orientation clusters (the polarization-reuse structure)."""
        return self.deployment.orientation_groups(tolerance_deg)

    # ------------------------------------------------------------------ #
    # Per-station views (migration bridge)
    # ------------------------------------------------------------------ #
    def session_for(self, station: str) -> LinkSession:
        """A single-link :class:`LinkSession` over one station (cached).

        The migration bridge for campaigns that still need the scalar
        facade (rotator/supply bundle, rotation estimation, ...); the
        fleet-stacked planes above are the fast path.
        """
        if station not in self._sessions:
            self._sessions[station] = LinkSession(
                self.deployment.link_for(station),
                sweep_config=self.controller.config)
        return self._sessions[station]


__all__ = [
    "SURFACE_DESIGNS",
    "SCHEDULE_STRATEGIES",
    "StationSpec",
    "TopologySpec",
    "FleetSpec",
    "FleetBiasPlan",
    "FleetSession",
]
