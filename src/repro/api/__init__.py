"""Batched measurement-plane API.

This package is the public face of the reproduction's measurement
plane.  It separates *what is probed* (a
:class:`~repro.api.backend.MeasurementBackend` answering scalar,
batched, single-axis or N-D grid queries) from *what orchestrates the
probing* (controllers, estimators, schedulers and figure runners), so
sweeps are vectorized end to end and backends — simulation, noisy
receivers, recorded traces, hardware — are substitutable.

* :class:`MeasurementBackend`, :class:`SweepMeasurementBackend`,
  :class:`GridMeasurementBackend` — the backend protocols, from scalar
  bias probes up to whole N-D probe grids.
* :class:`LinkBackend`, :class:`CallableBackend`,
  :class:`ReceiverSweepBackend` — the stock implementations.
* :class:`ProbeGrid` (re-exported from :mod:`repro.channel.grid`) — the
  named N-D operating-point grids the engine evaluates; axis names are
  ``"vx"`` / ``"vy"`` plus :data:`SWEEP_AXES`.
* :class:`LinkSession` — a facade owning the link / rotator / supply
  bundle for one configuration, replacing ad-hoc link construction.
* :class:`FleetSession` — the multi-link counterpart: N named stations
  evaluated in one NumPy pass along a leading ``station`` axis
  (measurement grids, stacked Algorithm 1, TDMA scheduling, access
  control).
* :class:`FleetSpec` / :class:`StationSpec` — declarative, serializable
  deployment scenarios (``to_dict``/``from_dict`` JSON round-trip).
* :class:`ScenarioBuilder` — fluent scenario construction
  (antennas → deployment → environment → device).
* Fault plane re-exports — :class:`FaultSpec` / :class:`FaultSchedule`
  (deterministic fault injection), :class:`RetryPolicy` /
  :class:`ProbePolicy` (resilient probing) and :class:`HealthReport`,
  the knobs both session facades accept; the full taxonomy lives in
  :mod:`repro.faults`.
* Serving-layer re-exports (lazy) — :class:`SurfaceService` /
  :class:`ServiceConfig` / :func:`serve_trace` plus the
  :class:`LoadProfile` open-loop generator and :class:`VirtualClock`;
  the full serving plane lives in :mod:`repro.serve`.
"""

from repro.api.backend import (
    CallableBackend,
    CallableOrientationBackend,
    FixedOrientationBackend,
    GridMeasurementBackend,
    LinkBackend,
    MeasureCallback,
    MeasurementBackend,
    OrientationBackend,
    OrientationMeasureCallback,
    OrientationMeasurementBackend,
    ReceiverSweepBackend,
    SweepMeasurementBackend,
    as_backend,
    as_orientation_backend,
)
from repro.api.builder import ScenarioBuilder
from repro.api.fleet import (
    SCHEDULE_STRATEGIES,
    SURFACE_DESIGNS,
    FleetBiasPlan,
    FleetSession,
    FleetSpec,
    StationSpec,
    TopologySpec,
)
from repro.api.session import LinkSession
from repro.channel.grid import GRID_AXES, GridAxis, ProbeGrid, SWEEP_AXES
from repro.faults import (
    FaultSchedule,
    FaultSpec,
    HealthReport,
    ProbePolicy,
    RetryPolicy,
)

#: Experiment-registry exports, resolved lazily (PEP 562): importing
#: ``repro.api`` for a single link must not pay for — or create an
#: import cycle with — the full experiment catalogue in
#: :mod:`repro.experiments`.
_EXPERIMENT_EXPORTS = {
    "EXPERIMENT_REGISTRY": ("repro.experiments.registry", "REGISTRY"),
    "ExperimentRegistry": ("repro.experiments.registry",
                           "ExperimentRegistry"),
    "ExperimentSpec": ("repro.experiments.registry", "ExperimentSpec"),
    "Param": ("repro.experiments.registry", "Param"),
    "ExperimentResult": ("repro.experiments.runner", "ExperimentResult"),
    "Runner": ("repro.experiments.runner", "Runner"),
    "ResultStore": ("repro.experiments.store", "ResultStore"),
    "ProgressReporter": ("repro.experiments.parallel", "ProgressReporter"),
    "evaluate_grid_sharded": ("repro.experiments.parallel",
                              "evaluate_grid_sharded"),
}

#: Serving-layer exports, also lazy: the service facade sits *above*
#: the session facades (it consumes :class:`FleetSession`), so eager
#: imports here would cycle through :mod:`repro.serve` back into this
#: package.
_SERVE_EXPORTS = {
    "LoadProfile": ("repro.serve.loadgen", "LoadProfile"),
    "RequestMix": ("repro.serve.loadgen", "RequestMix"),
    "generate_trace": ("repro.serve.loadgen", "generate_trace"),
    "RequestTrace": ("repro.serve.requests", "RequestTrace"),
    "ServiceMetrics": ("repro.serve.metrics", "ServiceMetrics"),
    "ServiceConfig": ("repro.serve.service", "ServiceConfig"),
    "SurfaceService": ("repro.serve.service", "SurfaceService"),
    "serve_trace": ("repro.serve.service", "serve_trace"),
    "VirtualClock": ("repro.serve.clock", "VirtualClock"),
}


def __getattr__(name):
    entry = _EXPERIMENT_EXPORTS.get(name) or _SERVE_EXPORTS.get(name)
    if entry is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = entry
    import importlib
    return getattr(importlib.import_module(module_name), attribute)

__all__ = [
    "MeasureCallback",
    "MeasurementBackend",
    "LinkBackend",
    "CallableBackend",
    "SweepMeasurementBackend",
    "GridMeasurementBackend",
    "ReceiverSweepBackend",
    "GRID_AXES",
    "GridAxis",
    "ProbeGrid",
    "SWEEP_AXES",
    "as_backend",
    "OrientationMeasureCallback",
    "OrientationMeasurementBackend",
    "OrientationBackend",
    "CallableOrientationBackend",
    "FixedOrientationBackend",
    "as_orientation_backend",
    "LinkSession",
    "ScenarioBuilder",
    "SCHEDULE_STRATEGIES",
    "SURFACE_DESIGNS",
    "StationSpec",
    "TopologySpec",
    "FleetSpec",
    "FleetBiasPlan",
    "FleetSession",
    "FaultSpec",
    "FaultSchedule",
    "RetryPolicy",
    "ProbePolicy",
    "HealthReport",
    "EXPERIMENT_REGISTRY",
    "ExperimentRegistry",
    "ExperimentSpec",
    "ExperimentResult",
    "Param",
    "Runner",
    "ResultStore",
    "ProgressReporter",
    "evaluate_grid_sharded",
    "LoadProfile",
    "RequestMix",
    "RequestTrace",
    "ServiceConfig",
    "ServiceMetrics",
    "SurfaceService",
    "VirtualClock",
    "generate_trace",
    "serve_trace",
]
