"""Batched measurement-plane API.

This package is the public face of the reproduction's measurement
plane.  It separates *what is probed* (a
:class:`~repro.api.backend.MeasurementBackend` answering scalar or
batched bias-voltage queries) from *what orchestrates the probing*
(controllers, estimators, schedulers and figure runners), so sweeps are
vectorized end to end and backends — simulation, noisy receivers,
recorded traces, hardware — are substitutable.

* :class:`MeasurementBackend`, :class:`LinkBackend`,
  :class:`CallableBackend` — the backend protocol and the two stock
  implementations.
* :class:`LinkSession` — a facade owning the link / rotator / supply
  bundle for one configuration, replacing ad-hoc link construction.
* :class:`ScenarioBuilder` — fluent scenario construction
  (antennas → deployment → environment → device).
"""

from repro.api.backend import (
    CallableBackend,
    CallableOrientationBackend,
    FixedOrientationBackend,
    LinkBackend,
    MeasureCallback,
    MeasurementBackend,
    OrientationBackend,
    OrientationMeasureCallback,
    OrientationMeasurementBackend,
    ReceiverSweepBackend,
    SweepMeasurementBackend,
    as_backend,
    as_orientation_backend,
)
from repro.api.builder import ScenarioBuilder
from repro.api.session import LinkSession

__all__ = [
    "MeasureCallback",
    "MeasurementBackend",
    "LinkBackend",
    "CallableBackend",
    "SweepMeasurementBackend",
    "ReceiverSweepBackend",
    "as_backend",
    "OrientationMeasureCallback",
    "OrientationMeasurementBackend",
    "OrientationBackend",
    "CallableOrientationBackend",
    "FixedOrientationBackend",
    "as_orientation_backend",
    "LinkSession",
    "ScenarioBuilder",
]
