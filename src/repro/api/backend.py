"""Measurement backends: the typed data plane of the batched API.

The controller, schedulers and figure runners only ever need one
operation from the world: "what power does the receiver report at a set
of bias pairs?".  The seed codebase expressed that as a scalar
``measure(vx, vy) -> power_dbm`` callable, which forces every sweep into
a Python loop over the full Jones/Friis/multipath budget.  This module
replaces the callback with a small, well-typed protocol:

* :class:`MeasurementBackend` — the protocol: ``measure`` for one probe
  and ``measure_batch`` for whole NumPy bias grids;
* :class:`LinkBackend` — the simulation backend, delegating to the
  vectorized :meth:`repro.channel.link.WirelessLink.received_power_dbm_batch`;
* :class:`CallableBackend` — adapts any legacy scalar callable (noisy
  receivers, recorded traces, real hardware) to the protocol, looping
  for batches so orchestration code only ever talks batch;
* :class:`OrientationBackend` / :class:`FixedOrientationBackend` — the
  two-argument-plus-orientation variant the rotation-angle estimator
  needs, with per-orientation link caching.

Orchestration layers accept either a backend or a legacy callable; bare
callables are wrapped via :func:`as_backend` (with a deprecation
warning at the public entry points).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.channel.grid import ProbeGrid
from repro.channel.link import WirelessLink

#: Legacy scalar measurement callback signature.
MeasureCallback = Callable[[float, float], float]

#: Legacy orientation-aware measurement callback signature.
OrientationMeasureCallback = Callable[[float, float, float], float]


@runtime_checkable
class MeasurementBackend(Protocol):
    """Anything that can report received power for bias pairs.

    Implementations must be consistent between the scalar and batch
    entry points: ``measure_batch([vx], [vy])[0] == measure(vx, vy)`` up
    to measurement noise.
    """

    def measure(self, vx: float, vy: float) -> float:
        """Received power (dBm) at one bias pair."""
        ...

    def measure_batch(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Received power (dBm) for arrays of bias pairs (same shape)."""
        ...


@runtime_checkable
class SweepMeasurementBackend(Protocol):
    """A measurement plane that can probe a whole link-parameter axis.

    ``measure_sweep(axis, values, vx, vy)`` reports received power for
    every (axis value, bias pair) operating point in one call; axis
    values and voltage arrays broadcast element-wise (the multi-axis
    controller passes ``(n, 1)`` values against ``(n, k)`` per-point
    voltage grids).  Axes are the :data:`repro.channel.link.SWEEP_AXES`.
    """

    def measure_sweep(self, axis: str, values, vx, vy) -> np.ndarray:
        """Received power (dBm) over a sweep-axis/bias-grid batch."""
        ...


@runtime_checkable
class GridMeasurementBackend(Protocol):
    """A measurement plane that can probe a whole N-D probe grid.

    ``measure_grid(grid)`` reports received power at every operating
    point of a :class:`~repro.channel.grid.ProbeGrid` — bias voltages
    plus any subset of :data:`repro.channel.grid.SWEEP_AXES` — in one
    call, returning an array of ``grid.shape``.  This is the richest
    probe the grid-native controller dispatches to; backends that only
    implement ``measure_sweep`` still serve single-axis search grids.
    """

    def measure_grid(self, grid: ProbeGrid) -> np.ndarray:
        """Received power (dBm) at every grid operating point."""
        ...


class LinkBackend:
    """The simulation backend: probes a :class:`WirelessLink` directly.

    This is the noiseless, vectorized data plane every deterministic
    sweep and figure runner uses.  Batched probes evaluate the full link
    budget over the whole grid in one NumPy pass; ``measure_sweep``
    additionally vectorizes a frequency / tx-power / distance /
    rx-orientation axis alongside the bias grid.
    """

    def __init__(self, link: WirelessLink):
        self.link = link

    def measure(self, vx: float, vy: float) -> float:
        """Received power (dBm) at one bias pair."""
        return self.link.received_power_dbm(vx, vy)

    def measure_batch(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Received power (dBm) over whole bias grids in one pass."""
        return self.link.received_power_dbm_batch(vx, vy)

    def measure_sweep(self, axis: str, values, vx=0.0, vy=0.0) -> np.ndarray:
        """Received power (dBm) over a whole link-parameter axis at once."""
        return self.link.received_power_dbm_sweep(axis, values, vx=vx, vy=vy)

    def measure_grid(self, grid: ProbeGrid) -> np.ndarray:
        """Received power (dBm) over a whole N-D probe grid at once."""
        return self.link.evaluate(grid)


class CallableBackend:
    """Adapts a legacy scalar ``measure(vx, vy)`` callable to the protocol.

    Batched probes fall back to a Python loop, preserving the exact
    probe order (and therefore the noise-sequence/clock behaviour of
    stateful callables such as the simulated sampling receiver or a
    hardware supply in the loop).
    """

    def __init__(self, measure: MeasureCallback):
        if not callable(measure):
            raise TypeError("CallableBackend needs a measure(vx, vy) callable")
        self._measure = measure

    def measure(self, vx: float, vy: float) -> float:
        """Received power (dBm) at one bias pair."""
        return float(self._measure(vx, vy))

    def measure_batch(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Loop the scalar callable over the (broadcast) voltage arrays."""
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        vx_b, vy_b = np.broadcast_arrays(vx, vy)
        powers = np.array([self._measure(float(a), float(b))
                           for a, b in zip(vx_b.ravel(), vy_b.ravel())],
                          dtype=float)
        return powers.reshape(vx_b.shape)


class ReceiverSweepBackend:
    """Sweep-axis measurement plane over a noisy sampling receiver.

    Adapts a :class:`repro.radio.transceiver.SimulatedReceiver` to the
    :class:`SweepMeasurementBackend` protocol for the capacity
    experiments of Figs. 18-19, where the controller must see *noisy*
    power reports.  Probes are issued through the receiver's batched
    :meth:`measure_power_dbm_sweep`, which draws one noise realisation
    per probe column and shares it across axis points — reproducing, to
    floating-point round-off, the reports a Python loop of identically
    seeded per-point receivers would have produced.
    """

    def __init__(self, receiver, duration_s: float = 0.005,
                 tone_frequency_hz: float = 500e3):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.receiver = receiver
        self.duration_s = duration_s
        self.tone_frequency_hz = tone_frequency_hz

    def measure_sweep(self, axis: str, values, vx=0.0, vy=0.0) -> np.ndarray:
        """Noisy received-power reports over a sweep-axis/bias batch."""
        return self.receiver.measure_power_dbm_sweep(
            axis, values, vx=vx, vy=vy, duration_s=self.duration_s,
            tone_frequency_hz=self.tone_frequency_hz)


def as_backend(measure) -> MeasurementBackend:
    """Coerce a backend-or-callable into a :class:`MeasurementBackend`.

    Objects already exposing ``measure``/``measure_batch`` pass through
    untouched; bare callables are wrapped in :class:`CallableBackend`.
    """
    if hasattr(measure, "measure_batch") and hasattr(measure, "measure"):
        return measure
    return CallableBackend(measure)


# ---------------------------------------------------------------------- #
# Orientation-aware backends (rotation-angle estimation)
# ---------------------------------------------------------------------- #
@runtime_checkable
class OrientationMeasurementBackend(Protocol):
    """Measurement plane with a receiver-orientation degree of freedom."""

    def measure(self, orientation_deg: float, vx: float, vy: float) -> float:
        """Received power (dBm) at one (orientation, Vx, Vy) point."""
        ...

    def measure_batch(self, orientation_deg: float, vx: np.ndarray,
                      vy: np.ndarray) -> np.ndarray:
        """Received power (dBm) over bias grids at a fixed orientation."""
        ...


class OrientationBackend:
    """Orientation-aware backend over a link, caching one link per angle.

    The Sec. 3.4 estimation procedure probes the same few receiver
    orientations hundreds of times; rebuilding a :class:`WirelessLink`
    (and its frozen configuration) per probe dominated the seed
    implementation's cost.  Here each orientation's rotated link is
    built once and each voltage sweep at that orientation is a single
    vectorized pass.
    """

    def __init__(self, link: WirelessLink,
                 cache: Optional[Dict[float, WirelessLink]] = None):
        self._base = link
        self._links: Dict[float, WirelessLink] = cache if cache is not None else {}

    def link_for_orientation(self, orientation_deg: float) -> WirelessLink:
        """The link with the receive antenna rotated to ``orientation_deg``."""
        key = float(orientation_deg)
        if key not in self._links:
            configuration = self._base.configuration
            self._links[key] = WirelessLink(replace(
                configuration,
                rx_antenna=configuration.rx_antenna.rotated(key)))
        return self._links[key]

    def measure(self, orientation_deg: float, vx: float, vy: float) -> float:
        """Received power (dBm) at one (orientation, Vx, Vy) point."""
        return self.link_for_orientation(orientation_deg).received_power_dbm(
            vx, vy)

    def measure_batch(self, orientation_deg: float, vx: np.ndarray,
                      vy: np.ndarray) -> np.ndarray:
        """Vectorized bias sweep at one receiver orientation."""
        return self.link_for_orientation(
            orientation_deg).received_power_dbm_batch(vx, vy)


class CallableOrientationBackend:
    """Adapts a legacy ``measure(orientation, vx, vy)`` callable."""

    def __init__(self, measure: OrientationMeasureCallback):
        if not callable(measure):
            raise TypeError(
                "CallableOrientationBackend needs a measure(orientation, vx, "
                "vy) callable")
        self._measure = measure

    def measure(self, orientation_deg: float, vx: float, vy: float) -> float:
        """Received power (dBm) at one (orientation, Vx, Vy) point."""
        return float(self._measure(orientation_deg, vx, vy))

    def measure_batch(self, orientation_deg: float, vx: np.ndarray,
                      vy: np.ndarray) -> np.ndarray:
        """Loop the scalar callable over the (broadcast) voltage arrays."""
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        vx_b, vy_b = np.broadcast_arrays(vx, vy)
        powers = np.array(
            [self._measure(float(orientation_deg), float(a), float(b))
             for a, b in zip(vx_b.ravel(), vy_b.ravel())], dtype=float)
        return powers.reshape(vx_b.shape)


class FixedOrientationBackend:
    """A :class:`MeasurementBackend` view of an orientation backend.

    Freezes the receiver orientation so the bias-voltage controller can
    sweep voltages without knowing about the turntable.
    """

    def __init__(self, backend: OrientationMeasurementBackend,
                 orientation_deg: float):
        self._backend = backend
        self.orientation_deg = float(orientation_deg)

    def measure(self, vx: float, vy: float) -> float:
        """Received power (dBm) at one bias pair."""
        return self._backend.measure(self.orientation_deg, vx, vy)

    def measure_batch(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Received power (dBm) over bias grids at the fixed orientation."""
        return self._backend.measure_batch(self.orientation_deg, vx, vy)


def as_orientation_backend(measure) -> OrientationMeasurementBackend:
    """Coerce an orientation backend-or-callable to the protocol."""
    if hasattr(measure, "measure_batch") and hasattr(measure, "measure"):
        return measure
    return CallableOrientationBackend(measure)


__all__ = [
    "MeasureCallback",
    "OrientationMeasureCallback",
    "MeasurementBackend",
    "SweepMeasurementBackend",
    "GridMeasurementBackend",
    "LinkBackend",
    "CallableBackend",
    "ReceiverSweepBackend",
    "as_backend",
    "OrientationMeasurementBackend",
    "OrientationBackend",
    "CallableOrientationBackend",
    "FixedOrientationBackend",
    "as_orientation_backend",
]
