"""PHY / measurement substrate.

Simulates the role the USRP N210 + GNU Radio toolchain plays in the
paper's experiments: generating a continuous tone, sampling the received
waveform at 1 MS/s, and converting sample streams into averaged power
measurements and RSSI distributions (the PDFs of Figs. 2 and 20).
"""

from repro.radio.signal import BasebandSignal, cosine_tone
from repro.radio.transceiver import (
    ReceivedCapture,
    SimulatedReceiver,
    SimulatedTransmitter,
)
from repro.radio.measurement import (
    PowerMeasurement,
    average_power_dbm,
    power_trace_dbm,
    rssi_histogram,
)

__all__ = [
    "BasebandSignal",
    "cosine_tone",
    "ReceivedCapture",
    "SimulatedReceiver",
    "SimulatedTransmitter",
    "PowerMeasurement",
    "average_power_dbm",
    "power_trace_dbm",
    "rssi_histogram",
]
