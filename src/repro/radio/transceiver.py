"""Simulated SDR transmitter and receiver (USRP N210 stand-in).

In the paper the USRP only plays two roles: it radiates a continuous
tone at a configurable power/frequency, and it acts as a calibrated
power meter whose sample stream the controller averages.  The simulated
transceiver reproduces exactly those roles against the
:class:`~repro.channel.link.WirelessLink` channel model, including the
receiver noise floor, so the controller sees realistic (noisy) power
reports rather than exact link-budget numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.link import WirelessLink
from repro.radio.signal import BasebandSignal, cosine_tone
from repro.units import db_to_amplitude, dbm_to_milliwatts, milliwatts_to_dbm


@dataclass(frozen=True)
class SimulatedTransmitter:
    """A tone transmitter with configurable power and frequency.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power fed to the antenna port.
    tone_frequency_hz:
        Baseband tone frequency (paper: 500 kHz).
    sample_rate_hz:
        DAC/ADC sample rate (paper: 1 MHz).
    """

    tx_power_dbm: float = 0.0
    tone_frequency_hz: float = 500e3
    sample_rate_hz: float = 1e6

    def __post_init__(self) -> None:
        if self.tone_frequency_hz <= 0 or self.sample_rate_hz <= 0:
            raise ValueError("tone frequency and sample rate must be positive")

    def transmit(self, duration_s: float = 0.01) -> BasebandSignal:
        """Generate the transmitted baseband waveform."""
        return cosine_tone(frequency_hz=self.tone_frequency_hz,
                           sample_rate_hz=self.sample_rate_hz,
                           duration_s=duration_s,
                           power_dbm=self.tx_power_dbm)


@dataclass(frozen=True)
class ReceivedCapture:
    """A received sample capture plus its summary statistics."""

    signal: BasebandSignal
    mean_power_dbm: float
    true_power_dbm: float
    noise_power_dbm: float

    @property
    def snr_db(self) -> float:
        """Estimated SNR of the capture."""
        return self.mean_power_dbm - self.noise_power_dbm


class SimulatedReceiver:
    """A sampling receiver attached to a :class:`WirelessLink`.

    Parameters
    ----------
    link:
        The channel model whose output the receiver samples.
    sample_rate_hz:
        ADC sample rate (paper: 1 MHz).
    seed:
        Seed of the receiver's thermal-noise generator; captures are
        reproducible given the seed.
    """

    def __init__(self, link: WirelessLink, sample_rate_hz: float = 1e6,
                 seed: int = 7):
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        self.link = link
        self.sample_rate_hz = sample_rate_hz
        self._rng = np.random.default_rng(seed)

    def capture(self, duration_s: float = 0.01, vx: float = 0.0,
                vy: float = 0.0,
                tone_frequency_hz: float = 500e3) -> ReceivedCapture:
        """Capture a noisy sample stream at one bias operating point."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        true_power_dbm = self.link.received_power_dbm(vx, vy)
        noise_power_dbm = self.link.noise_power_dbm()
        clean = cosine_tone(frequency_hz=tone_frequency_hz,
                            sample_rate_hz=self.sample_rate_hz,
                            duration_s=duration_s,
                            power_dbm=true_power_dbm)
        noisy = clean.with_noise(noise_power_dbm, rng=self._rng)
        return ReceivedCapture(
            signal=noisy,
            mean_power_dbm=noisy.power_dbm(),
            true_power_dbm=true_power_dbm,
            noise_power_dbm=noise_power_dbm,
        )

    def measure_power_dbm(self, vx: float = 0.0, vy: float = 0.0,
                          duration_s: float = 0.005) -> float:
        """One averaged power report, as the controller consumes them."""
        return self.capture(duration_s=duration_s, vx=vx, vy=vy).mean_power_dbm

    def measure_power_dbm_sweep(self, axis: str, values, vx=0.0, vy=0.0,
                                duration_s: float = 0.005,
                                tone_frequency_hz: float = 500e3) -> np.ndarray:
        """Batched noisy power reports over a whole sweep axis at once.

        Rows of the broadcast ``(values, vx, vy)`` batch are independent
        axis points; columns are sequential probes (a 1-D batch is
        treated as axis points sharing one probe).  One noise
        realisation is drawn from this receiver's generator per probe
        column and shared across rows — exactly the sample streams a
        Python loop of per-point receivers constructed with the same
        seed would observe, so the vectorized sweep reproduces the
        scalar :meth:`measure_power_dbm` loop's reports to
        floating-point round-off, and the returned array keeps the
        broadcast input shape.  The capture itself is evaluated in
        closed form: for a unit tone ``u`` and noise block ``n``, the
        mean power of ``a u + n`` is
        ``a^2 mean|u|^2 + 2 a mean(Re(u conj(n))) + mean|n|^2``,
        so only three reductions per probe column are needed regardless
        of how many axis points share it.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        raw = np.asarray(
            self.link.received_power_dbm_sweep(axis, values, vx=vx, vy=vy),
            dtype=float)
        if raw.ndim > 2:
            raise ValueError("sweep probe batches must be at most 2-D "
                             "(axis points, probes)")
        true_powers = raw.reshape(-1, 1) if raw.ndim <= 1 else raw
        noise_power_dbm = self.link.noise_power_dbm()
        count = int(round(duration_s * self.sample_rate_hz))
        timestamps = np.arange(count) / self.sample_rate_hz
        tone = np.exp(1j * (2.0 * math.pi * tone_frequency_hz * timestamps))
        tone_power = np.mean(np.abs(tone) ** 2)
        noise_mw = float(dbm_to_milliwatts(noise_power_dbm))
        scale = math.sqrt(noise_mw / 2.0)
        amplitudes = db_to_amplitude(true_powers)
        powers_dbm = np.empty_like(true_powers)
        for column in range(true_powers.shape[1]):
            noise = (self._rng.normal(0.0, scale, count) +
                     1j * self._rng.normal(0.0, scale, count))
            cross = np.mean(np.real(tone * np.conj(noise)))
            noise_power = np.mean(np.abs(noise) ** 2)
            mean_mw = (amplitudes[:, column] ** 2 * tone_power +
                       2.0 * amplitudes[:, column] * cross + noise_power)
            powers_dbm[:, column] = milliwatts_to_dbm(mean_mw)
        return powers_dbm.reshape(raw.shape)

    def measure_average_dbm(self, seconds: float, vx: float = 0.0,
                            vy: float = 0.0, chunk_s: float = 0.01) -> float:
        """Average received power over a longer observation window.

        The paper's baseline measurements average 30 seconds of samples;
        simulating 30 M samples directly would be wasteful, so the window
        is split into chunks and the chunk powers are averaged in the
        linear domain, which is statistically equivalent for a
        stationary link.
        """
        if seconds <= 0 or chunk_s <= 0:
            raise ValueError("durations must be positive")
        chunk_count = max(1, int(round(seconds / chunk_s)))
        # Cap the simulated chunks; beyond a few dozen the average has
        # converged far below the 0.1 dB reporting resolution.
        chunk_count = min(chunk_count, 50)
        powers_mw = []
        for _ in range(chunk_count):
            capture = self.capture(duration_s=chunk_s, vx=vx, vy=vy)
            powers_mw.append(float(dbm_to_milliwatts(capture.mean_power_dbm)))
        return float(milliwatts_to_dbm(np.mean(powers_mw)))


__all__ = ["SimulatedTransmitter", "SimulatedReceiver", "ReceivedCapture"]
