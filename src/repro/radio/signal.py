"""Complex-baseband signal container and waveform generation.

The paper's transmitter "continuously sends a cosine signal over
500 KHz, while the sampling rate of the receiver is 1 MHz" (Sec. 4).
:class:`BasebandSignal` is a thin, validated wrapper around a complex
sample array with its sample rate, plus the handful of operations the
measurement pipeline needs (power, scaling, slicing, noise addition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.units import db_to_amplitude, dbm_to_milliwatts, milliwatts_to_dbm


@dataclass(frozen=True)
class BasebandSignal:
    """A complex baseband sample stream.

    Attributes
    ----------
    samples:
        Complex samples; the amplitude convention is such that
        ``mean(|x|^2)`` is the signal power in milliwatts.
    sample_rate_hz:
        Sampling rate.
    """

    samples: np.ndarray
    sample_rate_hz: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError("samples must be a 1-D array")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def duration_s(self) -> float:
        """Signal duration in seconds."""
        return self.samples.size / self.sample_rate_hz

    @property
    def timestamps_s(self) -> np.ndarray:
        """Per-sample timestamps starting at zero."""
        return np.arange(self.samples.size) / self.sample_rate_hz

    def power_mw(self) -> float:
        """Mean signal power in milliwatts."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def power_dbm(self) -> float:
        """Mean signal power in dBm."""
        return float(milliwatts_to_dbm(self.power_mw()))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled_to_power_dbm(self, target_power_dbm: float) -> "BasebandSignal":
        """Return a copy rescaled to a target mean power."""
        current = self.power_mw()
        if current <= 0:
            raise ValueError("cannot rescale a zero-power signal")
        target_mw = float(dbm_to_milliwatts(target_power_dbm))
        factor = math.sqrt(target_mw / current)
        return BasebandSignal(self.samples * factor, self.sample_rate_hz)

    def attenuated_db(self, loss_db: float) -> "BasebandSignal":
        """Return a copy attenuated by ``loss_db`` (negative values amplify)."""
        factor = float(db_to_amplitude(-loss_db))
        return BasebandSignal(self.samples * factor, self.sample_rate_hz)

    def with_noise(self, noise_power_dbm: float,
                   rng: Optional[np.random.Generator] = None) -> "BasebandSignal":
        """Return a copy with complex AWGN of the given power added."""
        rng = rng if rng is not None else np.random.default_rng(0)
        noise_mw = float(dbm_to_milliwatts(noise_power_dbm))
        scale = math.sqrt(noise_mw / 2.0)
        noise = (rng.normal(0.0, scale, self.samples.size) +
                 1j * rng.normal(0.0, scale, self.samples.size))
        return BasebandSignal(self.samples + noise, self.sample_rate_hz)

    def segment(self, start_s: float, duration_s: float) -> "BasebandSignal":
        """Extract a time slice of the signal."""
        if start_s < 0 or duration_s <= 0:
            raise ValueError("start must be >= 0 and duration > 0")
        start = int(round(start_s * self.sample_rate_hz))
        count = int(round(duration_s * self.sample_rate_hz))
        if start >= self.samples.size:
            raise ValueError("segment starts beyond the end of the signal")
        return BasebandSignal(self.samples[start:start + count],
                              self.sample_rate_hz)


def cosine_tone(frequency_hz: float = 500e3,
                sample_rate_hz: float = 1e6,
                duration_s: float = 0.01,
                power_dbm: float = 0.0,
                phase_rad: float = 0.0) -> BasebandSignal:
    """The paper's continuously transmitted cosine tone.

    Parameters mirror the experimental setup of Sec. 4: a 500 kHz tone
    observed at a 1 MHz sampling rate.
    """
    if frequency_hz <= 0 or sample_rate_hz <= 0 or duration_s <= 0:
        raise ValueError("frequency, sample rate and duration must be positive")
    # The signal is complex baseband, so the unambiguous band is
    # [-fs/2, +fs/2]; the paper's 500 kHz tone at 1 MS/s sits exactly on
    # that edge and is still representable.
    if frequency_hz > sample_rate_hz / 2.0:
        raise ValueError("tone frequency must respect the Nyquist limit")
    count = int(round(duration_s * sample_rate_hz))
    timestamps = np.arange(count) / sample_rate_hz
    amplitude = math.sqrt(float(dbm_to_milliwatts(power_dbm)))
    samples = amplitude * np.exp(
        1j * (2.0 * math.pi * frequency_hz * timestamps + phase_rad))
    return BasebandSignal(samples, sample_rate_hz)


__all__ = ["BasebandSignal", "cosine_tone"]
