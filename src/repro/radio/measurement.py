"""Power-measurement utilities (RSSI traces, averages, histograms).

These helpers turn raw sample streams or per-probe power readings into
the aggregates the paper reports: 30-second averaged baselines,
received-power time traces (Fig. 23) and RSSI probability-density
histograms (Figs. 2 and 20).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.radio.signal import BasebandSignal
from repro.units import dbm_to_milliwatts, milliwatts_to_dbm


@dataclass(frozen=True)
class PowerMeasurement:
    """Summary statistics of a set of power readings (dBm domain)."""

    mean_dbm: float
    median_dbm: float
    std_db: float
    minimum_dbm: float
    maximum_dbm: float
    sample_count: int

    @staticmethod
    def from_readings(readings_dbm: Sequence[float]) -> "PowerMeasurement":
        """Build summary statistics from individual dBm readings."""
        readings = np.asarray(readings_dbm, dtype=float)
        if readings.size == 0:
            raise ValueError("need at least one reading")
        return PowerMeasurement(
            mean_dbm=float(np.mean(readings)),
            median_dbm=float(np.median(readings)),
            std_db=float(np.std(readings)),
            minimum_dbm=float(np.min(readings)),
            maximum_dbm=float(np.max(readings)),
            sample_count=int(readings.size),
        )

    @property
    def spread_db(self) -> float:
        """Max-minus-min spread of the readings."""
        return self.maximum_dbm - self.minimum_dbm


def average_power_dbm(readings_dbm: Sequence[float]) -> float:
    """Average power readings in the *linear* domain, returned in dBm.

    Averaging dBm values directly underestimates the mean power; the
    paper's 30-second baselines average the received samples (linear)
    before conversion, so we do the same.
    """
    readings = np.asarray(readings_dbm, dtype=float)
    if readings.size == 0:
        raise ValueError("need at least one reading")
    linear = dbm_to_milliwatts(readings)
    return float(milliwatts_to_dbm(np.mean(linear)))


def power_trace_dbm(signal: BasebandSignal,
                    window_s: float = 0.05) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding (non-overlapping) windowed power trace of a capture.

    Returns ``(timestamps_s, powers_dbm)`` — the representation used by
    the respiration-sensing figure (Fig. 23).
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    window = max(1, int(round(window_s * signal.sample_rate_hz)))
    sample_count = len(signal)
    if sample_count == 0:
        raise ValueError("signal is empty")
    window_count = max(1, sample_count // window)
    timestamps = []
    powers = []
    for index in range(window_count):
        chunk = signal.samples[index * window:(index + 1) * window]
        power_mw = float(np.mean(np.abs(chunk) ** 2))
        timestamps.append((index + 0.5) * window / signal.sample_rate_hz)
        powers.append(float(milliwatts_to_dbm(power_mw)))
    return np.asarray(timestamps), np.asarray(powers)


def rssi_histogram(readings_dbm: Sequence[float],
                   bin_width_db: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Probability-density histogram of RSSI readings.

    Returns ``(bin_centers_dbm, probability_percent)`` matching the PDF
    plots of Figs. 2 and 20 (probabilities are percentages summing to
    100).
    """
    readings = np.asarray(readings_dbm, dtype=float)
    if readings.size == 0:
        raise ValueError("need at least one reading")
    if bin_width_db <= 0:
        raise ValueError("bin width must be positive")
    low = math.floor(readings.min() / bin_width_db) * bin_width_db
    high = math.ceil(readings.max() / bin_width_db) * bin_width_db
    if high <= low:
        high = low + bin_width_db
    edges = np.arange(low, high + bin_width_db, bin_width_db)
    counts, edges = np.histogram(readings, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    probability = 100.0 * counts / counts.sum()
    return centers, probability


def distribution_overlap_fraction(first_dbm: Sequence[float],
                                  second_dbm: Sequence[float],
                                  bin_width_db: float = 1.0) -> float:
    """Fraction of probability mass shared by two RSSI distributions.

    Used by tests/benchmarks to quantify how separated the matched and
    mismatched (or with/without-surface) distributions are; the paper's
    Fig. 2 distributions are nearly disjoint.
    """
    first = np.asarray(first_dbm, dtype=float)
    second = np.asarray(second_dbm, dtype=float)
    if first.size == 0 or second.size == 0:
        raise ValueError("need readings in both sets")
    low = min(first.min(), second.min())
    high = max(first.max(), second.max())
    edges = np.arange(math.floor(low), math.ceil(high) + bin_width_db,
                      bin_width_db)
    hist_first, _ = np.histogram(first, bins=edges, density=False)
    hist_second, _ = np.histogram(second, bins=edges, density=False)
    pdf_first = hist_first / max(hist_first.sum(), 1)
    pdf_second = hist_second / max(hist_second.sum(), 1)
    return float(np.minimum(pdf_first, pdf_second).sum())


__all__ = [
    "PowerMeasurement",
    "average_power_dbm",
    "power_trace_dbm",
    "rssi_histogram",
    "distribution_overlap_fraction",
]
