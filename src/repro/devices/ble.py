"""Bluetooth Low Energy endpoint models (paper Fig. 2b).

The paper's BLE experiment pairs a MetaMotionR wearable sensor with a
Raspberry Pi 3 and shows the same ~10 dB polarization-mismatch penalty
as Wi-Fi.  Sec. 5.1.2 additionally cautions that LLAMA may help little
for BLE *transmitters* because their radiated power (~0 dBm) falls below
the ~2 mW threshold where the surface's insertion loss outweighs its
rotation gain in multipath environments — the models here carry the
transmit powers needed to reproduce that argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.channel.antenna import dipole_antenna
from repro.devices.base import IoTDevice, RadioTechnology

ArrayLike = Union[float, np.ndarray]

#: BLE 1M PHY application-level rate vs RSSI (dBm -> kbit/s), a coarse
#: model of connection-interval throttling as the link degrades.
BLE_RATE_TABLE = (
    (-96.0, 20.0),
    (-92.0, 100.0),
    (-86.0, 300.0),
    (-80.0, 500.0),
    (-70.0, 700.0),
)


@dataclass(frozen=True)
class BlePeripheral(IoTDevice):
    """A BLE peripheral (sensor/wearable)."""

    connection_interval_ms: float = 30.0


@dataclass(frozen=True)
class BleCentral(IoTDevice):
    """A BLE central (hub / single-board computer)."""

    scan_window_ms: float = 30.0


def metamotion_wearable(orientation_deg: float = 0.0) -> BlePeripheral:
    """The MetaMotionR wearable sensor used in the paper."""
    return BlePeripheral(
        name="MetaMotionR wearable",
        technology=RadioTechnology.BLE,
        tx_power_dbm=0.0,
        rx_sensitivity_dbm=-94.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=0.0, name="wearable chip antenna",
                               cross_pol_isolation_db=10.0),
        frequency_hz=2.44e9,
        channel_bandwidth_hz=2e6,
        unit_cost_usd=60.0,
        connection_interval_ms=30.0,
    )


def raspberry_pi_central(orientation_deg: float = 0.0) -> BleCentral:
    """The Raspberry Pi 3 BLE central used in the paper."""
    return BleCentral(
        name="Raspberry Pi 3",
        technology=RadioTechnology.BLE,
        tx_power_dbm=4.0,
        rx_sensitivity_dbm=-92.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=1.0, name="Pi chip antenna",
                               cross_pol_isolation_db=12.0),
        frequency_hz=2.44e9,
        channel_bandwidth_hz=2e6,
        unit_cost_usd=35.0,
        scan_window_ms=30.0,
    )


def ble_rate_for_rssi_kbps(rssi_dbm: ArrayLike) -> ArrayLike:
    """Achievable BLE application throughput (kbit/s) at a given RSSI."""
    rssi = np.asarray(rssi_dbm, dtype=float)
    rates = np.zeros_like(rssi)
    for threshold_dbm, rate_kbps in BLE_RATE_TABLE:
        rates = np.where(rssi >= threshold_dbm, rate_kbps, rates)
    if np.isscalar(rssi_dbm):
        return float(rates)
    return rates


__all__ = [
    "BLE_RATE_TABLE",
    "BlePeripheral",
    "BleCentral",
    "metamotion_wearable",
    "raspberry_pi_central",
    "ble_rate_for_rssi_kbps",
]
