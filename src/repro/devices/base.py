"""Base IoT device model.

A device is an antenna plus a radio: it has a transmit power, a receiver
sensitivity, an operating band and a (cheap, linearly polarized) antenna
whose orientation is whatever the end user happened to deploy — which is
precisely the problem LLAMA addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.channel.antenna import Antenna, dipole_antenna
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ


class RadioTechnology(Enum):
    """Radio technology of an IoT endpoint."""

    WIFI_802_11G = "802.11g"
    BLE = "Bluetooth Low Energy"
    ZIGBEE = "Zigbee (802.15.4)"
    SDR = "software-defined radio"


@dataclass(frozen=True)
class IoTDevice:
    """A low-cost IoT endpoint.

    Attributes
    ----------
    name:
        Device name for reporting.
    technology:
        Radio technology.
    tx_power_dbm:
        Transmit power at the antenna port.
    rx_sensitivity_dbm:
        Minimum RSSI at which the radio still decodes its base rate.
    antenna:
        The device antenna; orientation encodes how the user deployed it.
    frequency_hz:
        Operating carrier frequency.
    channel_bandwidth_hz:
        Occupied channel bandwidth (used for noise/capacity estimates).
    unit_cost_usd:
        Bill-of-materials cost, for the paper's cost framing.
    """

    name: str
    technology: RadioTechnology
    tx_power_dbm: float
    rx_sensitivity_dbm: float
    antenna: Antenna
    frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    channel_bandwidth_hz: float = 20e6
    unit_cost_usd: float = 5.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.channel_bandwidth_hz <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.rx_sensitivity_dbm >= 0:
            raise ValueError("receiver sensitivity should be negative dBm")

    def with_antenna_orientation(self, orientation_deg: float) -> "IoTDevice":
        """Return a copy with the antenna rotated to a new orientation."""
        return replace(self, antenna=self.antenna.rotated(orientation_deg))

    def link_margin_db(self, received_power_dbm: float) -> float:
        """Margin above the receiver sensitivity (negative = link down)."""
        return received_power_dbm - self.rx_sensitivity_dbm

    def can_decode(self, received_power_dbm: float) -> bool:
        """Whether the radio can decode at the given received power."""
        return self.link_margin_db(received_power_dbm) >= 0.0


def generic_iot_device(name: str = "generic IoT node",
                       orientation_deg: float = 0.0,
                       tx_power_dbm: float = 10.0) -> IoTDevice:
    """A generic cheap 2.4 GHz node with a single dipole antenna."""
    return IoTDevice(
        name=name,
        technology=RadioTechnology.WIFI_802_11G,
        tx_power_dbm=tx_power_dbm,
        rx_sensitivity_dbm=-90.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg, name=name),
    )


__all__ = ["RadioTechnology", "IoTDevice", "generic_iot_device"]
