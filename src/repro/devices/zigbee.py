"""Zigbee (IEEE 802.15.4) endpoint model.

The paper repeatedly names Zigbee alongside Wi-Fi and BLE as a protocol
LLAMA can help (Secs. 5.1.2 and 5.1.3) without evaluating it directly;
the model here lets the examples and benchmarks extend the IoT-device
experiment to a third protocol class with representative parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.channel.antenna import dipole_antenna
from repro.devices.base import IoTDevice, RadioTechnology

ArrayLike = Union[float, np.ndarray]

#: 802.15.4 effective application rate vs RSSI (dBm -> kbit/s); the PHY
#: rate is a flat 250 kbit/s but retransmissions erode goodput as RSSI
#: approaches the sensitivity floor.
ZIGBEE_RATE_TABLE = (
    (-95.0, 25.0),
    (-92.0, 80.0),
    (-88.0, 150.0),
    (-84.0, 200.0),
    (-78.0, 250.0),
)


@dataclass(frozen=True)
class ZigbeeEndpoint(IoTDevice):
    """A Zigbee sensor/actuator node."""

    duty_cycle: float = 0.01


def zigbee_sensor(orientation_deg: float = 0.0) -> ZigbeeEndpoint:
    """A representative battery-powered Zigbee sensor node."""
    return ZigbeeEndpoint(
        name="Zigbee sensor node",
        technology=RadioTechnology.ZIGBEE,
        tx_power_dbm=3.0,
        rx_sensitivity_dbm=-95.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=0.5, name="Zigbee whip antenna",
                               cross_pol_isolation_db=11.0),
        frequency_hz=2.44e9,
        channel_bandwidth_hz=2e6,
        unit_cost_usd=8.0,
        duty_cycle=0.01,
    )


def zigbee_coordinator(orientation_deg: float = 0.0) -> ZigbeeEndpoint:
    """A mains-powered Zigbee coordinator (smart-home hub)."""
    return ZigbeeEndpoint(
        name="Zigbee coordinator hub",
        technology=RadioTechnology.ZIGBEE,
        tx_power_dbm=8.0,
        rx_sensitivity_dbm=-97.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=2.0, name="hub PCB antenna",
                               cross_pol_isolation_db=13.0),
        frequency_hz=2.44e9,
        channel_bandwidth_hz=2e6,
        unit_cost_usd=25.0,
        duty_cycle=1.0,
    )


def zigbee_rate_for_rssi_kbps(rssi_dbm: ArrayLike) -> ArrayLike:
    """Achievable Zigbee goodput (kbit/s) at a given RSSI."""
    rssi = np.asarray(rssi_dbm, dtype=float)
    rates = np.zeros_like(rssi)
    for threshold_dbm, rate_kbps in ZIGBEE_RATE_TABLE:
        rates = np.where(rssi >= threshold_dbm, rate_kbps, rates)
    if np.isscalar(rssi_dbm):
        return float(rates)
    return rates


__all__ = [
    "ZIGBEE_RATE_TABLE",
    "ZigbeeEndpoint",
    "zigbee_coordinator",
    "zigbee_sensor",
    "zigbee_rate_for_rssi_kbps",
]
