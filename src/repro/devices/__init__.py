"""IoT endpoint device models.

The paper evaluates LLAMA against commodity links: an ESP8266-based
Arduino talking 802.11g to a Netgear AP (Figs. 2a and 20), a BLE
wearable (MetaMotionR) talking to a Raspberry Pi 3 (Fig. 2b), and
mentions Zigbee as another beneficiary.  These models capture what
matters for the reproduction: the transmit power, antenna quality and
the RSSI -> data-rate behaviour of each radio, so the benchmarks can
translate link-power improvements into the throughput terms the paper
discusses.
"""

from repro.devices.base import IoTDevice, RadioTechnology
from repro.devices.wifi import (
    WiFiAccessPoint,
    WiFiStation,
    esp8266_station,
    netgear_access_point,
    wifi_rate_for_rssi_mbps,
)
from repro.devices.ble import (
    BlePeripheral,
    BleCentral,
    metamotion_wearable,
    raspberry_pi_central,
    ble_rate_for_rssi_kbps,
)
from repro.devices.zigbee import (
    ZigbeeEndpoint,
    zigbee_coordinator,
    zigbee_sensor,
    zigbee_rate_for_rssi_kbps,
)

__all__ = [
    "IoTDevice",
    "RadioTechnology",
    "WiFiAccessPoint",
    "WiFiStation",
    "esp8266_station",
    "netgear_access_point",
    "wifi_rate_for_rssi_mbps",
    "BlePeripheral",
    "BleCentral",
    "metamotion_wearable",
    "raspberry_pi_central",
    "ble_rate_for_rssi_kbps",
    "ZigbeeEndpoint",
    "zigbee_coordinator",
    "zigbee_sensor",
    "zigbee_rate_for_rssi_kbps",
]
