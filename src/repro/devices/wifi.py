"""Wi-Fi endpoint models (paper Figs. 2a and 20).

The paper's commodity Wi-Fi experiments pair a Netgear N300 access point
with a cheap ESP8266-based Arduino board over 802.11g.  For the
reproduction the relevant behaviour is:

* the station's single low-quality dipole antenna (the polarization-
  mismatch victim),
* the transmit powers of the two ends,
* the mapping from RSSI to the achievable 802.11g data rate, so that a
  10-15 dB RSSI improvement can be translated into the throughput terms
  the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.channel.antenna import dipole_antenna
from repro.devices.base import IoTDevice, RadioTechnology

ArrayLike = Union[float, np.ndarray]

#: 802.11g rate set and the approximate minimum RSSI needed to sustain
#: each rate with a commodity receiver (dBm -> Mbit/s).
WIFI_80211G_RATE_TABLE = (
    (-92.0, 1.0),
    (-90.0, 6.0),
    (-88.0, 9.0),
    (-86.0, 12.0),
    (-83.0, 18.0),
    (-80.0, 24.0),
    (-76.0, 36.0),
    (-71.0, 48.0),
    (-66.0, 54.0),
)


@dataclass(frozen=True)
class WiFiAccessPoint(IoTDevice):
    """A commodity 802.11g/n access point."""

    max_phy_rate_mbps: float = 340.0


@dataclass(frozen=True)
class WiFiStation(IoTDevice):
    """A low-cost Wi-Fi station (single-antenna SoC module)."""

    max_phy_rate_mbps: float = 54.0


def netgear_access_point(orientation_deg: float = 0.0) -> WiFiAccessPoint:
    """The Netgear N300-class AP used in the paper's experiments."""
    return WiFiAccessPoint(
        name="Netgear N300 AP",
        technology=RadioTechnology.WIFI_802_11G,
        tx_power_dbm=20.0,
        rx_sensitivity_dbm=-92.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=3.0, name="AP dipole"),
        channel_bandwidth_hz=20e6,
        unit_cost_usd=40.0,
        max_phy_rate_mbps=340.0,
    )


def esp8266_station(orientation_deg: float = 0.0) -> WiFiStation:
    """The cheap ESP8266-based Arduino board used in the paper."""
    return WiFiStation(
        name="ESP8266 Arduino",
        technology=RadioTechnology.WIFI_802_11G,
        tx_power_dbm=14.0,
        rx_sensitivity_dbm=-91.0,
        antenna=dipole_antenna(orientation_deg=orientation_deg,
                               gain_dbi=1.0, name="ESP8266 PCB antenna",
                               cross_pol_isolation_db=12.0),
        channel_bandwidth_hz=20e6,
        unit_cost_usd=4.0,
        max_phy_rate_mbps=54.0,
    )


def wifi_rate_for_rssi_mbps(rssi_dbm: ArrayLike) -> ArrayLike:
    """Achievable 802.11g PHY rate (Mbit/s) at a given RSSI.

    Below the sensitivity of the lowest rate the link is down (0 Mbit/s).
    """
    rssi = np.asarray(rssi_dbm, dtype=float)
    rates = np.zeros_like(rssi)
    for threshold_dbm, rate_mbps in WIFI_80211G_RATE_TABLE:
        rates = np.where(rssi >= threshold_dbm, rate_mbps, rates)
    if np.isscalar(rssi_dbm):
        return float(rates)
    return rates


def wifi_throughput_gain_mbps(rssi_without_dbm: float,
                              rssi_with_dbm: float) -> float:
    """PHY-rate improvement unlocked by an RSSI improvement."""
    return float(wifi_rate_for_rssi_mbps(rssi_with_dbm) -
                 wifi_rate_for_rssi_mbps(rssi_without_dbm))


__all__ = [
    "WIFI_80211G_RATE_TABLE",
    "WiFiAccessPoint",
    "WiFiStation",
    "netgear_access_point",
    "esp8266_station",
    "wifi_rate_for_rssi_mbps",
    "wifi_throughput_gain_mbps",
]
