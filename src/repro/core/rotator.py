"""Stateful programmable-rotator abstraction.

:class:`~repro.metasurface.surface.Metasurface` is a pure (stateless)
physical model; the running system, however, has *one current* pair of
bias voltages set by the power supply.  :class:`ProgrammableRotator`
holds that state, applies quantisation and slew behaviour of the bias
chain, and exposes the realised rotation/response at the current
operating point.  It is the object the controller and the LLAMA system
drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.constants import (
    BIAS_VOLTAGE_MAX_V,
    BIAS_VOLTAGE_MIN_V,
    DEFAULT_CENTER_FREQUENCY_HZ,
)
from repro.core.jones import JonesMatrix
from repro.metasurface.surface import Metasurface, SurfaceMode, SurfaceResponse


@dataclass(frozen=True)
class RotatorConfig:
    """Configuration of the bias chain driving the rotator.

    Attributes
    ----------
    voltage_resolution_v:
        Quantisation step of the programmable supply output (the paper
        sweeps in 1 V steps).
    min_voltage_v, max_voltage_v:
        Allowed bias range (paper: 0-30 V).
    settle_time_s:
        Time for the varactor bias network to settle after a voltage
        change; bounded by the supply's 50 Hz switching rate.
    default_frequency_hz:
        Frequency used when callers do not specify one.
    """

    voltage_resolution_v: float = 1.0
    min_voltage_v: float = BIAS_VOLTAGE_MIN_V
    max_voltage_v: float = BIAS_VOLTAGE_MAX_V
    settle_time_s: float = 0.02
    default_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.voltage_resolution_v <= 0:
            raise ValueError("voltage resolution must be positive")
        if self.max_voltage_v <= self.min_voltage_v:
            raise ValueError("max voltage must exceed min voltage")
        if self.settle_time_s < 0:
            raise ValueError("settle time must be non-negative")

    def quantize(self, voltage_v: float) -> float:
        """Clamp and quantise a requested bias voltage."""
        clamped = min(max(voltage_v, self.min_voltage_v), self.max_voltage_v)
        steps = round((clamped - self.min_voltage_v) / self.voltage_resolution_v)
        return self.min_voltage_v + steps * self.voltage_resolution_v


class ProgrammableRotator:
    """The metasurface plus its current bias state.

    Parameters
    ----------
    metasurface:
        The physical surface model.
    config:
        Bias-chain configuration.
    mode:
        Transmissive or reflective deployment.
    """

    def __init__(self, metasurface: Metasurface,
                 config: Optional[RotatorConfig] = None,
                 mode: SurfaceMode = SurfaceMode.TRANSMISSIVE):
        self.metasurface = metasurface
        self.config = config if config is not None else RotatorConfig()
        self.mode = mode
        self._vx = self.config.min_voltage_v
        self._vy = self.config.min_voltage_v
        self._switch_count = 0

    # ------------------------------------------------------------------ #
    # Bias state
    # ------------------------------------------------------------------ #
    @property
    def bias_voltages(self) -> Tuple[float, float]:
        """The current (Vx, Vy) bias pair."""
        return (self._vx, self._vy)

    @property
    def switch_count(self) -> int:
        """Number of bias changes applied so far (for sweep-cost metrics)."""
        return self._switch_count

    def set_bias_voltages(self, vx: float, vy: float) -> Tuple[float, float]:
        """Set the bias pair (after quantisation); returns the applied pair."""
        applied = (self.config.quantize(vx), self.config.quantize(vy))
        if applied != (self._vx, self._vy):
            self._switch_count += 1
        self._vx, self._vy = applied
        return applied

    def elapsed_switching_time_s(self) -> float:
        """Total time spent settling after bias changes."""
        return self._switch_count * self.config.settle_time_s

    # ------------------------------------------------------------------ #
    # Physical response at the current (or a probed) operating point
    # ------------------------------------------------------------------ #
    def rotation_angle_deg(self, frequency_hz: Optional[float] = None) -> float:
        """Polarization rotation realised at the current bias state."""
        frequency = frequency_hz or self.config.default_frequency_hz
        angle = self.metasurface.rotation_angle_deg(frequency, self._vx, self._vy)
        if self.mode is SurfaceMode.REFLECTIVE:
            # Round-trip polarization conversion angle (see Metasurface).
            angle *= 2.0 * self.metasurface.reflective_conversion_fraction
        return angle

    def jones_matrix(self, frequency_hz: Optional[float] = None) -> JonesMatrix:
        """Jones matrix applied to a wave at the current bias state."""
        frequency = frequency_hz or self.config.default_frequency_hz
        if self.mode is SurfaceMode.TRANSMISSIVE:
            return self.metasurface.jones_matrix(frequency, self._vx, self._vy)
        return self.metasurface.reflection_jones_matrix(frequency, self._vx,
                                                        self._vy)

    def response(self, frequency_hz: Optional[float] = None) -> SurfaceResponse:
        """Full surface response at the current bias state."""
        frequency = frequency_hz or self.config.default_frequency_hz
        return self.metasurface.response(frequency, self._vx, self._vy,
                                         mode=self.mode)

    def probe_rotation_deg(self, vx: float, vy: float,
                           frequency_hz: Optional[float] = None) -> float:
        """Rotation that *would* be realised at a hypothetical bias pair.

        Does not change the rotator state; used by planners/tests.
        """
        frequency = frequency_hz or self.config.default_frequency_hz
        return self.metasurface.rotation_angle_deg(
            frequency, self.config.quantize(vx), self.config.quantize(vy))


__all__ = ["ProgrammableRotator", "RotatorConfig"]
