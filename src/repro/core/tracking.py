"""Dynamic orientation tracking (paper Fig. 1 motivation).

Wearables and handled devices change antenna orientation continuously —
the paper's Fig. 1 shows a smartwatch swinging from aligned to orthogonal
as the user moves.  A one-shot optimization goes stale as soon as the
orientation drifts; this module adds the time dimension:

* :class:`OrientationTrajectory` — deterministic orientation-vs-time
  models (arm swing, slow drift, random walk);
* :class:`TrackingController` — re-runs the bias search periodically and
  holds the last optimum in between, accounting for the search's airtime
  cost (Algorithm 1 takes ~1 s at the supply's 50 Hz switching rate);
* :class:`TrackingReport` — time-averaged gain over the no-surface
  baseline, outage statistics and the static-optimization comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.backend import LinkBackend
from repro.channel.link import LinkConfiguration, WirelessLink
from repro.core.controller import CentralizedController, VoltageSweepConfig


class TraceTimestampError(ValueError):
    """A trace-driven run was handed a malformed time axis.

    Raised for empty, non-finite, duplicate or out-of-order timestamps.
    Interpolating against such an axis would not crash — NumPy happily
    mis-samples across a fold in time — so the tracking loop refuses it
    up front instead of producing silently wrong power traces.
    """


def validate_timestamps(times_s) -> np.ndarray:
    """Validate a trace time axis: finite and strictly increasing.

    Returns the timestamps as a float array.  Raises
    :class:`TraceTimestampError` on an empty axis, non-finite entries,
    duplicates or out-of-order entries — the malformed inputs a
    recorded mobility/rotation trace can carry.
    """
    times = np.atleast_1d(np.asarray(times_s, dtype=float))
    if times.ndim != 1:
        raise TraceTimestampError(
            f"timestamps must be one-dimensional, got shape {times.shape}")
    if times.size == 0:
        raise TraceTimestampError("timestamps must be non-empty")
    if not np.all(np.isfinite(times)):
        raise TraceTimestampError("timestamps must be finite")
    steps = np.diff(times)
    if np.any(steps == 0.0):
        at = float(times[int(np.argmin(steps != 0.0))]) if steps.size else 0.0
        raise TraceTimestampError(
            f"duplicate timestamp at t={at:g}s; trace samples must be "
            "strictly increasing")
    if np.any(steps < 0.0):
        raise TraceTimestampError(
            "timestamps are out of order; trace samples must be strictly "
            "increasing")
    return times


@dataclass(frozen=True)
class OrientationTrajectory:
    """Receiver antenna orientation as a function of time.

    Attributes
    ----------
    kind:
        ``"swing"`` (sinusoidal arm swing), ``"drift"`` (linear rotation)
        or ``"static"``.
    base_orientation_deg:
        Orientation at time zero.
    amplitude_deg:
        Peak deviation for the swing model.
    period_s:
        Swing period.
    drift_rate_deg_per_s:
        Rotation rate for the drift model.
    """

    kind: str = "swing"
    base_orientation_deg: float = 45.0
    amplitude_deg: float = 45.0
    period_s: float = 4.0
    drift_rate_deg_per_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in ("swing", "drift", "static"):
            raise ValueError("kind must be 'swing', 'drift' or 'static'")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.amplitude_deg < 0:
            raise ValueError("amplitude must be non-negative")

    def orientation_at(self, time_s: float) -> float:
        """Antenna orientation (degrees) at ``time_s``."""
        if self.kind == "static":
            return self.base_orientation_deg
        if self.kind == "drift":
            return (self.base_orientation_deg +
                    self.drift_rate_deg_per_s * time_s) % 180.0
        swing = self.amplitude_deg * math.sin(
            2.0 * math.pi * time_s / self.period_s)
        return (self.base_orientation_deg + swing) % 180.0

    @staticmethod
    def arm_swing(period_s: float = 4.0) -> "OrientationTrajectory":
        """The paper's Fig. 1 situation: a wrist swinging between aligned
        and orthogonal."""
        return OrientationTrajectory(kind="swing", base_orientation_deg=45.0,
                                     amplitude_deg=45.0, period_s=period_s)


@dataclass(frozen=True)
class TrackingSample:
    """One time step of a tracking run."""

    time_s: float
    orientation_deg: float
    bias_pair: Tuple[float, float]
    power_with_dbm: float
    power_without_dbm: float
    retuning: bool

    @property
    def gain_db(self) -> float:
        """Instantaneous improvement over the no-surface baseline."""
        return self.power_with_dbm - self.power_without_dbm


@dataclass(frozen=True)
class TrackingReport:
    """Aggregate outcome of a tracking run."""

    samples: Tuple[TrackingSample, ...]
    retune_count: int
    reoptimize_interval_s: float

    @property
    def mean_gain_db(self) -> float:
        """Time-averaged improvement over the no-surface baseline."""
        return float(np.mean([sample.gain_db for sample in self.samples]))

    @property
    def worst_gain_db(self) -> float:
        """Worst instantaneous improvement (can be negative when stale)."""
        return float(min(sample.gain_db for sample in self.samples))

    def outage_fraction(self, threshold_dbm: float) -> float:
        """Fraction of time the tracked link is below a power threshold."""
        below = [sample.power_with_dbm < threshold_dbm
                 for sample in self.samples]
        return float(np.mean(below))

    def baseline_outage_fraction(self, threshold_dbm: float) -> float:
        """Outage fraction of the no-surface baseline."""
        below = [sample.power_without_dbm < threshold_dbm
                 for sample in self.samples]
        return float(np.mean(below))


class TrackingController:
    """Periodically re-optimizes the surface as the endpoint rotates.

    Parameters
    ----------
    configuration:
        Link configuration whose receiver antenna follows the trajectory
        (its ``rx_antenna.orientation_deg`` is overridden per time step).
    trajectory:
        Orientation-vs-time model.
    reoptimize_interval_s:
        How often Algorithm 1 is re-run.  The search itself occupies
        ``search_duration_s`` during which the previous (stale) bias is
        still applied.
    sweep_config:
        Controller search parameters.
    """

    def __init__(self,
                 configuration: LinkConfiguration,
                 trajectory: OrientationTrajectory,
                 reoptimize_interval_s: float = 2.0,
                 search_duration_s: float = 1.0,
                 sweep_config: Optional[VoltageSweepConfig] = None):
        if configuration.metasurface is None:
            raise ValueError("tracking requires a metasurface in the link")
        if reoptimize_interval_s <= 0:
            raise ValueError("re-optimization interval must be positive")
        if search_duration_s < 0:
            raise ValueError("search duration must be non-negative")
        self.configuration = configuration
        self.trajectory = trajectory
        self.reoptimize_interval_s = reoptimize_interval_s
        self.search_duration_s = search_duration_s
        self.controller = CentralizedController(
            sweep_config if sweep_config is not None else
            VoltageSweepConfig(iterations=2, switches_per_axis=5))
        # The trajectory revisits orientations (periodic swings, slow
        # drifts), so rotated links — and their cached voltage-
        # independent fields — are built once per distinct angle and
        # reused across the whole run.
        self._links: Dict[float, WirelessLink] = {}
        self._base_link = WirelessLink(configuration)
        self._base_baseline = WirelessLink(configuration.without_surface())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _link_at(self, orientation_deg: float) -> WirelessLink:
        key = float(orientation_deg)
        if key not in self._links:
            rotated = self.configuration.rx_antenna.rotated(key)
            self._links[key] = WirelessLink(
                replace(self.configuration, rx_antenna=rotated))
        return self._links[key]

    def _baseline_at(self, orientation_deg: float) -> WirelessLink:
        return WirelessLink(
            replace(self.configuration, rx_antenna=self.configuration.
                    rx_antenna.rotated(orientation_deg)).without_surface())

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self, duration_s: float = 20.0,
            time_step_s: float = 0.25) -> TrackingReport:
        """Simulate the tracking loop over ``duration_s``.

        Only the re-optimization events are sequential (each bias search
        depends on the orientation at retune time); the per-sample power
        reads are batched afterwards as receiver-orientation sweeps —
        one vectorized pass per constant-bias segment for the tracked
        link and one for the whole baseline trace.
        """
        if duration_s <= 0 or time_step_s <= 0:
            raise ValueError("duration and time step must be positive")
        times = np.arange(0.0, duration_s, time_step_s)
        orientations = np.array([self.trajectory.orientation_at(float(t))
                                 for t in times])
        return self._run_on(times, orientations)

    def run_trace(self, times_s, orientations_deg=None) -> TrackingReport:
        """Run the tracking loop over an explicit (recorded) time axis.

        The trace-driven entry point: ``times_s`` is validated by
        :func:`validate_timestamps` — out-of-order or duplicate
        timestamps raise :class:`TraceTimestampError` instead of
        silently mis-sampling — and ``orientations_deg`` gives the
        receiver orientation at each timestamp.  When omitted, the
        controller's own trajectory is sampled at those times, and an
        object with a ``sample(times)`` method (a rotation trace from
        :mod:`repro.world.traces`) is sampled likewise.
        """
        times = validate_timestamps(times_s)
        if orientations_deg is None:
            orientations = np.array([self.trajectory.orientation_at(float(t))
                                     for t in times])
        elif hasattr(orientations_deg, "sample"):
            orientations = np.asarray(orientations_deg.sample(times),
                                      dtype=float)
        else:
            orientations = np.asarray(orientations_deg, dtype=float)
        if orientations.shape != times.shape:
            raise ValueError(
                f"orientations shape {orientations.shape} does not match "
                f"{times.size} timestamps")
        return self._run_on(times, orientations)

    def _run_on(self, times: np.ndarray,
                orientations: np.ndarray) -> TrackingReport:
        bias_pair = (0.0, 0.0)
        next_reoptimize_s = 0.0
        retune_count = 0
        # Sequential control pass: retune where due, and split the
        # timeline into constant-bias segments.
        bias_pairs: List[Tuple[float, float]] = []
        retuning_flags: List[bool] = []
        segments: List[Tuple[int, int, Tuple[float, float]]] = []
        segment_start = 0
        for index, time_s in enumerate(times):
            retuning = False
            if time_s >= next_reoptimize_s:
                link = self._link_at(orientations[index])
                sweep = self.controller.coarse_to_fine_sweep(LinkBackend(link))
                if index > segment_start:
                    segments.append((segment_start, index, bias_pair))
                    segment_start = index
                bias_pair = (sweep.best_vx, sweep.best_vy)
                next_reoptimize_s = time_s + self.reoptimize_interval_s
                retune_count += 1
                retuning = True
            bias_pairs.append(bias_pair)
            retuning_flags.append(retuning)
        segments.append((segment_start, len(times), bias_pair))
        # Batched measurement pass: one orientation sweep per segment
        # (tracked link) and one for the full baseline trace.
        powers_with = np.empty(len(times))
        for start, stop, (vx, vy) in segments:
            powers_with[start:stop] = self._base_link.received_power_dbm_sweep(
                "rx_orientation", orientations[start:stop], vx=vx, vy=vy)
        powers_without = self._base_baseline.received_power_dbm_sweep(
            "rx_orientation", orientations)
        samples = tuple(TrackingSample(
            time_s=float(time_s),
            orientation_deg=float(orientation),
            bias_pair=pair,
            power_with_dbm=float(power_with),
            power_without_dbm=float(power_without),
            retuning=retuning,
        ) for time_s, orientation, pair, power_with, power_without, retuning
            in zip(times, orientations, bias_pairs, powers_with,
                   powers_without, retuning_flags))
        return TrackingReport(samples=samples,
                              retune_count=retune_count,
                              reoptimize_interval_s=self.reoptimize_interval_s)

    def run_static(self, duration_s: float = 20.0,
                   time_step_s: float = 0.25) -> TrackingReport:
        """Optimize once at t = 0 and never retune (the stale baseline)."""
        tracker = TrackingController(
            configuration=self.configuration,
            trajectory=self.trajectory,
            reoptimize_interval_s=duration_s * 10.0,
            search_duration_s=self.search_duration_s,
            sweep_config=self.controller.config)
        return tracker.run(duration_s=duration_s, time_step_s=time_step_s)


__all__ = [
    "OrientationTrajectory",
    "TraceTimestampError",
    "TrackingSample",
    "TrackingReport",
    "TrackingController",
    "validate_timestamps",
]
