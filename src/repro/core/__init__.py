"""Core LLAMA contribution: Jones calculus, the programmable polarization
rotator, the real-time controller (Algorithm 1), receiver/supply
synchronization (Eq. 13), rotation-angle estimation (Sec. 3.4) and the
end-to-end :class:`~repro.core.llama.LlamaSystem` orchestration.
"""

from repro.core.jones import (
    JonesVector,
    JonesMatrix,
    rotation_matrix,
    quarter_wave_plate,
    birefringent_structure,
    polarization_rotator,
)
from repro.core.polarization import (
    PolarizationState,
    linear_polarization,
    circular_polarization,
    elliptical_polarization,
    polarization_loss_factor,
    polarization_mismatch_loss_db,
)
from repro.core.rotator import ProgrammableRotator, RotatorConfig
from repro.core.controller import (
    CentralizedController,
    GridSweepResult,
    MultiAxisSweepResult,
    SweepResult,
    VoltageSweepConfig,
)
from repro.core.synchronization import SampleVoltageSynchronizer, VoltageState
from repro.core.rotation_estimation import (
    RotationEstimate,
    RotationAngleEstimator,
)
from repro.core.llama import LlamaSystem, LlamaResult

__all__ = [
    "JonesVector",
    "JonesMatrix",
    "rotation_matrix",
    "quarter_wave_plate",
    "birefringent_structure",
    "polarization_rotator",
    "PolarizationState",
    "linear_polarization",
    "circular_polarization",
    "elliptical_polarization",
    "polarization_loss_factor",
    "polarization_mismatch_loss_db",
    "ProgrammableRotator",
    "RotatorConfig",
    "CentralizedController",
    "GridSweepResult",
    "MultiAxisSweepResult",
    "SweepResult",
    "VoltageSweepConfig",
    "SampleVoltageSynchronizer",
    "VoltageState",
    "RotationEstimate",
    "RotationAngleEstimator",
    "LlamaSystem",
    "LlamaResult",
]
