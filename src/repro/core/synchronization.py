"""Receiver / power-supply synchronization (paper Sec. 3.3, Eq. 13).

To attribute each received power sample to the bias voltages that were
active when it was captured, LLAMA exploits the fact that both the
receiver sampling rate and the supply's voltage switching rate are
constant: given the initial voltages, the per-step voltage increments,
the switch interval and the start-time offset between receiver and
supply, the bias state of any sample is

    ``V(t) = V_0 + (VD / Ts) * (t - td)``        (paper Eq. 13)

This module implements that labelling for linear ramps and for arbitrary
pre-programmed sweep sequences, plus the inverse mapping used when the
controller wants the samples belonging to one bias state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class VoltageState:
    """The bias pair attributed to one instant/sample."""

    vx: float
    vy: float
    step_index: int

    def as_tuple(self) -> Tuple[float, float]:
        """The (Vx, Vy) pair."""
        return (self.vx, self.vy)


@dataclass(frozen=True)
class SampleVoltageSynchronizer:
    """Labels received samples with the active bias voltages.

    Attributes
    ----------
    initial_vx, initial_vy:
        Voltages of the X and Y channels at supply time zero (``V_{x,0}``,
        ``V_{y,0}`` in Eq. 13).
    voltage_step_x, voltage_step_y:
        Voltage difference between two adjacent switch steps (``VD``).
    switch_interval_s:
        Time per voltage switch (``Ts``); the paper's supply switches at
        up to 50 Hz, i.e. 0.02 s.
    start_offset_s:
        Start-time difference between receiver and supply (``td``).
    """

    initial_vx: float
    initial_vy: float
    voltage_step_x: float
    voltage_step_y: float
    switch_interval_s: float = 0.02
    start_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.switch_interval_s <= 0:
            raise ValueError("switch interval must be positive")

    # ------------------------------------------------------------------ #
    # Forward mapping (Eq. 13)
    # ------------------------------------------------------------------ #
    def step_index_at(self, time_s: float) -> int:
        """Index of the voltage step active at receiver time ``time_s``."""
        elapsed = time_s - self.start_offset_s
        if elapsed < 0:
            return 0
        return int(math.floor(elapsed / self.switch_interval_s))

    def voltage_state_at(self, time_s: float) -> VoltageState:
        """Bias state active at receiver time ``time_s`` (paper Eq. 13).

        The paper's expression is continuous; physically the supply holds
        each level for one switch interval, so we evaluate the ramp at the
        step boundary the sample falls into.
        """
        step = self.step_index_at(time_s)
        return VoltageState(
            vx=self.initial_vx + self.voltage_step_x * step,
            vy=self.initial_vy + self.voltage_step_y * step,
            step_index=step,
        )

    def label_samples(self, sample_times_s: Sequence[float]) -> List[VoltageState]:
        """Label a sequence of receiver timestamps with bias states."""
        return [self.voltage_state_at(t) for t in sample_times_s]

    def label_uniform_samples(self, sample_count: int,
                              sample_rate_hz: float,
                              start_time_s: float = 0.0) -> List[VoltageState]:
        """Label ``sample_count`` samples captured at a fixed rate."""
        if sample_count < 0:
            raise ValueError("sample count must be non-negative")
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        times = start_time_s + np.arange(sample_count) / sample_rate_hz
        return self.label_samples(times.tolist())

    # ------------------------------------------------------------------ #
    # Inverse mapping
    # ------------------------------------------------------------------ #
    def time_window_for_step(self, step_index: int) -> Tuple[float, float]:
        """Receiver-time window during which a given step was active."""
        if step_index < 0:
            raise ValueError("step index must be non-negative")
        start = self.start_offset_s + step_index * self.switch_interval_s
        return (start, start + self.switch_interval_s)

    def samples_for_step(self, sample_times_s: Sequence[float],
                         step_index: int) -> List[int]:
        """Indices of the samples captured while ``step_index`` was active."""
        window_start, window_end = self.time_window_for_step(step_index)
        return [i for i, t in enumerate(sample_times_s)
                if window_start <= t < window_end]

    def samples_per_step(self, sample_rate_hz: float) -> float:
        """Expected number of receiver samples per voltage step."""
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        return sample_rate_hz * self.switch_interval_s


def group_power_by_state(states: Sequence[VoltageState],
                         powers_dbm: Sequence[float]) -> dict:
    """Average the received power for each distinct (Vx, Vy) pair.

    This is the aggregation the controller performs before picking the
    strongest bias pair.
    """
    if len(states) != len(powers_dbm):
        raise ValueError("states and powers must have the same length")
    sums: dict = {}
    counts: dict = {}
    for state, power in zip(states, powers_dbm):
        key = state.as_tuple()
        sums[key] = sums.get(key, 0.0) + power
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


__all__ = ["VoltageState", "SampleVoltageSynchronizer", "group_power_by_state"]
