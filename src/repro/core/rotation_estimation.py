"""Polarization-rotation-angle estimation (paper Sec. 3.4, Fig. 12).

The achieved rotation angle depends on the link (distance, incident
power), so LLAMA estimates it from power measurements rather than
assuming the simulated Table 1 values.  The procedure:

1. with the transmitter fixed, rotate the receiver to find the
   orientation ``theta_0`` of maximum power (polarization-aligned);
2. sweep the bias voltages and record the combinations giving the
   minimum (``V_min``) and maximum (``V_max``) received power;
3. at each of those two bias states, rotate the receiver through 180
   degrees again and find the new best orientations ``theta_min`` and
   ``theta_max``; the differences ``|theta_0 - theta_min|`` and
   ``|theta_0 - theta_max|`` are the minimum and maximum rotation angles
   the surface produces on this link.

The estimator talks to the world through an orientation-aware
measurement backend (see :mod:`repro.api.backend`): the voltage sweeps
of step 2 are issued as batched probes at a fixed orientation, and each
probed orientation's link is built once and cached (via
:class:`repro.api.OrientationBackend`) instead of being reconstructed
per probe.  Legacy ``measure(orientation_deg, vx, vy)`` callables are
still accepted (wrapped with a ``DeprecationWarning``), so recorded
traces and turntable hardware keep working.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.controller import CentralizedController, VoltageSweepConfig

OrientationMeasureCallback = Callable[[float, float, float], float]

#: Accepted everywhere the estimator measures: an orientation-aware
#: backend, or a legacy scalar callable (deprecated).
OrientationMeasureSource = Union["OrientationMeasurementBackend",
                                 OrientationMeasureCallback]


def _coerce_orientation_backend(measure):
    """Coerce a backend-or-callable argument, warning on the legacy path."""
    from repro.api.backend import as_orientation_backend
    backend = as_orientation_backend(measure)
    if backend is not measure:
        warnings.warn(
            "passing a bare measure(orientation_deg, vx, vy) callable to "
            "RotationAngleEstimator is deprecated; pass a "
            "repro.api.OrientationMeasurementBackend (e.g. OrientationBackend "
            "over a link, or CallableOrientationBackend to wrap this "
            "callable)",
            DeprecationWarning, stacklevel=3)
    return backend


@dataclass(frozen=True)
class RotationEstimate:
    """Result of the Sec. 3.4 estimation procedure."""

    reference_orientation_deg: float
    min_rotation_deg: float
    max_rotation_deg: float
    min_power_voltages: Tuple[float, float]
    max_power_voltages: Tuple[float, float]

    @property
    def rotation_span_deg(self) -> float:
        """Width of the achievable rotation range."""
        return self.max_rotation_deg - self.min_rotation_deg


def _orientation_difference_deg(angle_a: float, angle_b: float) -> float:
    """Smallest unsigned difference between two antenna orientations.

    Antenna polarization orientations repeat every 180 degrees.
    """
    difference = abs(angle_a - angle_b) % 180.0
    return min(difference, 180.0 - difference)


class RotationAngleEstimator:
    """Implements the three-step estimation procedure of paper Sec. 3.4."""

    def __init__(self,
                 sweep_config: Optional[VoltageSweepConfig] = None,
                 orientation_step_deg: float = 1.0,
                 reference_voltages: Tuple[float, float] = (0.0, 0.0)):
        if orientation_step_deg <= 0:
            raise ValueError("orientation step must be positive")
        self.controller = CentralizedController(sweep_config)
        self.orientation_step_deg = orientation_step_deg
        self.reference_voltages = reference_voltages

    # ------------------------------------------------------------------ #
    # Step helpers
    # ------------------------------------------------------------------ #
    def find_best_orientation(self, measure: OrientationMeasureSource,
                              vx: float, vy: float) -> float:
        """Rotate the receiver through 180 degrees; return the best angle."""
        backend = _coerce_orientation_backend(measure)
        orientations = np.arange(0.0, 180.0, self.orientation_step_deg)
        powers = [backend.measure(float(angle), vx, vy)
                  for angle in orientations]
        return float(orientations[int(np.argmax(powers))])

    def find_extreme_voltages(self, measure: OrientationMeasureSource,
                              orientation_deg: float,
                              exhaustive: bool = False,
                              step_v: float = 2.0) -> Tuple[Tuple[float, float],
                                                            Tuple[float, float]]:
        """Voltage pairs giving the minimum and maximum power (step 2).

        The voltage search runs against a fixed-orientation view of the
        backend, so the controller issues batched probes.
        """
        from repro.api.backend import FixedOrientationBackend
        backend = FixedOrientationBackend(_coerce_orientation_backend(measure),
                                          orientation_deg)
        result = self.controller.optimize(backend,
                                          exhaustive=exhaustive,
                                          step_v=step_v)
        samples = sorted(result.samples, key=lambda sample: sample.power_dbm)
        weakest = samples[0]
        strongest = samples[-1]
        return ((weakest.vx, weakest.vy), (strongest.vx, strongest.vy))

    # ------------------------------------------------------------------ #
    # Full procedure
    # ------------------------------------------------------------------ #
    def estimate(self, measure: OrientationMeasureSource,
                 exhaustive_voltage_sweep: bool = False) -> RotationEstimate:
        """Run steps 1-3 and return the rotation-angle estimate."""
        backend = _coerce_orientation_backend(measure)
        ref_vx, ref_vy = self.reference_voltages
        # Step 1: align the receiver with the incoming polarization.
        theta_0 = self.find_best_orientation(backend, ref_vx, ref_vy)
        # Step 2: find the bias pairs giving min and max power.
        v_min, v_max = self.find_extreme_voltages(
            backend, theta_0, exhaustive=exhaustive_voltage_sweep)
        # Step 3: re-align the receiver at each extreme bias pair.
        theta_min = self.find_best_orientation(backend, *v_min)
        theta_max = self.find_best_orientation(backend, *v_max)
        min_rotation = _orientation_difference_deg(theta_0, theta_min)
        max_rotation = _orientation_difference_deg(theta_0, theta_max)
        # The "minimum" bias pair may still rotate more than the
        # "maximum power" pair does; report the smaller/larger values.
        low, high = sorted((min_rotation, max_rotation))
        return RotationEstimate(
            reference_orientation_deg=theta_0,
            min_rotation_deg=low,
            max_rotation_deg=high,
            min_power_voltages=v_min,
            max_power_voltages=v_max,
        )


def power_slope_per_degree(orientations_deg: Sequence[float],
                           powers_linear: Sequence[float]) -> float:
    """Least-squares slope of linear received power vs orientation.

    Paper Fig. 12(a) observes that, before dBm conversion, received power
    falls approximately linearly with the Tx/Rx orientation difference;
    the slope calibrates power changes into rotation degrees at unknown
    distances.
    """
    orientations = np.asarray(orientations_deg, dtype=float)
    powers = np.asarray(powers_linear, dtype=float)
    if orientations.shape != powers.shape or orientations.size < 2:
        raise ValueError("need matching sequences of at least two points")
    slope, _intercept = np.polyfit(orientations, powers, 1)
    return float(slope)


__all__ = [
    "OrientationMeasureCallback",
    "OrientationMeasureSource",
    "RotationEstimate",
    "RotationAngleEstimator",
    "power_slope_per_degree",
]
