"""Polarization states and mismatch losses (paper Section 2).

The paper motivates LLAMA with the observation that a linearly polarized
IoT antenna loses essentially all signal when it becomes orthogonal to
the AP antenna, and ~3 dB against a circularly polarized antenna.  This
module provides a small vocabulary of polarization states built on top of
:mod:`repro.core.jones` and the *polarization loss factor* (PLF) used by
the channel model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional


from repro.core.jones import JonesVector
from repro.units import amplitude_to_db, db_to_linear, linear_to_db


class PolarizationKind(Enum):
    """Coarse classification of a polarization state."""

    LINEAR = "linear"
    CIRCULAR = "circular"
    ELLIPTICAL = "elliptical"


@dataclass(frozen=True)
class PolarizationState:
    """A named polarization state wrapping a normalized Jones vector.

    Attributes
    ----------
    jones:
        Unit-intensity Jones vector describing the state.
    label:
        Optional human-readable label (e.g. ``"AP antenna"``).
    """

    jones: JonesVector
    label: Optional[str] = None

    def __post_init__(self) -> None:
        normalized = self.jones.normalized()
        object.__setattr__(self, "jones", normalized)

    @property
    def kind(self) -> PolarizationKind:
        """Classify the state as linear, circular or elliptical."""
        ellipticity = abs(self.jones.ellipticity)
        if ellipticity < 1e-6:
            return PolarizationKind.LINEAR
        if abs(ellipticity - 1.0) < 1e-6:
            return PolarizationKind.CIRCULAR
        return PolarizationKind.ELLIPTICAL

    @property
    def orientation_deg(self) -> float:
        """Major-axis orientation of the polarization ellipse (degrees)."""
        return self.jones.orientation_deg

    @property
    def axial_ratio_db(self) -> float:
        """Axial ratio (major/minor axis) in dB; infinite for pure linear."""
        ellipticity = abs(self.jones.ellipticity)
        if ellipticity < 1e-12:
            return float("inf")
        # ellipticity = sin(2*chi); axial ratio = 1/tan(chi)
        chi = 0.5 * math.asin(min(ellipticity, 1.0))
        tan_chi = math.tan(chi)
        if tan_chi < 1e-12:
            return float("inf")
        return float(amplitude_to_db(1.0 / tan_chi))

    def rotated(self, angle_deg: float) -> "PolarizationState":
        """Return the state after a physical rotation of ``angle_deg``."""
        return PolarizationState(self.jones.rotated(angle_deg), self.label)

    def match_efficiency(self, other: "PolarizationState") -> float:
        """Polarization loss factor against another state, in [0, 1]."""
        return polarization_loss_factor(self, other)

    def mismatch_loss_db(self, other: "PolarizationState",
                         cross_pol_isolation_db: float = 30.0) -> float:
        """Loss in dB against another state; see
        :func:`polarization_mismatch_loss_db`."""
        return polarization_mismatch_loss_db(
            self, other, cross_pol_isolation_db=cross_pol_isolation_db)


def linear_polarization(angle_deg: float,
                        label: Optional[str] = None) -> PolarizationState:
    """Linear polarization oriented ``angle_deg`` from the x (horizontal) axis."""
    return PolarizationState(JonesVector.linear(angle_deg), label)


def horizontal_polarization(label: Optional[str] = None) -> PolarizationState:
    """Horizontal (x-axis) linear polarization."""
    return linear_polarization(0.0, label)


def vertical_polarization(label: Optional[str] = None) -> PolarizationState:
    """Vertical (y-axis) linear polarization."""
    return linear_polarization(90.0, label)


def circular_polarization(handedness: str = "right",
                          label: Optional[str] = None) -> PolarizationState:
    """Right- or left-hand circular polarization."""
    return PolarizationState(JonesVector.circular(handedness), label)


def elliptical_polarization(a: float, b: float,
                            label: Optional[str] = None) -> PolarizationState:
    """Elliptical polarization from the paper's Eq. 1 parameterisation."""
    if a == 0 and b == 0:
        raise ValueError("at least one of a, b must be non-zero")
    return PolarizationState(JonesVector.elliptical(a, b), label)


def polarization_loss_factor(transmit: PolarizationState,
                             receive: PolarizationState) -> float:
    """Polarization loss factor (PLF) between two states, in [0, 1].

    PLF is the fraction of incident power a receive antenna of
    polarization ``receive`` captures from a wave of polarization
    ``transmit``:  ``PLF = |<rx_hat | tx_hat>|^2``.

    * matched linear states: 1.0
    * orthogonal linear states: 0.0
    * linear vs circular: 0.5 (the paper's "theoretical 3 dB degradation")
    """
    overlap = receive.jones.inner_product(transmit.jones)
    return float(min(1.0, abs(overlap) ** 2))


def polarization_mismatch_loss_db(transmit: PolarizationState,
                                  receive: PolarizationState,
                                  cross_pol_isolation_db: float = 30.0) -> float:
    """Polarization mismatch loss in dB (a non-negative number).

    Real antennas never achieve infinite cross-polarization rejection: a
    nominally "orthogonal" pair still couples through the antenna's finite
    cross-polar isolation.  ``cross_pol_isolation_db`` caps the loss
    accordingly (default 30 dB, typical of cheap dipoles); pass
    ``math.inf`` for the ideal textbook behaviour.

    Returns
    -------
    float
        Loss in dB; 0 dB when perfectly matched.
    """
    if cross_pol_isolation_db < 0:
        raise ValueError("cross-pol isolation must be non-negative")
    plf = polarization_loss_factor(transmit, receive)
    floor = float(db_to_linear(-cross_pol_isolation_db)) if math.isfinite(
        cross_pol_isolation_db) else 0.0
    effective = max(plf, floor)
    if effective <= 0.0:
        return float("inf")
    return float(-linear_to_db(effective))


def mismatch_loss_for_angle_db(angle_difference_deg: float,
                               cross_pol_isolation_db: float = 30.0) -> float:
    """Mismatch loss between two linear antennas separated by an angle.

    Convenience wrapper implementing the classic ``cos^2`` law with a
    cross-polar floor; used heavily by the channel model and benchmarks.
    """
    tx = linear_polarization(0.0)
    rx = linear_polarization(angle_difference_deg)
    return polarization_mismatch_loss_db(
        tx, rx, cross_pol_isolation_db=cross_pol_isolation_db)


__all__ = [
    "PolarizationKind",
    "PolarizationState",
    "linear_polarization",
    "horizontal_polarization",
    "vertical_polarization",
    "circular_polarization",
    "elliptical_polarization",
    "polarization_loss_factor",
    "polarization_mismatch_loss_db",
    "mismatch_loss_for_angle_db",
]
