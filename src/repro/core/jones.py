"""Jones calculus primitives (paper Section 2, Equations 1-8).

The polarization state of a plane wave is a 2-component complex *Jones
vector*; optical/RF elements that manipulate polarization are 2x2 complex
*Jones matrices*.  LLAMA's polarization rotator is the cascade

    ``P = Q(+45deg) . B(delta) . Q(-45deg)``

of a tunable birefringent structure (BFS) between two quarter-wave plates
(QWP) rotated +/-45 degrees, which rotates any incident linear
polarization by ``delta / 2`` (Eq. 8).

This module implements those primitives exactly as written in the paper,
plus the standard algebra needed elsewhere (normalization, intensity,
rotation of elements, cascading of multiple surfaces per Eq. 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

ComplexLike = Union[complex, float, int]


def _require_shape(array: np.ndarray, shape: tuple, what: str) -> None:
    if array.shape != shape:
        raise ValueError(f"{what} must have shape {shape}, got {array.shape}")


@dataclass(frozen=True)
class JonesVector:
    """A 2x1 complex Jones vector ``[Ex, Ey]`` (paper Eq. 1).

    The vector describes the transverse electric field of a plane wave in
    a fixed x-y basis.  ``x`` and ``y`` are complex amplitudes; their
    relative phase determines linear / circular / elliptical polarization.
    """

    x: complex
    y: complex

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_array(values: Sequence[ComplexLike]) -> "JonesVector":
        """Build a Jones vector from a length-2 sequence."""
        arr = np.asarray(values, dtype=complex).reshape(-1)
        _require_shape(arr, (2,), "Jones vector")
        return JonesVector(complex(arr[0]), complex(arr[1]))

    @staticmethod
    def linear(angle_deg: float, amplitude: float = 1.0) -> "JonesVector":
        """Linearly polarized wave oriented ``angle_deg`` from the x axis."""
        angle = math.radians(angle_deg)
        return JonesVector(amplitude * math.cos(angle),
                           amplitude * math.sin(angle))

    @staticmethod
    def horizontal(amplitude: float = 1.0) -> "JonesVector":
        """x-polarized (horizontal) wave."""
        return JonesVector.linear(0.0, amplitude)

    @staticmethod
    def vertical(amplitude: float = 1.0) -> "JonesVector":
        """y-polarized (vertical) wave."""
        return JonesVector.linear(90.0, amplitude)

    @staticmethod
    def circular(handedness: str = "right", amplitude: float = 1.0) -> "JonesVector":
        """Circularly polarized wave.

        Parameters
        ----------
        handedness:
            ``"right"`` or ``"left"``.
        """
        if handedness not in ("right", "left"):
            raise ValueError("handedness must be 'right' or 'left'")
        sign = 1.0 if handedness == "right" else -1.0
        scale = amplitude / math.sqrt(2.0)
        return JonesVector(scale, sign * 1j * scale)

    @staticmethod
    def elliptical(a: float, b: float) -> "JonesVector":
        """Paper Eq. 1: ``[a, b e^{j pi/2}]`` with real amplitudes a, b."""
        return JonesVector(complex(a), b * np.exp(1j * math.pi / 2.0))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    def as_array(self) -> np.ndarray:
        """Return the vector as a NumPy column-compatible (2,) array."""
        return np.array([self.x, self.y], dtype=complex)

    @property
    def intensity(self) -> float:
        """Total power carried by the wave, ``|Ex|^2 + |Ey|^2``."""
        return float(abs(self.x) ** 2 + abs(self.y) ** 2)

    @property
    def amplitude(self) -> float:
        """Field amplitude, the square root of :attr:`intensity`."""
        return math.sqrt(self.intensity)

    def normalized(self) -> "JonesVector":
        """Return a unit-intensity copy of this vector.

        Raises
        ------
        ValueError
            If the vector has (numerically) zero intensity.
        """
        amp = self.amplitude
        if amp < 1e-15:
            raise ValueError("cannot normalize a zero Jones vector")
        return JonesVector(self.x / amp, self.y / amp)

    @property
    def orientation_deg(self) -> float:
        """Orientation of the polarization ellipse's major axis in degrees.

        For a purely linear state this is the usual polarization angle in
        [0, 180).  Uses the standard ellipse-orientation formula
        ``psi = 0.5 * atan2(2 Re(Ex conj(Ey)), |Ex|^2 - |Ey|^2)``.
        """
        sxx = abs(self.x) ** 2
        syy = abs(self.y) ** 2
        cross = 2.0 * (self.x * np.conj(self.y)).real
        psi = 0.5 * math.atan2(cross, sxx - syy)
        return math.degrees(psi) % 180.0

    @property
    def ellipticity(self) -> float:
        """Ellipticity ratio in [-1, 1]; 0 is linear, +/-1 is circular."""
        intensity = self.intensity
        if intensity < 1e-30:
            return 0.0
        s3 = 2.0 * (self.x * np.conj(self.y)).imag
        value = s3 / intensity
        return float(np.clip(value, -1.0, 1.0))

    def is_linear(self, tolerance: float = 1e-9) -> bool:
        """True when the state is (numerically) linearly polarized."""
        return abs(self.ellipticity) <= tolerance

    def is_circular(self, tolerance: float = 1e-9) -> bool:
        """True when the state is (numerically) circularly polarized."""
        return abs(abs(self.ellipticity) - 1.0) <= tolerance

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def inner_product(self, other: "JonesVector") -> complex:
        """Hermitian inner product ``<self | other>``."""
        return complex(np.vdot(self.as_array(), other.as_array()))

    def projection_power(self, analyzer: "JonesVector") -> float:
        """Power coupled into a (normalized) analyzer polarization.

        This is the physical quantity a linearly polarized receive antenna
        measures: ``|<analyzer_hat | self>|^2``.
        """
        analyzer_hat = analyzer.normalized()
        return float(abs(analyzer_hat.inner_product(self)) ** 2)

    def rotated(self, angle_deg: float) -> "JonesVector":
        """Return this vector expressed after a physical rotation by
        ``angle_deg`` (counter-clockwise)."""
        rotated = rotation_matrix(angle_deg).as_array() @ self.as_array()
        return JonesVector.from_array(rotated)

    def scaled(self, factor: ComplexLike) -> "JonesVector":
        """Return a copy scaled by a complex factor."""
        return JonesVector(self.x * factor, self.y * factor)

    def __add__(self, other: "JonesVector") -> "JonesVector":
        return JonesVector(self.x + other.x, self.y + other.y)

    def almost_equals(self, other: "JonesVector", tolerance: float = 1e-9) -> bool:
        """Element-wise comparison within an absolute tolerance."""
        return bool(np.allclose(self.as_array(), other.as_array(),
                                atol=tolerance, rtol=0.0))

    def same_state(self, other: "JonesVector", tolerance: float = 1e-9) -> bool:
        """True when both vectors describe the same *polarization state*
        (identical up to a global complex phase and amplitude)."""
        a = self.normalized().as_array()
        b = other.normalized().as_array()
        overlap = abs(np.vdot(a, b))
        return bool(abs(overlap - 1.0) <= tolerance)


@dataclass(frozen=True)
class JonesMatrix:
    """A 2x2 complex Jones matrix describing a polarization element."""

    elements: tuple

    def __init__(self, matrix: Union[np.ndarray, Sequence[Sequence[ComplexLike]]]):
        arr = np.asarray(matrix, dtype=complex)
        _require_shape(arr, (2, 2), "Jones matrix")
        object.__setattr__(self, "elements",
                           tuple(tuple(complex(v) for v in row) for row in arr))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def identity() -> "JonesMatrix":
        """The identity element (free-space propagation, no loss)."""
        return JonesMatrix(np.eye(2, dtype=complex))

    @staticmethod
    def attenuator(amplitude_factor: float) -> "JonesMatrix":
        """Isotropic amplitude attenuation (same for both axes)."""
        if amplitude_factor < 0:
            raise ValueError("amplitude factor must be non-negative")
        return JonesMatrix(np.eye(2, dtype=complex) * amplitude_factor)

    @staticmethod
    def linear_polarizer(angle_deg: float) -> "JonesMatrix":
        """Ideal linear polarizer transmitting the ``angle_deg`` component."""
        angle = math.radians(angle_deg)
        c, s = math.cos(angle), math.sin(angle)
        return JonesMatrix(np.array([[c * c, c * s], [c * s, s * s]],
                                    dtype=complex))

    @staticmethod
    def wave_plate(phase_delay_rad: float, common_phase_rad: float = 0.0) -> "JonesMatrix":
        """Retarder aligned with the x-y axes (paper Eq. 3 generalised).

        ``diag(1, e^{j phase_delay})`` with an overall phase factor.
        """
        matrix = np.array([[1.0, 0.0],
                           [0.0, np.exp(1j * phase_delay_rad)]], dtype=complex)
        return JonesMatrix(np.exp(1j * common_phase_rad) * matrix)

    # ------------------------------------------------------------------ #
    # Views / algebra
    # ------------------------------------------------------------------ #
    def as_array(self) -> np.ndarray:
        """Return the matrix as a (2, 2) complex ndarray."""
        return np.array(self.elements, dtype=complex)

    def apply(self, vector: JonesVector) -> JonesVector:
        """Apply this element to an incident Jones vector."""
        return JonesVector.from_array(self.as_array() @ vector.as_array())

    def compose(self, other: "JonesMatrix") -> "JonesMatrix":
        """Return the matrix for *this element applied after* ``other``."""
        return JonesMatrix(self.as_array() @ other.as_array())

    def __matmul__(self, other: "JonesMatrix") -> "JonesMatrix":
        return self.compose(other)

    def rotated(self, angle_deg: float) -> "JonesMatrix":
        """Rotate the element counter-clockwise by ``angle_deg``.

        Implements paper Eq. 4: ``M_theta = R(theta) M R(theta)^T``.
        """
        rot = rotation_matrix(angle_deg).as_array()
        return JonesMatrix(rot @ self.as_array() @ rot.T)

    def transmitted_power_fraction(self, vector: JonesVector) -> float:
        """Fraction of incident power that emerges from this element."""
        incident = vector.intensity
        if incident < 1e-30:
            return 0.0
        return self.apply(vector).intensity / incident

    @property
    def is_unitary(self) -> bool:
        """True when the element is lossless (within numerical tolerance)."""
        arr = self.as_array()
        return bool(np.allclose(arr.conj().T @ arr, np.eye(2), atol=1e-9))

    def almost_equals(self, other: "JonesMatrix", tolerance: float = 1e-9) -> bool:
        """Element-wise comparison within an absolute tolerance."""
        return bool(np.allclose(self.as_array(), other.as_array(),
                                atol=tolerance, rtol=0.0))


# ---------------------------------------------------------------------- #
# Elements used by the LLAMA rotator (paper Eqs. 3-8)
# ---------------------------------------------------------------------- #
def rotation_matrix(angle_deg: float) -> JonesMatrix:
    """Paper Eq. 4: the 2x2 rotation matrix ``R(theta)``."""
    theta = math.radians(angle_deg)
    c, s = math.cos(theta), math.sin(theta)
    return JonesMatrix(np.array([[c, -s], [s, c]], dtype=complex))


def quarter_wave_plate(rotation_deg: float,
                       common_phase_rad: float = 0.0) -> JonesMatrix:
    """A quarter-wave plate rotated by ``rotation_deg`` (paper Eqs. 5-6).

    Rotation of an element follows paper Eq. 4,
    ``M_theta = R(theta) M R(theta)^T`` with ``M = diag(1, e^{j pi/2})``.
    With the two QWPs at +/-45 degrees around the BFS this cascade is, up
    to a global phase, a pure rotation by half the BFS phase difference
    (paper Eq. 8) — verified in the test suite.
    """
    base = JonesMatrix.wave_plate(math.pi / 2.0, common_phase_rad)
    rot = rotation_matrix(rotation_deg).as_array()
    return JonesMatrix(rot @ base.as_array() @ rot.T)


def birefringent_structure(phase_difference_rad: float,
                           common_phase_rad: float = 0.0) -> JonesMatrix:
    """The tunable birefringent structure (paper Eq. 7).

    ``B = e^{j beta} diag(1, e^{j delta})`` where ``delta`` is the
    transmission-phase difference between the X and Y axes set by the bias
    voltages.
    """
    return JonesMatrix.wave_plate(phase_difference_rad, common_phase_rad)


def polarization_rotator(phase_difference_rad: float,
                         qwp_common_phase_rad: float = 0.0,
                         bfs_common_phase_rad: float = 0.0) -> JonesMatrix:
    """The full LLAMA rotator ``P = Q(+45) B Q(-45)`` (paper Eq. 8).

    The cascade is, up to a global phase, a pure rotation matrix whose
    angle has magnitude ``|delta| / 2``: it rotates any incident
    polarization by half the BFS phase difference.  The sense of the
    rotation follows the sign convention of ``delta`` (a positive BFS
    phase difference yields a clockwise rotation in our axis convention).
    """
    q_plus = quarter_wave_plate(+45.0, qwp_common_phase_rad)
    q_minus = quarter_wave_plate(-45.0, qwp_common_phase_rad)
    bfs = birefringent_structure(phase_difference_rad, bfs_common_phase_rad)
    return q_plus @ bfs @ q_minus


def cascade(elements: Iterable[JonesMatrix]) -> JonesMatrix:
    """Cascade several surfaces (paper Eq. 2): ``M_N ... M_2 M_1``.

    ``elements`` are given in the order the wave encounters them; the
    returned matrix applies them in that order.
    """
    result = JonesMatrix.identity()
    for element in elements:
        result = element @ result
    return result


def rotation_angle_of(matrix: JonesMatrix) -> float:
    """Extract the equivalent rotation angle (degrees) of a rotator matrix.

    For a matrix of the form ``e^{j phi} R(theta)`` (possibly scaled by a
    real attenuation factor) this recovers ``theta`` modulo 180 degrees in
    the range (-90, 90].  The 180-degree ambiguity is inherent: a global
    phase of pi is indistinguishable from rotating a linear polarization
    by 180 degrees, and linear polarizations are unoriented.
    """
    arr = matrix.as_array()
    det = np.linalg.det(arr)
    magnitude = math.sqrt(abs(det)) if abs(det) > 1e-30 else 0.0
    if magnitude < 1e-15:
        raise ValueError("matrix is singular; not a rotator")
    # det(a e^{j phi} R(theta)) = a^2 e^{2 j phi}; recover phi modulo pi.
    phase = 0.5 * np.angle(det)
    bare = arr * np.exp(-1j * phase) / magnitude
    if not np.allclose(bare.imag, 0.0, atol=1e-6):
        raise ValueError("matrix is not a pure rotation up to a global phase")
    theta = math.degrees(math.atan2(bare[1, 0].real, bare[0, 0].real))
    # Collapse the +/-180 ambiguity into (-90, 90].
    if theta > 90.0:
        theta -= 180.0
    elif theta <= -90.0:
        theta += 180.0
    return theta


__all__ = [
    "JonesVector",
    "JonesMatrix",
    "rotation_matrix",
    "quarter_wave_plate",
    "birefringent_structure",
    "polarization_rotator",
    "cascade",
    "rotation_angle_of",
]
