"""End-to-end LLAMA system orchestration (paper Sec. 3.1, Fig. 5).

:class:`LlamaSystem` wires the four architectural elements together:

* the **metasurface** (via :class:`ProgrammableRotator`),
* the **centralized controller** running Algorithm 1,
* the **programmable power supply** that applies the bias voltages and
  bounds the switching rate,
* the **endpoints**, represented by a :class:`WirelessLink` whose
  receiver reports signal power back to the controller.

The system exposes the operations the paper's evaluation performs:
optimize the link in real time, compare against the no-surface baseline,
sweep voltages exhaustively for heatmaps, and estimate the realised
rotation angle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.core.controller import (
    CentralizedController,
    SweepResult,
    VoltageSweepConfig,
)
from repro.core.rotation_estimation import (
    RotationAngleEstimator,
    RotationEstimate,
)
from repro.core.rotator import ProgrammableRotator, RotatorConfig
from repro.core.synchronization import SampleVoltageSynchronizer
from repro.hardware.power_supply import ProgrammablePowerSupply
from repro.metasurface.surface import SurfaceMode


class _SupplyMeasurementBackend:
    """Measurement backend that keeps the supply/rotator in the loop.

    Every probe — scalar or batched — programs the power supply (which
    advances the simulated clock and quantises the bias pair through the
    rotator) exactly as the sequential hardware would, but the link
    physics for a batch is evaluated in one vectorized pass over the
    applied voltages.
    """

    def __init__(self, system: "LlamaSystem"):
        self._system = system

    def measure(self, vx: float, vy: float) -> float:
        """Program the supply and report the receiver's power (dBm)."""
        return self._system._measure(vx, vy)

    def measure_batch(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Program the supply per probe; evaluate the physics in one pass."""
        system = self._system
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        vx_b, vy_b = np.broadcast_arrays(vx, vy)
        applied_x = np.empty(vx_b.size, dtype=float)
        applied_y = np.empty(vy_b.size, dtype=float)
        for index, (a, b) in enumerate(zip(vx_b.ravel(), vy_b.ravel())):
            system.supply.set_bias_pair(float(a), float(b))
            applied_x[index], applied_y[index] = system.rotator.bias_voltages
        system._measure_count += vx_b.size
        powers = system.link.received_power_dbm_batch(applied_x, applied_y)
        return powers.reshape(vx_b.shape)


@dataclass(frozen=True)
class LlamaResult:
    """Outcome of one end-to-end optimization run."""

    best_vx: float
    best_vy: float
    optimized_power_dbm: float
    baseline_power_dbm: float
    sweep: SweepResult
    rotation_angle_deg: float

    @property
    def power_gain_db(self) -> float:
        """Received-power improvement over the no-surface baseline."""
        return self.optimized_power_dbm - self.baseline_power_dbm


class LlamaSystem:
    """The complete LLAMA control loop against a (simulated) link.

    Parameters
    ----------
    link_configuration:
        Link under optimization; must reference a metasurface and a
        transmissive or reflective deployment.
    sweep_config:
        Controller search parameters (Algorithm 1 defaults).
    rotator_config:
        Bias-chain configuration.
    supply:
        Power-supply simulation; one is created if not provided.
    """

    def __init__(self,
                 link_configuration: LinkConfiguration,
                 sweep_config: Optional[VoltageSweepConfig] = None,
                 rotator_config: Optional[RotatorConfig] = None,
                 supply: Optional[ProgrammablePowerSupply] = None):
        if link_configuration.metasurface is None:
            raise ValueError("LlamaSystem requires a metasurface in the link")
        if link_configuration.deployment is DeploymentMode.NONE:
            raise ValueError(
                "LlamaSystem requires a transmissive or reflective deployment")
        self.link = WirelessLink(link_configuration)
        mode = (SurfaceMode.TRANSMISSIVE
                if link_configuration.deployment is DeploymentMode.TRANSMISSIVE
                else SurfaceMode.REFLECTIVE)
        self.rotator = ProgrammableRotator(link_configuration.metasurface,
                                           config=rotator_config, mode=mode)
        self.controller = CentralizedController(sweep_config)
        self.supply = supply if supply is not None else ProgrammablePowerSupply()
        self.supply.enable_output(True)
        self.supply.on_voltage_change = self._apply_voltages
        self._measure_count = 0
        self._backend = _SupplyMeasurementBackend(self)
        self._orientation_backend: Optional["OrientationBackend"] = None

    # ------------------------------------------------------------------ #
    # Plumbing between supply, rotator and link
    # ------------------------------------------------------------------ #
    def _apply_voltages(self, vx: float, vy: float) -> None:
        self.rotator.set_bias_voltages(vx, vy)

    def _measure(self, vx: float, vy: float) -> float:
        """Program the supply and report the receiver's power (dBm)."""
        self.supply.set_bias_pair(vx, vy)
        applied_vx, applied_vy = self.rotator.bias_voltages
        self._measure_count += 1
        return self.link.received_power_dbm(applied_vx, applied_vy)

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> _SupplyMeasurementBackend:
        """The supply-in-the-loop measurement backend of this system."""
        return self._backend

    @property
    def measurement_count(self) -> int:
        """Number of power reports the controller has consumed."""
        return self._measure_count

    def baseline_power_dbm(self) -> float:
        """Received power with the metasurface removed."""
        return self.link.baseline().received_power_dbm()

    def received_power_dbm(self, vx: float, vy: float) -> float:
        """Received power at an explicit bias pair (for sweeps/heatmaps)."""
        return self.link.received_power_dbm(vx, vy)

    def optimize(self, exhaustive: bool = False,
                 step_v: float = 1.0) -> LlamaResult:
        """Run the controller search and report the end-to-end outcome."""
        sweep = self.controller.optimize(self._backend, exhaustive=exhaustive,
                                         step_v=step_v)
        # Leave the system parked at the optimum the controller found.
        self.supply.set_bias_pair(sweep.best_vx, sweep.best_vy)
        vx, vy = self.rotator.bias_voltages
        rotation = self.rotator.rotation_angle_deg(
            self.link.configuration.frequency_hz)
        return LlamaResult(
            best_vx=vx,
            best_vy=vy,
            optimized_power_dbm=self.link.received_power_dbm(vx, vy),
            baseline_power_dbm=self.baseline_power_dbm(),
            sweep=sweep,
            rotation_angle_deg=rotation,
        )

    def heatmap_sweep(self, step_v: float = 2.0) -> SweepResult:
        """Exhaustive sweep used to produce Fig. 15 / Fig. 21 heatmaps."""
        return self.controller.full_sweep(self._backend, step_v=step_v)

    def orientation_backend(self) -> "OrientationBackend":
        """Orientation-aware backend over this link (one cached link per
        probed receiver angle, shared across estimation runs)."""
        if self._orientation_backend is None:
            from repro.api.backend import OrientationBackend
            self._orientation_backend = OrientationBackend(self.link)
        return self._orientation_backend

    def link_for_rx_orientation(self, orientation_deg: float) -> WirelessLink:
        """The link with the receiver rotated (one cached link per angle)."""
        return self.orientation_backend().link_for_orientation(orientation_deg)

    def estimate_rotation(self,
                          orientation_step_deg: float = 2.0,
                          exhaustive_voltage_sweep: bool = False) -> RotationEstimate:
        """Run the Sec. 3.4 rotation-angle estimation on this link.

        Orientation probes reuse one cached link per receiver angle and
        the voltage sweeps at the extreme orientations run batched.
        """
        estimator = RotationAngleEstimator(
            sweep_config=self.controller.config,
            orientation_step_deg=orientation_step_deg)
        return estimator.estimate(
            self.orientation_backend(),
            exhaustive_voltage_sweep=exhaustive_voltage_sweep)

    def synchronizer_for_sweep(self, initial_vx: float, initial_vy: float,
                               step_vx: float, step_vy: float,
                               start_offset_s: float = 0.0) -> SampleVoltageSynchronizer:
        """Build the Eq. 13 synchronizer matching the supply's timing."""
        return SampleVoltageSynchronizer(
            initial_vx=initial_vx,
            initial_vy=initial_vy,
            voltage_step_x=step_vx,
            voltage_step_y=step_vy,
            switch_interval_s=self.supply.switch_interval_s,
            start_offset_s=start_offset_s,
        )


__all__ = ["LlamaSystem", "LlamaResult"]
