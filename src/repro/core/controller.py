"""Centralized controller and bias-voltage search (paper Sec. 3.3, Algorithm 1).

The controller observes received power reported by the endpoint and
searches the two-dimensional bias-voltage space for the pair (Vx, Vy)
that maximizes it.  A full 1 V-step scan of the 0-30 V range takes about
30 seconds at the supply's 50 Hz switching rate, so the paper introduces
a coarse-to-fine sweep (Algorithm 1): ``N`` iterations of ``T`` switches
per axis, shrinking the search window around the best point after each
iteration.  With the paper's defaults (T=5, N=2) the search cost drops
from ~900 probes to 50.

The controller is deliberately decoupled from the physics: it only needs
a ``measure(vx, vy) -> power_dbm`` callable, which in this reproduction
is provided by :class:`repro.channel.link.WirelessLink` (optionally via
the simulated power supply for timing realism).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.constants import (
    BIAS_VOLTAGE_MAX_V,
    BIAS_VOLTAGE_MIN_V,
    SUPPLY_SWITCH_RATE_HZ,
)

MeasureCallback = Callable[[float, float], float]


@dataclass(frozen=True)
class VoltageSweepConfig:
    """Parameters of the coarse-to-fine sweep (paper Algorithm 1).

    Attributes
    ----------
    iterations:
        ``N`` — number of refinement iterations (paper default 2).
    switches_per_axis:
        ``T`` — number of voltage levels probed per axis per iteration
        (paper default 5).
    min_voltage_v, max_voltage_v:
        Initial sweep window for both axes (paper: 0-30 V).
    switch_interval_s:
        Time cost of one probe, set by the supply's switching rate
        (0.02 s at 50 Hz); the paper's per-iteration cost is
        ``0.02 * T^2``.
    """

    iterations: int = 2
    switches_per_axis: int = 5
    min_voltage_v: float = BIAS_VOLTAGE_MIN_V
    max_voltage_v: float = BIAS_VOLTAGE_MAX_V
    switch_interval_s: float = 1.0 / SUPPLY_SWITCH_RATE_HZ

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if self.switches_per_axis < 2:
            raise ValueError("need at least two switches per axis")
        if self.max_voltage_v <= self.min_voltage_v:
            raise ValueError("max voltage must exceed min voltage")
        if self.switch_interval_s <= 0:
            raise ValueError("switch interval must be positive")

    @property
    def probe_count(self) -> int:
        """Total number of (Vx, Vy) probes the coarse-to-fine sweep makes."""
        return self.iterations * self.switches_per_axis ** 2

    @property
    def estimated_duration_s(self) -> float:
        """Paper's time-cost expression ``0.02 * N * T^2``."""
        return self.switch_interval_s * self.probe_count


@dataclass(frozen=True)
class SweepSample:
    """One probed operating point."""

    vx: float
    vy: float
    power_dbm: float
    iteration: int


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a bias-voltage search."""

    best_vx: float
    best_vy: float
    best_power_dbm: float
    samples: Tuple[SweepSample, ...]
    duration_s: float
    strategy: str

    @property
    def probe_count(self) -> int:
        """Number of operating points probed."""
        return len(self.samples)

    def power_grid(self) -> dict:
        """Mapping of (vx, vy) -> best observed power, for heatmaps."""
        grid: dict = {}
        for sample in self.samples:
            key = (sample.vx, sample.vy)
            if key not in grid or sample.power_dbm > grid[key]:
                grid[key] = sample.power_dbm
        return grid

    @property
    def power_range_db(self) -> float:
        """Spread between the strongest and weakest probed power."""
        powers = [sample.power_dbm for sample in self.samples]
        return max(powers) - min(powers)


class CentralizedController:
    """Implements the paper's full and coarse-to-fine voltage sweeps."""

    def __init__(self, config: Optional[VoltageSweepConfig] = None):
        self.config = config if config is not None else VoltageSweepConfig()

    # ------------------------------------------------------------------ #
    # Exhaustive baseline sweep
    # ------------------------------------------------------------------ #
    def full_sweep(self, measure: MeasureCallback,
                   step_v: float = 1.0) -> SweepResult:
        """Exhaustive grid scan of the full voltage range.

        This is the ~30 s baseline the paper wants to avoid for real-time
        operation, but it is also what the evaluation uses to generate
        the Fig. 15 / Fig. 21 heatmaps.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        config = self.config
        levels = np.arange(config.min_voltage_v,
                           config.max_voltage_v + 0.5 * step_v, step_v)
        samples: List[SweepSample] = []
        best = (-math.inf, config.min_voltage_v, config.min_voltage_v)
        for vx in levels:
            for vy in levels:
                power = measure(float(vx), float(vy))
                samples.append(SweepSample(float(vx), float(vy), power, 0))
                if power > best[0]:
                    best = (power, float(vx), float(vy))
        duration = len(samples) * config.switch_interval_s
        return SweepResult(best_vx=best[1], best_vy=best[2],
                           best_power_dbm=best[0], samples=tuple(samples),
                           duration_s=duration, strategy="full")

    # ------------------------------------------------------------------ #
    # Algorithm 1: coarse-to-fine sweep
    # ------------------------------------------------------------------ #
    def coarse_to_fine_sweep(self, measure: MeasureCallback) -> SweepResult:
        """Paper Algorithm 1.

        Each iteration probes a ``T x T`` grid across the current search
        window of each axis, then shrinks the window to the step-sized
        neighbourhood below the best probe for the next iteration.
        """
        config = self.config
        window_x = (config.min_voltage_v, config.max_voltage_v)
        window_y = (config.min_voltage_v, config.max_voltage_v)
        samples: List[SweepSample] = []
        best = (-math.inf, config.min_voltage_v, config.min_voltage_v)
        for iteration in range(1, config.iterations + 1):
            step_x = (window_x[1] - window_x[0]) / config.switches_per_axis
            step_y = (window_y[1] - window_y[0]) / config.switches_per_axis
            levels_x = np.linspace(window_x[0], window_x[1],
                                   config.switches_per_axis)
            levels_y = np.linspace(window_y[0], window_y[1],
                                   config.switches_per_axis)
            iteration_best = (-math.inf, window_x[0], window_y[0])
            for vx in levels_x:
                for vy in levels_y:
                    power = measure(float(vx), float(vy))
                    samples.append(SweepSample(float(vx), float(vy), power,
                                               iteration))
                    if power > iteration_best[0]:
                        iteration_best = (power, float(vx), float(vy))
            if iteration_best[0] > best[0]:
                best = iteration_best
            # Shrink the window around the best probe (Algorithm 1's
            # return of [v - Vs, v] for each axis), clamped to the
            # original range.
            window_x = (max(config.min_voltage_v, iteration_best[1] - step_x),
                        min(config.max_voltage_v, iteration_best[1] + step_x))
            window_y = (max(config.min_voltage_v, iteration_best[2] - step_y),
                        min(config.max_voltage_v, iteration_best[2] + step_y))
        duration = len(samples) * config.switch_interval_s
        return SweepResult(best_vx=best[1], best_vy=best[2],
                           best_power_dbm=best[0], samples=tuple(samples),
                           duration_s=duration, strategy="coarse-to-fine")

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def optimize(self, measure: MeasureCallback,
                 exhaustive: bool = False,
                 step_v: float = 1.0) -> SweepResult:
        """Run the configured search strategy."""
        if exhaustive:
            return self.full_sweep(measure, step_v=step_v)
        return self.coarse_to_fine_sweep(measure)

    def full_sweep_duration_s(self, step_v: float = 1.0) -> float:
        """Predicted duration of the exhaustive scan (paper: ~30 s at 1 V).

        Note the paper's 30 s figure refers to scanning each axis across
        its 31 levels; the exhaustive 2-D grid is far slower, which is
        exactly why Algorithm 1 exists.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        config = self.config
        levels = int((config.max_voltage_v - config.min_voltage_v) / step_v) + 1
        return levels ** 2 * config.switch_interval_s


__all__ = [
    "MeasureCallback",
    "VoltageSweepConfig",
    "SweepSample",
    "SweepResult",
    "CentralizedController",
]
