"""Centralized controller and bias-voltage search (paper Sec. 3.3, Algorithm 1).

The controller observes received power reported by the endpoint and
searches the two-dimensional bias-voltage space for the pair (Vx, Vy)
that maximizes it.  A full 1 V-step scan of the 0-30 V range takes about
30 seconds at the supply's 50 Hz switching rate, so the paper introduces
a coarse-to-fine sweep (Algorithm 1): ``N`` iterations of ``T`` switches
per axis, shrinking the search window around the best point after each
iteration.  With the paper's defaults (T=5, N=2) the search cost drops
from ~900 probes to 50.

The controller is deliberately decoupled from the physics: it talks to
the world through a :class:`repro.api.MeasurementBackend`, issuing one
*batched* probe per grid (``full_sweep``) or per refinement iteration
(``coarse_to_fine_sweep``).  The simulation backend evaluates whole
bias grids in a single vectorized pass of the link budget; hardware or
recorded-trace backends can answer element by element.

Legacy scalar ``measure(vx, vy) -> power_dbm`` callables are still
accepted everywhere a backend is, but are deprecated: they are wrapped
in :class:`repro.api.CallableBackend` (with a ``DeprecationWarning``)
and probed through a Python loop.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.channel.grid import ProbeGrid
from repro.constants import (
    BIAS_VOLTAGE_MAX_V,
    BIAS_VOLTAGE_MIN_V,
    SUPPLY_SWITCH_RATE_HZ,
)
from repro.faults.policy import ProbePolicy

MeasureCallback = Callable[[float, float], float]

#: Accepted by every controller entry point: a measurement backend, or a
#: legacy scalar callable (deprecated).
MeasureSource = Union["MeasurementBackend", MeasureCallback]


def _as_measurement_backend(measure):
    """Coerce a backend-or-callable argument, warning on the legacy path."""
    from repro.api.backend import as_backend
    backend = as_backend(measure)
    if backend is not measure:
        warnings.warn(
            "passing a bare measure(vx, vy) callable to CentralizedController "
            "is deprecated; pass a repro.api.MeasurementBackend (e.g. "
            "LinkBackend for vectorized sweeps, or CallableBackend to wrap "
            "this callable)",
            DeprecationWarning, stacklevel=3)
    return backend


def vectorized_grid_max(levels_x: np.ndarray, levels_y: np.ndarray,
                        measure_batch) -> Tuple[np.ndarray, np.ndarray,
                                                np.ndarray, int]:
    """Evaluate a 2-D grid with one batched call; find its first maximum.

    The shared primitive of every batched grid search (controller
    sweeps, per-station bias search, scheduler utility search): build
    the vx-major meshgrid, issue a single ``measure_batch`` over the
    flattened pairs, and locate the first maximum with NaN values
    treated as ``-inf`` (never selected), matching the historical
    strict-``>`` scalar loops.  Returns ``(vx_flat, vy_flat, values,
    best_index)``.
    """
    vx_grid, vy_grid = np.meshgrid(levels_x, levels_y, indexing="ij")
    vx_flat = vx_grid.ravel()
    vy_flat = vy_grid.ravel()
    values = np.asarray(measure_batch(vx_flat, vy_flat), dtype=float).ravel()
    if values.shape != vx_flat.shape:
        raise ValueError(f"batched measurement returned {values.shape[0]} "
                         f"values for {vx_flat.shape[0]} probes")
    masked = np.where(np.isnan(values), -math.inf, values)
    return vx_flat, vy_flat, values, int(np.argmax(masked))


@dataclass(frozen=True)
class VoltageSweepConfig:
    """Parameters of the coarse-to-fine sweep (paper Algorithm 1).

    Attributes
    ----------
    iterations:
        ``N`` — number of refinement iterations (paper default 2).
    switches_per_axis:
        ``T`` — number of voltage levels probed per axis per iteration
        (paper default 5).
    min_voltage_v, max_voltage_v:
        Initial sweep window for both axes (paper: 0-30 V).
    switch_interval_s:
        Time cost of one probe, set by the supply's switching rate
        (0.02 s at 50 Hz); the paper's per-iteration cost is
        ``0.02 * T^2``.
    """

    iterations: int = 2
    switches_per_axis: int = 5
    min_voltage_v: float = BIAS_VOLTAGE_MIN_V
    max_voltage_v: float = BIAS_VOLTAGE_MAX_V
    switch_interval_s: float = 1.0 / SUPPLY_SWITCH_RATE_HZ

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if self.switches_per_axis < 2:
            raise ValueError("need at least two switches per axis")
        if self.max_voltage_v <= self.min_voltage_v:
            raise ValueError("max voltage must exceed min voltage")
        if self.switch_interval_s <= 0:
            raise ValueError("switch interval must be positive")

    @property
    def probe_count(self) -> int:
        """Total number of (Vx, Vy) probes the coarse-to-fine sweep makes."""
        return self.iterations * self.switches_per_axis ** 2

    @property
    def estimated_duration_s(self) -> float:
        """Paper's time-cost expression ``0.02 * N * T^2``."""
        return self.switch_interval_s * self.probe_count


@dataclass(frozen=True)
class MultiAxisSweepResult:
    """Outcome of a bias-voltage search run at every point of a sweep axis.

    The vectorized counterpart of running :class:`SweepResult`-producing
    searches in a Python loop over a link-parameter axis: element ``i``
    of every array is exactly what the scalar search at axis value
    ``values[i]`` would have found (same grids, same first-maximum and
    NaN semantics), but all points are probed together in one batched
    ``measure_sweep`` call per iteration.
    """

    axis: str
    values: np.ndarray
    best_vx: np.ndarray
    best_vy: np.ndarray
    best_power_dbm: np.ndarray
    probe_count_per_point: int
    duration_s_per_point: float
    strategy: str

    def __post_init__(self) -> None:
        for name in ("values", "best_vx", "best_vy", "best_power_dbm"):
            object.__setattr__(self, name,
                               np.asarray(getattr(self, name), dtype=float))

    @property
    def point_count(self) -> int:
        """Number of axis points optimized."""
        return int(self.values.size)

    def __iter__(self):
        """Iterate ``(value, best_vx, best_vy, best_power_dbm)`` rows."""
        return iter(zip(self.values.tolist(), self.best_vx.tolist(),
                        self.best_vy.tolist(), self.best_power_dbm.tolist()))


@dataclass(frozen=True)
class GridSweepResult:
    """Outcome of a bias-voltage search run at every point of a probe grid.

    The N-D generalisation of :class:`MultiAxisSweepResult`: ``grid`` is
    a :class:`~repro.channel.grid.ProbeGrid` over link-parameter axes
    (the controller owns the voltage axes) and every result array has
    ``grid.shape`` — cell ``index`` holds exactly what the scalar search
    on a link rebuilt at that cell's axis values would have found (same
    voltage grids, same first-maximum and NaN semantics), with all cells
    probed together in one batched call per refinement iteration.
    """

    grid: ProbeGrid
    best_vx: np.ndarray
    best_vy: np.ndarray
    best_power_dbm: np.ndarray
    probe_count_per_point: int
    duration_s_per_point: float
    strategy: str

    def __post_init__(self) -> None:
        for name in ("best_vx", "best_vy", "best_power_dbm"):
            object.__setattr__(self, name,
                               np.asarray(getattr(self, name), dtype=float))

    @property
    def point_count(self) -> int:
        """Number of grid points optimized."""
        return self.grid.size


@dataclass(frozen=True)
class SweepSample:
    """One probed operating point."""

    vx: float
    vy: float
    power_dbm: float
    iteration: int


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a bias-voltage search."""

    best_vx: float
    best_vy: float
    best_power_dbm: float
    samples: Tuple[SweepSample, ...]
    duration_s: float
    strategy: str

    @property
    def probe_count(self) -> int:
        """Number of operating points probed."""
        return len(self.samples)

    def power_grid(self) -> dict:
        """Mapping of (vx, vy) -> best observed power, for heatmaps."""
        grid: dict = {}
        for sample in self.samples:
            key = (sample.vx, sample.vy)
            if key not in grid or sample.power_dbm > grid[key]:
                grid[key] = sample.power_dbm
        return grid

    @property
    def power_range_db(self) -> float:
        """Spread between the strongest and weakest probed power."""
        powers = [sample.power_dbm for sample in self.samples]
        return max(powers) - min(powers)


class CentralizedController:
    """Implements the paper's full and coarse-to-fine voltage sweeps.

    ``probe_policy`` (median-of-k re-voting,
    :class:`repro.faults.policy.ProbePolicy`) hardens every probe the
    controller issues: each grid is probed ``repeats`` times and the
    element-wise median is searched, so a single corrupted probe cannot
    hijack the coarse-to-fine refinement.  The default (``repeats=1``)
    is the exact historical single-probe behaviour.
    """

    def __init__(self, config: Optional[VoltageSweepConfig] = None,
                 probe_policy: Optional[ProbePolicy] = None):
        self.config = config if config is not None else VoltageSweepConfig()
        self.probe_policy = (probe_policy if probe_policy is not None
                             else ProbePolicy())

    # ------------------------------------------------------------------ #
    # Exhaustive baseline sweep
    # ------------------------------------------------------------------ #
    def _probe_grid(self, backend, levels_x: np.ndarray,
                    levels_y: np.ndarray,
                    iteration: int) -> Tuple[List[SweepSample], Tuple[float, float, float]]:
        """Issue one (re-voted) batched probe over a voltage grid.

        Returns the samples (vx-major order, matching the historical
        scalar loop) and the first-maximum ``(power, vx, vy)`` triple.
        """
        vx_flat, vy_flat, powers, best_index = vectorized_grid_max(
            levels_x, levels_y,
            lambda vx, vy: self.probe_policy.measure(
                backend.measure_batch, vx, vy))
        samples = [SweepSample(float(vx), float(vy), float(power), iteration)
                   for vx, vy, power in zip(vx_flat, vy_flat, powers)]
        best_power = powers[best_index]
        best = (float(best_power) if not math.isnan(best_power) else -math.inf,
                float(vx_flat[best_index]), float(vy_flat[best_index]))
        return samples, best

    def full_sweep(self, measure: MeasureSource,
                   step_v: float = 1.0) -> SweepResult:
        """Exhaustive grid scan of the full voltage range.

        This is the ~30 s baseline the paper wants to avoid for real-time
        operation, but it is also what the evaluation uses to generate
        the Fig. 15 / Fig. 21 heatmaps.  The whole grid is issued as a
        single batched probe.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        backend = _as_measurement_backend(measure)
        config = self.config
        levels = np.arange(config.min_voltage_v,
                           config.max_voltage_v + 0.5 * step_v, step_v)
        samples, best = self._probe_grid(backend, levels, levels, iteration=0)
        duration = len(samples) * config.switch_interval_s
        return SweepResult(best_vx=best[1], best_vy=best[2],
                           best_power_dbm=best[0], samples=tuple(samples),
                           duration_s=duration, strategy="full")

    # ------------------------------------------------------------------ #
    # Algorithm 1: coarse-to-fine sweep
    # ------------------------------------------------------------------ #
    def coarse_to_fine_sweep(self, measure: MeasureSource) -> SweepResult:
        """Paper Algorithm 1.

        Each iteration probes a ``T x T`` grid across the current search
        window of each axis (one batched probe per iteration), then
        shrinks the window to the step-sized neighbourhood below the
        best probe for the next iteration.
        """
        backend = _as_measurement_backend(measure)
        config = self.config
        window_x = (config.min_voltage_v, config.max_voltage_v)
        window_y = (config.min_voltage_v, config.max_voltage_v)
        samples: List[SweepSample] = []
        best = (-math.inf, config.min_voltage_v, config.min_voltage_v)
        for iteration in range(1, config.iterations + 1):
            step_x = (window_x[1] - window_x[0]) / config.switches_per_axis
            step_y = (window_y[1] - window_y[0]) / config.switches_per_axis
            levels_x = np.linspace(window_x[0], window_x[1],
                                   config.switches_per_axis)
            levels_y = np.linspace(window_y[0], window_y[1],
                                   config.switches_per_axis)
            iteration_samples, iteration_best = self._probe_grid(
                backend, levels_x, levels_y, iteration=iteration)
            samples.extend(iteration_samples)
            if iteration_best[0] > best[0]:
                best = iteration_best
            # Shrink the window around the best probe (Algorithm 1's
            # return of [v - Vs, v] for each axis), clamped to the
            # original range.
            window_x = (max(config.min_voltage_v, iteration_best[1] - step_x),
                        min(config.max_voltage_v, iteration_best[1] + step_x))
            window_y = (max(config.min_voltage_v, iteration_best[2] - step_y),
                        min(config.max_voltage_v, iteration_best[2] + step_y))
        duration = len(samples) * config.switch_interval_s
        return SweepResult(best_vx=best[1], best_vy=best[2],
                           best_power_dbm=best[0], samples=tuple(samples),
                           duration_s=duration, strategy="coarse-to-fine")

    # ------------------------------------------------------------------ #
    # Grid-native searches (the N-D evaluation engine's control plane)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_search_grid(grid: ProbeGrid) -> None:
        """The controller owns the voltage axes of its search grids."""
        for name in ("vx", "vy"):
            if name in grid:
                raise ValueError(
                    f"search grids must not carry a {name!r} axis: the "
                    "controller sweeps the bias voltages itself")

    def _probe_grid_points(self, backend,
                           point_values: Dict[str, np.ndarray],
                           grid_vx: np.ndarray, grid_vy: np.ndarray):
        """Issue one (re-voted) batched probe of per-point voltage grids.

        ``point_values`` maps each link-parameter axis to its ``(n,)``
        flattened per-point values; ``grid_vx`` / ``grid_vy`` are
        ``(n, k)`` vx-major grids (one row per point).  Dispatches to
        the richest probe the backend offers — ``measure_grid`` (any
        axes), ``measure_sweep`` (single axis, e.g. the noisy receiver
        backend) or ``measure_batch`` (no link-parameter axes) — and
        returns the per-point first-maximum ``(power, vx, vy)`` arrays
        with NaN probes treated as ``-inf``, matching the scalar
        :meth:`_probe_grid` semantics row by row.
        """
        policy = self.probe_policy
        if hasattr(backend, "measure_grid"):
            probe = ProbeGrid.aligned(
                vx=grid_vx, vy=grid_vy,
                **{name: values[:, None]
                   for name, values in point_values.items()})
            powers = policy.measure(backend.measure_grid, probe)
        elif len(point_values) == 1 and hasattr(backend, "measure_sweep"):
            (axis, values), = point_values.items()
            powers = policy.measure(backend.measure_sweep, axis,
                                    values.reshape(-1, 1), grid_vx, grid_vy)
        elif not point_values and hasattr(backend, "measure_batch"):
            powers = policy.measure(backend.measure_batch, grid_vx, grid_vy)
        else:
            raise TypeError(
                "backend cannot probe this grid: it must provide "
                "measure_grid (any axes), measure_sweep (exactly one "
                "axis) or measure_batch (no link-parameter axes)")
        powers = np.asarray(powers, dtype=float)
        if powers.shape != grid_vx.shape:
            raise ValueError(
                f"batched sweep measurement returned shape {powers.shape} "
                f"for {grid_vx.shape} probes")
        masked = np.where(np.isnan(powers), -math.inf, powers)
        best_index = np.argmax(masked, axis=1)
        rows = np.arange(grid_vx.shape[0])
        return (masked[rows, best_index], grid_vx[rows, best_index],
                grid_vy[rows, best_index])

    def full_sweep_grid(self, backend, grid: ProbeGrid,
                        step_v: float = 1.0) -> GridSweepResult:
        """Exhaustive voltage scan at every point of a probe grid at once.

        One batched probe evaluates the full ``(grid point, Vx, Vy)``
        product; per cell the result equals :meth:`full_sweep` on a link
        rebuilt at that cell's axis values.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        self._validate_search_grid(grid)
        point_values = grid.point_values()
        n = grid.size
        config = self.config
        levels = np.arange(config.min_voltage_v,
                           config.max_voltage_v + 0.5 * step_v, step_v)
        count = levels.size
        grid_vx = np.broadcast_to(np.repeat(levels, count),
                                  (n, count * count))
        grid_vy = np.broadcast_to(np.tile(levels, count),
                                  (n, count * count))
        best_power, best_vx, best_vy = self._probe_grid_points(
            backend, point_values, grid_vx, grid_vy)
        probes = count * count
        shape = grid.shape
        return GridSweepResult(
            grid=grid, best_vx=best_vx.reshape(shape),
            best_vy=best_vy.reshape(shape),
            best_power_dbm=best_power.reshape(shape),
            probe_count_per_point=probes,
            duration_s_per_point=probes * config.switch_interval_s,
            strategy="full")

    def coarse_to_fine_sweep_grid(self, backend,
                                  grid: ProbeGrid) -> GridSweepResult:
        """Paper Algorithm 1, run at every point of a probe grid at once.

        Each refinement iteration issues a single batched probe over all
        per-point ``T x T`` voltage grids; the per-point windows then
        shrink independently around each point's best probe.  Per cell
        the grids, first-maximum selection and NaN handling are
        identical to the scalar :meth:`coarse_to_fine_sweep`.
        """
        self._validate_search_grid(grid)
        point_values = grid.point_values()
        n = grid.size
        config = self.config
        switches = config.switches_per_axis
        low_x = np.full(n, config.min_voltage_v)
        high_x = np.full(n, config.max_voltage_v)
        low_y = np.full(n, config.min_voltage_v)
        high_y = np.full(n, config.max_voltage_v)
        best_power = np.full(n, -math.inf)
        best_vx = np.full(n, config.min_voltage_v)
        best_vy = np.full(n, config.min_voltage_v)
        for _iteration in range(config.iterations):
            step_x = (high_x - low_x) / switches
            step_y = (high_y - low_y) / switches
            levels_x = np.linspace(low_x, high_x, switches, axis=-1)
            levels_y = np.linspace(low_y, high_y, switches, axis=-1)
            # vx-major per-point grids, matching the scalar meshgrid order.
            grid_vx = np.repeat(levels_x, switches, axis=-1)
            grid_vy = np.tile(levels_y, (1, switches))
            iter_power, iter_vx, iter_vy = self._probe_grid_points(
                backend, point_values, grid_vx, grid_vy)
            improved = iter_power > best_power
            best_power = np.where(improved, iter_power, best_power)
            best_vx = np.where(improved, iter_vx, best_vx)
            best_vy = np.where(improved, iter_vy, best_vy)
            low_x = np.maximum(config.min_voltage_v, iter_vx - step_x)
            high_x = np.minimum(config.max_voltage_v, iter_vx + step_x)
            low_y = np.maximum(config.min_voltage_v, iter_vy - step_y)
            high_y = np.minimum(config.max_voltage_v, iter_vy + step_y)
        shape = grid.shape
        return GridSweepResult(
            grid=grid, best_vx=best_vx.reshape(shape),
            best_vy=best_vy.reshape(shape),
            best_power_dbm=best_power.reshape(shape),
            probe_count_per_point=config.probe_count,
            duration_s_per_point=config.estimated_duration_s,
            strategy="coarse-to-fine")

    def optimize_grid(self, backend, grid: ProbeGrid,
                      exhaustive: bool = False,
                      step_v: float = 1.0) -> GridSweepResult:
        """Run the configured search at every point of a probe grid.

        The N-D generalisation of :meth:`optimize` /
        :meth:`optimize_multi`: ``grid`` names any subset of
        :data:`repro.channel.grid.SWEEP_AXES` (a 0-d grid reduces to a
        single scalar search) and the backend is probed once per
        refinement iteration for the entire grid.
        """
        if exhaustive:
            return self.full_sweep_grid(backend, grid, step_v=step_v)
        return self.coarse_to_fine_sweep_grid(backend, grid)

    # ------------------------------------------------------------------ #
    # Single-axis wrappers over the grid-native searches
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_multi_result(result: GridSweepResult, axis: str,
                         values: np.ndarray) -> MultiAxisSweepResult:
        """Flatten a one-axis grid result to the legacy multi shape."""
        return MultiAxisSweepResult(
            axis=axis, values=values, best_vx=result.best_vx.ravel(),
            best_vy=result.best_vy.ravel(),
            best_power_dbm=result.best_power_dbm.ravel(),
            probe_count_per_point=result.probe_count_per_point,
            duration_s_per_point=result.duration_s_per_point,
            strategy=result.strategy)

    def full_sweep_multi(self, backend, axis: str, values,
                         step_v: float = 1.0) -> MultiAxisSweepResult:
        """Exhaustive scan at every point of one sweep axis at once.

        Wrapper over :meth:`full_sweep_grid` with a one-axis grid.
        """
        values = np.asarray(values, dtype=float).ravel()
        result = self.full_sweep_grid(
            backend, ProbeGrid.product(**{axis: values}), step_v=step_v)
        return self._as_multi_result(result, axis, values)

    def coarse_to_fine_sweep_multi(self, backend, axis: str,
                                   values) -> MultiAxisSweepResult:
        """Paper Algorithm 1 at every point of one sweep axis at once.

        Wrapper over :meth:`coarse_to_fine_sweep_grid` with a one-axis
        grid.
        """
        values = np.asarray(values, dtype=float).ravel()
        result = self.coarse_to_fine_sweep_grid(
            backend, ProbeGrid.product(**{axis: values}))
        return self._as_multi_result(result, axis, values)

    def optimize_multi(self, backend, axis: str, values,
                       exhaustive: bool = False,
                       step_v: float = 1.0) -> MultiAxisSweepResult:
        """Run the configured search strategy over a whole sweep axis."""
        if exhaustive:
            return self.full_sweep_multi(backend, axis, values, step_v=step_v)
        return self.coarse_to_fine_sweep_multi(backend, axis, values)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def optimize(self, measure: MeasureSource,
                 exhaustive: bool = False,
                 step_v: float = 1.0) -> SweepResult:
        """Run the configured search strategy."""
        backend = _as_measurement_backend(measure)
        if exhaustive:
            return self.full_sweep(backend, step_v=step_v)
        return self.coarse_to_fine_sweep(backend)

    def full_sweep_duration_s(self, step_v: float = 1.0) -> float:
        """Predicted duration of the exhaustive scan (paper: ~30 s at 1 V).

        Note the paper's 30 s figure refers to scanning each axis across
        its 31 levels; the exhaustive 2-D grid is far slower, which is
        exactly why Algorithm 1 exists.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        config = self.config
        levels = int((config.max_voltage_v - config.min_voltage_v) / step_v) + 1
        return levels ** 2 * config.switch_interval_s


__all__ = [
    "MeasureCallback",
    "MeasureSource",
    "vectorized_grid_max",
    "VoltageSweepConfig",
    "GridSweepResult",
    "MultiAxisSweepResult",
    "SweepSample",
    "SweepResult",
    "CentralizedController",
]
