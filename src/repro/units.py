"""Unit conversion helpers used throughout the LLAMA reproduction.

The paper mixes logarithmic (dB, dBm, dBi) and linear (mW, W, unit-less
power ratios) quantities freely.  Centralising the conversions here keeps
the physics modules free of ad-hoc ``10 * log10`` expressions and gives a
single place to handle numerical edge cases (zero or negative power,
array inputs, floors for cross-polarization isolation, ...).

All functions accept scalars or NumPy arrays and return a float64 array
of the same shape (0-d for scalar inputs, so ``float(...)`` recovers a
plain scalar).  This module is the one place inline ``10 ** (x / 10)``
expressions are allowed — the RPR001 lint rule polices everyone else.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]

ArrayLike = Union[float, int, FloatArray]

#: Smallest linear power ratio we ever report, to keep logarithms finite.
#: Corresponds to -200 dB, far below any physically meaningful floor.
MIN_LINEAR_POWER = 1e-20


def _as_array(value: ArrayLike) -> FloatArray:
    """Return ``value`` as a float ndarray (0-d for scalars)."""
    result: FloatArray = np.asarray(value, dtype=np.float64)
    return result


def db_to_linear(value_db: ArrayLike) -> FloatArray:
    """Convert a power ratio in dB to a linear ratio.

    >>> db_to_linear(3.0103)
    2.0000...
    """
    result: FloatArray = np.power(10.0, _as_array(value_db) / 10.0)
    return result


def linear_to_db(ratio: ArrayLike) -> FloatArray:
    """Convert a linear power ratio to dB.

    Ratios at or below zero are clamped to :data:`MIN_LINEAR_POWER` so the
    result stays finite (useful when a simulated receiver measures an
    essentially zero cross-polarized component).
    """
    clamped: FloatArray = np.maximum(_as_array(ratio), MIN_LINEAR_POWER)
    result: FloatArray = 10.0 * np.log10(clamped)
    return result


def dbm_to_watts(power_dbm: ArrayLike) -> FloatArray:
    """Convert power in dBm to Watts."""
    result: FloatArray = np.power(10.0, (_as_array(power_dbm) - 30.0) / 10.0)
    return result


def watts_to_dbm(power_watts: ArrayLike) -> FloatArray:
    """Convert power in Watts to dBm.

    Non-positive powers are clamped so the logarithm stays finite.  Note
    the clamp floor is :data:`MIN_LINEAR_POWER` *Watts* (-170 dBm): for
    quantities that may fall below it (thermal noise in small
    bandwidths), convert to milliwatts first and use
    :func:`milliwatts_to_dbm`.
    """
    clamped: FloatArray = np.maximum(_as_array(power_watts), MIN_LINEAR_POWER)
    result: FloatArray = 10.0 * np.log10(clamped) + 30.0
    return result


def dbm_to_milliwatts(power_dbm: ArrayLike) -> FloatArray:
    """Convert power in dBm to milliwatts."""
    result: FloatArray = np.power(10.0, _as_array(power_dbm) / 10.0)
    return result


def milliwatts_to_dbm(power_mw: ArrayLike) -> FloatArray:
    """Convert power in milliwatts to dBm."""
    clamped: FloatArray = np.maximum(_as_array(power_mw), MIN_LINEAR_POWER)
    result: FloatArray = 10.0 * np.log10(clamped)
    return result


def amplitude_to_db(amplitude_ratio: ArrayLike) -> FloatArray:
    """Convert a linear field/voltage amplitude ratio to dB (20 log10)."""
    clamped: FloatArray = np.maximum(np.abs(_as_array(amplitude_ratio)),
                                     math.sqrt(MIN_LINEAR_POWER))
    result: FloatArray = 20.0 * np.log10(clamped)
    return result


def db_to_amplitude(value_db: ArrayLike) -> FloatArray:
    """Convert dB to a linear field/voltage amplitude ratio."""
    result: FloatArray = np.power(10.0, _as_array(value_db) / 20.0)
    return result


def degrees_to_radians(angle_deg: ArrayLike) -> FloatArray:
    """Convert degrees to radians."""
    result: FloatArray = np.deg2rad(_as_array(angle_deg))
    return result


def radians_to_degrees(angle_rad: ArrayLike) -> FloatArray:
    """Convert radians to degrees."""
    result: FloatArray = np.rad2deg(_as_array(angle_rad))
    return result


def wrap_angle_degrees(angle_deg: ArrayLike) -> FloatArray:
    """Wrap an angle to the interval [0, 360) degrees."""
    result: FloatArray = np.mod(_as_array(angle_deg), 360.0)
    return result


def wrap_angle_180(angle_deg: ArrayLike) -> FloatArray:
    """Wrap an angle to the interval [-180, 180) degrees."""
    result: FloatArray = np.mod(_as_array(angle_deg) + 180.0, 360.0) - 180.0
    return result


def polarization_angle_difference(angle_a_deg: ArrayLike,
                                  angle_b_deg: ArrayLike) -> FloatArray:
    """Smallest difference between two *polarization* orientations.

    Linear polarization orientations are unoriented lines, so 0° and 180°
    describe the same state.  The result lies in [0, 90] degrees.
    """
    diff: FloatArray = np.abs(
        wrap_angle_180(_as_array(angle_a_deg) - _as_array(angle_b_deg)))
    folded: FloatArray = np.where(diff > 90.0, 180.0 - diff, diff)
    return folded


def frequency_to_wavelength(frequency_hz: ArrayLike,
                            speed_of_light: float = 299_792_458.0
                            ) -> FloatArray:
    """Free-space wavelength (metres) for a frequency in Hz."""
    frequencies: FloatArray = _as_array(frequency_hz)
    if np.any(frequencies <= 0):
        raise ValueError("frequency must be positive")
    result: FloatArray = speed_of_light / frequencies
    return result


def wavelength_to_frequency(wavelength_m: ArrayLike,
                            speed_of_light: float = 299_792_458.0
                            ) -> FloatArray:
    """Frequency (Hz) for a free-space wavelength in metres."""
    wavelengths: FloatArray = _as_array(wavelength_m)
    if np.any(wavelengths <= 0):
        raise ValueError("wavelength must be positive")
    result: FloatArray = speed_of_light / wavelengths
    return result


__all__ = [
    "ArrayLike",
    "FloatArray",
    "MIN_LINEAR_POWER",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "amplitude_to_db",
    "db_to_amplitude",
    "degrees_to_radians",
    "radians_to_degrees",
    "wrap_angle_degrees",
    "wrap_angle_180",
    "polarization_angle_difference",
    "frequency_to_wavelength",
    "wavelength_to_frequency",
]
