"""Unit conversion helpers used throughout the LLAMA reproduction.

The paper mixes logarithmic (dB, dBm, dBi) and linear (mW, W, unit-less
power ratios) quantities freely.  Centralising the conversions here keeps
the physics modules free of ad-hoc ``10 * log10`` expressions and gives a
single place to handle numerical edge cases (zero or negative power,
array inputs, floors for cross-polarization isolation, ...).

All functions accept scalars or NumPy arrays and return the same shape.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]

#: Smallest linear power ratio we ever report, to keep logarithms finite.
#: Corresponds to -200 dB, far below any physically meaningful floor.
MIN_LINEAR_POWER = 1e-20


def _as_array(value: ArrayLike) -> np.ndarray:
    """Return ``value`` as a float ndarray (0-d for scalars)."""
    return np.asarray(value, dtype=float)


def db_to_linear(value_db: ArrayLike) -> ArrayLike:
    """Convert a power ratio in dB to a linear ratio.

    >>> db_to_linear(3.0103)
    2.0000...
    """
    return np.power(10.0, _as_array(value_db) / 10.0)


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB.

    Ratios at or below zero are clamped to :data:`MIN_LINEAR_POWER` so the
    result stays finite (useful when a simulated receiver measures an
    essentially zero cross-polarized component).
    """
    ratio = np.maximum(_as_array(ratio), MIN_LINEAR_POWER)
    return 10.0 * np.log10(ratio)


def dbm_to_watts(power_dbm: ArrayLike) -> ArrayLike:
    """Convert power in dBm to Watts."""
    return np.power(10.0, (_as_array(power_dbm) - 30.0) / 10.0)


def watts_to_dbm(power_watts: ArrayLike) -> ArrayLike:
    """Convert power in Watts to dBm.

    Non-positive powers are clamped so the logarithm stays finite.
    """
    power_watts = np.maximum(_as_array(power_watts), MIN_LINEAR_POWER)
    return 10.0 * np.log10(power_watts) + 30.0


def dbm_to_milliwatts(power_dbm: ArrayLike) -> ArrayLike:
    """Convert power in dBm to milliwatts."""
    return np.power(10.0, _as_array(power_dbm) / 10.0)


def milliwatts_to_dbm(power_mw: ArrayLike) -> ArrayLike:
    """Convert power in milliwatts to dBm."""
    power_mw = np.maximum(_as_array(power_mw), MIN_LINEAR_POWER)
    return 10.0 * np.log10(power_mw)


def amplitude_to_db(amplitude_ratio: ArrayLike) -> ArrayLike:
    """Convert a linear field/voltage amplitude ratio to dB (20 log10)."""
    amplitude_ratio = np.maximum(np.abs(_as_array(amplitude_ratio)),
                                 math.sqrt(MIN_LINEAR_POWER))
    return 20.0 * np.log10(amplitude_ratio)


def db_to_amplitude(value_db: ArrayLike) -> ArrayLike:
    """Convert dB to a linear field/voltage amplitude ratio."""
    return np.power(10.0, _as_array(value_db) / 20.0)


def degrees_to_radians(angle_deg: ArrayLike) -> ArrayLike:
    """Convert degrees to radians."""
    return np.deg2rad(_as_array(angle_deg))


def radians_to_degrees(angle_rad: ArrayLike) -> ArrayLike:
    """Convert radians to degrees."""
    return np.rad2deg(_as_array(angle_rad))


def wrap_angle_degrees(angle_deg: ArrayLike) -> ArrayLike:
    """Wrap an angle to the interval [0, 360) degrees."""
    return np.mod(_as_array(angle_deg), 360.0)


def wrap_angle_180(angle_deg: ArrayLike) -> ArrayLike:
    """Wrap an angle to the interval [-180, 180) degrees."""
    return np.mod(_as_array(angle_deg) + 180.0, 360.0) - 180.0


def polarization_angle_difference(angle_a_deg: ArrayLike,
                                  angle_b_deg: ArrayLike) -> ArrayLike:
    """Smallest difference between two *polarization* orientations.

    Linear polarization orientations are unoriented lines, so 0° and 180°
    describe the same state.  The result lies in [0, 90] degrees.
    """
    diff = np.abs(wrap_angle_180(_as_array(angle_a_deg) - _as_array(angle_b_deg)))
    diff = np.where(diff > 90.0, 180.0 - diff, diff)
    return diff


def frequency_to_wavelength(frequency_hz: ArrayLike,
                            speed_of_light: float = 299_792_458.0) -> ArrayLike:
    """Free-space wavelength (metres) for a frequency in Hz."""
    frequency_hz = _as_array(frequency_hz)
    if np.any(frequency_hz <= 0):
        raise ValueError("frequency must be positive")
    return speed_of_light / frequency_hz


def wavelength_to_frequency(wavelength_m: ArrayLike,
                            speed_of_light: float = 299_792_458.0) -> ArrayLike:
    """Frequency (Hz) for a free-space wavelength in metres."""
    wavelength_m = _as_array(wavelength_m)
    if np.any(wavelength_m <= 0):
        raise ValueError("wavelength must be positive")
    return speed_of_light / wavelength_m


__all__ = [
    "MIN_LINEAR_POWER",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "amplitude_to_db",
    "db_to_amplitude",
    "degrees_to_radians",
    "radians_to_degrees",
    "wrap_angle_degrees",
    "wrap_angle_180",
    "polarization_angle_difference",
    "frequency_to_wavelength",
    "wavelength_to_frequency",
]
