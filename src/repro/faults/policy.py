"""Probe re-voting: median-of-k with outlier rejection.

A single corrupted probe must not hijack Algorithm 1's coarse-to-fine
search: one +6 dB impulse at the wrong grid cell moves the refinement
window for every later iteration.  :class:`ProbePolicy` makes the
controller's probes *votes*: each grid is probed ``repeats`` times and
the per-element median is used, with NaN dropouts excluded from the
vote (an element is lost only when every repeat dropped).

``repeats=1`` is the exact identity — one probe, returned untouched —
so the default controller behaviour (and all parity suites) are
bit-identical to the pre-resilience pipeline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProbePolicy:
    """How the controller turns raw probes into trusted measurements.

    Attributes
    ----------
    repeats:
        Probes per grid (``k`` of median-of-k).  1 disables re-voting.
    """

    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("need at least one probe repeat")

    @property
    def active(self) -> bool:
        """Whether re-voting changes anything (``repeats > 1``)."""
        return self.repeats > 1

    def measure(self, probe, *args, **kwargs) -> np.ndarray:
        """Issue ``repeats`` probes and aggregate element-wise.

        ``probe`` is any batched measurement callable; repeats are
        issued sequentially (preserving stateful backends' draw order)
        and reduced with :meth:`aggregate`.
        """
        if not self.active:
            return np.asarray(probe(*args, **kwargs), dtype=float)
        samples = np.stack([np.asarray(probe(*args, **kwargs), dtype=float)
                            for _ in range(self.repeats)])
        return self.aggregate(samples)

    def aggregate(self, samples: np.ndarray) -> np.ndarray:
        """Element-wise median over the leading repeat axis.

        NaN repeats (dropped probes) are excluded from each element's
        vote; an element is NaN only when every repeat dropped.  The
        median rejects any minority of corrupted repeats outright.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.shape[0] == 1:
            return samples[0]
        with warnings.catch_warnings():
            # All-NaN columns legitimately reduce to NaN (total dropout).
            warnings.simplefilter("ignore", category=RuntimeWarning)
            return np.nanmedian(samples, axis=0)


__all__ = ["ProbePolicy"]
