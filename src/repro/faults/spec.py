"""Fault model: what can go wrong, how often, and from which seed.

A :class:`FaultSpec` is a frozen, serializable description of a fault
environment — per-probe dropout and noise-burst rates, actuator
defects, supply glitches, VISA I/O failure rates and station-churn
time constants.  A :class:`FaultSchedule` binds a spec to one master
seed and hands out *named* RNG streams (``"probe.dropout"``,
``"visa.timeout"``, ``"churn"``, ...), each deterministically derived
from ``(seed, stream name)``.  Consumers draw from their own stream,
so adding a new fault kind never perturbs existing traces, and
replaying a schedule (same spec, same seed) reproduces every fault —
mask for mask, event for event.

Nested-draw property: a fault fires when a stream's uniform draw falls
below the configured rate, so for a *fixed seed and probe sequence*
the set of faulted probes at rate ``r1`` is a subset of the set at
``r2 >= r1``.  The degradation-curve experiments rely on this to get
monotone fault sets across their rate sweeps.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Fault kinds a schedule records in its trace.
FAULT_KINDS = ("probe.dropout", "probe.noise", "probe.error",
               "actuator.stuck", "supply.brownout", "visa.error",
               "visa.timeout", "churn.fail", "churn.recover")


@dataclass(frozen=True)
class FaultSpec:
    """Frozen description of one fault environment.

    All ``*_rate`` fields are per-event probabilities in ``[0, 1]``:
    per probed grid element for the data-plane faults, per backend call
    for ``probe_error_rate``, per VISA operation for the transport
    faults, and per station-epoch for churn.

    Attributes
    ----------
    probe_dropout_rate:
        Probability a probed element reports no power (NaN).
    noise_burst_rate, noise_burst_db:
        Probability an element is hit by an impulse-noise burst, and
        the burst magnitude in dB (applied with a random sign).
    probe_error_rate:
        Probability a backend *call* raises
        :class:`~repro.faults.errors.ProbeFaultError` (retryable).
    stuck_rate, stuck_voltage_v:
        Probability a probe's phase-shifter actuators latch at
        ``stuck_voltage_v`` instead of the commanded bias pair.
    quantize_step_v:
        Actuator quantization step (0 disables): commanded voltages
        snap to multiples of this step before being applied.
    brownout_rate, brownout_clip_v:
        Probability of a supply brownout clipping both commanded
        voltages to at most ``brownout_clip_v``.
    visa_error_rate, visa_timeout_rate:
        Probabilities a VISA write/query raises
        :class:`~repro.hardware.visa.VisaError` /
        :class:`~repro.hardware.visa.VisaTimeoutError`.
    station_mtbf_epochs, station_mttr_epochs:
        Station churn time constants, in scheduling epochs: a healthy
        station fails with probability ``1 / mtbf`` per epoch
        (``inf`` disables churn) and a failed one recovers with
        probability ``1 / mttr`` per epoch.
    """

    probe_dropout_rate: float = 0.0
    noise_burst_rate: float = 0.0
    noise_burst_db: float = 6.0
    probe_error_rate: float = 0.0
    stuck_rate: float = 0.0
    stuck_voltage_v: float = 0.0
    quantize_step_v: float = 0.0
    brownout_rate: float = 0.0
    brownout_clip_v: float = 18.0
    visa_error_rate: float = 0.0
    visa_timeout_rate: float = 0.0
    station_mtbf_epochs: float = math.inf
    station_mttr_epochs: float = 1.0

    def __post_init__(self) -> None:
        for name in ("probe_dropout_rate", "noise_burst_rate",
                     "probe_error_rate", "stuck_rate", "brownout_rate",
                     "visa_error_rate", "visa_timeout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.noise_burst_db < 0:
            raise ValueError("noise burst magnitude must be non-negative")
        if self.quantize_step_v < 0:
            raise ValueError("quantization step must be non-negative")
        if self.brownout_clip_v < 0:
            raise ValueError("brownout clip voltage must be non-negative")
        if self.station_mtbf_epochs < 1.0:
            raise ValueError("station MTBF must be >= 1 epoch")
        if self.station_mttr_epochs < 1.0:
            raise ValueError("station MTTR must be >= 1 epoch")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def perturbs_probes(self) -> bool:
        """Whether any data/actuator-plane probe fault can fire."""
        return (self.probe_dropout_rate > 0 or self.noise_burst_rate > 0
                or self.probe_error_rate > 0 or self.perturbs_voltages)

    @property
    def perturbs_voltages(self) -> bool:
        """Whether commanded bias voltages can differ from applied ones."""
        return (self.stuck_rate > 0 or self.quantize_step_v > 0
                or self.brownout_rate > 0)

    @property
    def churns_stations(self) -> bool:
        """Whether station churn is enabled."""
        return math.isfinite(self.station_mtbf_epochs)

    @property
    def active(self) -> bool:
        """Whether this spec can produce any fault at all.

        Inactive specs get the exact fast path everywhere: wrappers
        delegate without drawing from any stream, so a zero-fault run
        is bit-identical to (and as cheap as) the bare pipeline.
        """
        return (self.perturbs_probes or self.churns_stations
                or self.visa_error_rate > 0 or self.visa_timeout_rate > 0)

    def scaled(self, factor: float) -> "FaultSpec":
        """The same spec with every probability scaled (and clamped).

        The degradation experiments sweep one intensity knob over a
        fixed fault *mix*; scaling keeps the mix while moving the
        aggregate rate.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")

        def clamp(rate: float) -> float:
            return min(1.0, rate * factor)

        return replace(
            self,
            probe_dropout_rate=clamp(self.probe_dropout_rate),
            noise_burst_rate=clamp(self.noise_burst_rate),
            probe_error_rate=clamp(self.probe_error_rate),
            stuck_rate=clamp(self.stuck_rate),
            brownout_rate=clamp(self.brownout_rate),
            visa_error_rate=clamp(self.visa_error_rate),
            visa_timeout_rate=clamp(self.visa_timeout_rate))


#: The do-nothing spec (every wrapper's exact fast path).
NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class FaultEvent:
    """One recorded fault occurrence batch.

    ``count`` faults of ``kind`` fired among ``draws`` opportunities on
    the named stream; ``sequence`` is the running draw-call number of
    that stream, so two traces are equal only if the faults fired at
    the same points of the same call sequences.
    """

    stream: str
    kind: str
    sequence: int
    draws: int
    count: int


@dataclass(frozen=True)
class FaultTrace:
    """The ordered record of every fault a schedule produced."""

    events: Tuple[FaultEvent, ...] = ()

    def counts(self) -> Dict[str, int]:
        """Total faults fired, by kind."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + event.count
        return totals

    @property
    def total(self) -> int:
        """Total faults fired across all kinds."""
        return sum(event.count for event in self.events)

    def digest(self) -> int:
        """Stable checksum of the full trace (replay-equality pin)."""
        text = ";".join(
            f"{e.stream}|{e.kind}|{e.sequence}|{e.draws}|{e.count}"
            for e in self.events)
        return zlib.crc32(text.encode("utf-8"))


def stream_seed(seed: int, name: str) -> Tuple[int, int]:
    """Deterministic per-stream seed material: ``(seed, crc32(name))``.

    The one seed-derivation rule of the whole randomness plane: fault
    streams, churn processes and the load generator's per-station
    arrival streams all derive their RNG state this way, so streams
    are independent by name and adding a new named consumer never
    perturbs an existing one.
    """
    return (seed, zlib.crc32(name.encode("utf-8")))


#: Backwards-compatible private alias (pre-serving-layer name).
_stream_seed = stream_seed


class FaultSchedule:
    """A :class:`FaultSpec` bound to one master seed.

    The schedule is the single source of randomness for the whole fault
    plane.  Each consumer asks for a *named* stream; draws on one
    stream never affect another, and :meth:`replay` returns a fresh
    schedule whose streams reproduce every draw exactly.
    """

    def __init__(self, spec: FaultSpec = NO_FAULTS, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._sequences: Dict[str, int] = {}
        self._events: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    # Streams
    # ------------------------------------------------------------------ #
    def stream(self, name: str) -> np.random.Generator:
        """The named RNG stream (created on first use, then stateful)."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                stream_seed(self.seed, name))
            self._sequences[name] = 0
        return self._streams[name]

    def _next_sequence(self, name: str) -> int:
        self.stream(name)
        self._sequences[name] += 1
        return self._sequences[name]

    # ------------------------------------------------------------------ #
    # Draws
    # ------------------------------------------------------------------ #
    def fault_mask(self, name: str, shape, rate: float,
                   kind: Optional[str] = None) -> np.ndarray:
        """Boolean fault mask for one batch of opportunities.

        Faults fire where the stream's uniforms fall below ``rate``
        (the nested-draw contract), and the firing batch is recorded in
        the trace.  A zero rate still consumes draws, keeping call
        sequences aligned across a rate sweep.
        """
        sequence = self._next_sequence(name)
        uniforms = self.stream(name).random(tuple(shape))
        mask = uniforms < rate
        count = int(np.count_nonzero(mask))
        if count:
            self._events.append(FaultEvent(
                stream=name, kind=kind or name, sequence=sequence,
                draws=int(mask.size), count=count))
        return mask

    def fault_fires(self, name: str, rate: float,
                    kind: Optional[str] = None) -> bool:
        """One scalar fault draw (VISA operations, call-level errors)."""
        return bool(self.fault_mask(name, (), rate, kind=kind))

    def signs(self, name: str, shape) -> np.ndarray:
        """Random ±1 array (noise-burst polarity), from its own stream."""
        self._next_sequence(name)
        return np.where(self.stream(name).random(tuple(shape)) < 0.5,
                        -1.0, 1.0)

    def record(self, stream: str, kind: str, count: int = 1,
               draws: int = 1) -> None:
        """Record externally-detected fault events (quarantines, ...)."""
        if count:
            self._events.append(FaultEvent(
                stream=stream, kind=kind,
                sequence=self._next_sequence(stream), draws=draws,
                count=count))

    # ------------------------------------------------------------------ #
    # Trace / replay
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> FaultTrace:
        """Everything that has fired so far, in order."""
        return FaultTrace(events=tuple(self._events))

    def replay(self) -> "FaultSchedule":
        """A fresh schedule that reproduces this one's draws exactly."""
        return FaultSchedule(self.spec, self.seed)


__all__ = [
    "FAULT_KINDS",
    "NO_FAULTS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpec",
    "FaultTrace",
    "stream_seed",
]
