"""Typed fault errors and the retryable-error classification.

The resilience layer distinguishes *transient* faults — worth retrying
with backoff — from programming errors, which must propagate.  All
injected call-level faults derive from :class:`TransientFaultError`;
the VISA transport's :class:`~repro.hardware.visa.VisaTimeoutError`
(a timeout on an otherwise healthy session) is also classified as
transient, while a plain :class:`~repro.hardware.visa.VisaError`
(malformed SCPI, closed session) is not.
"""

from __future__ import annotations

from repro.hardware.visa import VisaTimeoutError


class TransientFaultError(RuntimeError):
    """A fault that may succeed on retry (the retryable base class)."""


class ProbeFaultError(TransientFaultError):
    """A measurement probe failed at the call level (I/O, not data)."""


#: Exception types a :class:`~repro.faults.retry.RetryPolicy` retries by
#: default.
DEFAULT_RETRYABLE = (TransientFaultError, VisaTimeoutError)


def is_retryable(error: BaseException,
                 retryable=DEFAULT_RETRYABLE) -> bool:
    """Whether an exception is worth retrying under a policy."""
    return isinstance(error, tuple(retryable))


__all__ = [
    "DEFAULT_RETRYABLE",
    "ProbeFaultError",
    "TransientFaultError",
    "is_retryable",
]
