"""Health accounting: what the resilience layer saw and did.

Sessions and schedulers thread a mutable :class:`HealthMonitor`
through their probe/retry/quarantine paths; at any point it snapshots
into a frozen, serializable :class:`HealthReport` — the ``health``
attribute experiment payloads and fleet results carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class HealthReport:
    """Frozen snapshot of one campaign's resilience accounting.

    Attributes
    ----------
    probes:
        Backend calls issued (after wrapping, before retries).
    retries:
        Retry attempts the :class:`~repro.faults.retry.RetryPolicy`
        consumed (0 when every call succeeded first try).
    faults_seen:
        Fault counts by kind (``"probe.dropout"``, ``"visa.timeout"``,
        ...), as recorded by the monitor's consumers.
    stations_quarantined:
        Stations currently quarantined, in quarantine order.
    degraded:
        Whether the campaign saw any fault, retry or quarantine.
    """

    probes: int = 0
    retries: int = 0
    faults_seen: Dict[str, int] = field(default_factory=dict)
    stations_quarantined: Tuple[str, ...] = ()

    @property
    def total_faults(self) -> int:
        """Total faults across all kinds."""
        return sum(self.faults_seen.values())

    @property
    def degraded(self) -> bool:
        """Whether anything at all went wrong."""
        return bool(self.total_faults or self.retries
                    or self.stations_quarantined)


class HealthMonitor:
    """Mutable counters the resilience layer updates as it works."""

    def __init__(self) -> None:
        self.probes = 0
        self.retries = 0
        self._faults: Dict[str, int] = {}
        self._quarantined: List[str] = []

    def record_probe(self, count: int = 1) -> None:
        """Count issued backend calls."""
        self.probes += count

    def record_retry(self, count: int = 1) -> None:
        """Count retry attempts."""
        self.retries += count

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Count observed faults of one kind."""
        if count:
            self._faults[kind] = self._faults.get(kind, 0) + count

    def record_quarantine(self, station: str) -> None:
        """Track a station entering quarantine (idempotent)."""
        if station not in self._quarantined:
            self._quarantined.append(station)

    def record_reinstate(self, station: str) -> None:
        """Track a station leaving quarantine."""
        if station in self._quarantined:
            self._quarantined.remove(station)

    @property
    def quarantined(self) -> Tuple[str, ...]:
        """Currently quarantined stations, in quarantine order."""
        return tuple(self._quarantined)

    def report(self) -> HealthReport:
        """Frozen snapshot of the current counters."""
        return HealthReport(
            probes=self.probes, retries=self.retries,
            faults_seen=dict(self._faults),
            stations_quarantined=self.quarantined)


__all__ = ["HealthMonitor", "HealthReport"]
