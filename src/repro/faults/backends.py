"""Fault-injecting measurement backends.

:class:`FaultyBackend` wraps any backend of the ``measure`` /
``measure_batch`` / ``measure_sweep`` / ``measure_grid`` protocol
stack and realizes the probe-plane faults of its
:class:`~repro.faults.spec.FaultSchedule`:

* **actuator faults** perturb the *commanded* bias voltages before the
  probe — quantization snap, stuck-at latching, supply-brownout
  clipping — so the wrapped backend measures the operating point the
  broken hardware actually applied;
* **data faults** corrupt the *reported* powers after the probe —
  impulse-noise bursts (± dB) and dropouts (NaN);
* **call faults** raise a retryable
  :class:`~repro.faults.errors.ProbeFaultError` before any probing
  happens (the hook :class:`~repro.faults.retry.RetryingBackend`
  exists for).

Every draw comes from a named stream of the schedule, so traces replay
exactly, and an *inactive* spec takes a pure delegation fast path: no
streams are consumed and results are bit-identical to the bare
backend (pinned by the zero-fault parity suite and the <5% overhead
benchmark).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.channel.grid import ProbeGrid
from repro.faults.errors import ProbeFaultError
from repro.faults.health import HealthMonitor
from repro.faults.spec import FaultSchedule


class FaultyBackend:
    """A measurement backend with scheduled faults injected.

    Parameters
    ----------
    backend:
        The backend to wrap.  ``measure`` / ``measure_batch`` are
        required; ``measure_sweep`` / ``measure_grid`` are forwarded
        only when the wrapped backend provides them.
    schedule:
        The fault plan and its seeded streams.
    monitor:
        Optional health monitor tallying probes and faults seen.
    """

    def __init__(self, backend, schedule: FaultSchedule,
                 monitor: Optional[HealthMonitor] = None):
        self.backend = backend
        self.schedule = schedule
        self.monitor = monitor
        # Pure-delegation fast path: nothing to draw, nothing to copy.
        self._inactive = not schedule.spec.perturbs_probes

    # ------------------------------------------------------------------ #
    # Fault machinery
    # ------------------------------------------------------------------ #
    def _note(self, kind: str, count: int) -> None:
        if self.monitor is not None:
            self.monitor.record_fault(kind, count)

    def _maybe_raise(self) -> None:
        """Call-level fault: raise before probing (retryable)."""
        spec = self.schedule.spec
        if spec.probe_error_rate <= 0:
            return
        if self.schedule.fault_fires("probe.error", spec.probe_error_rate):
            self._note("probe.error", 1)
            raise ProbeFaultError("injected probe I/O fault")

    def _perturb_voltages(self, vx, vy,
                          shape: Optional[Tuple[int, ...]] = None):
        """Apply actuator/supply faults to the commanded bias pair.

        ``shape`` (when given) is the full per-probe shape the fault
        masks must cover; the voltages are broadcast up to it so each
        probed element draws its own fault.
        """
        spec = self.schedule.spec
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        if not spec.perturbs_voltages:
            return vx, vy
        if shape is None:
            shape = np.broadcast_shapes(vx.shape, vy.shape)
        vx_b = np.array(np.broadcast_to(vx, shape), dtype=float)
        vy_b = np.array(np.broadcast_to(vy, shape), dtype=float)
        if spec.quantize_step_v > 0:
            step = spec.quantize_step_v
            vx_b = np.round(vx_b / step) * step
            vy_b = np.round(vy_b / step) * step
        if spec.stuck_rate > 0:
            mask = self.schedule.fault_mask("actuator.stuck", shape,
                                            spec.stuck_rate)
            count = int(np.count_nonzero(mask))
            if count:
                vx_b = np.where(mask, spec.stuck_voltage_v, vx_b)
                vy_b = np.where(mask, spec.stuck_voltage_v, vy_b)
                self._note("actuator.stuck", count)
        if spec.brownout_rate > 0:
            mask = self.schedule.fault_mask("supply.brownout", shape,
                                            spec.brownout_rate)
            count = int(np.count_nonzero(mask))
            if count:
                vx_b = np.where(mask, np.minimum(vx_b, spec.brownout_clip_v),
                                vx_b)
                vy_b = np.where(mask, np.minimum(vy_b, spec.brownout_clip_v),
                                vy_b)
                self._note("supply.brownout", count)
        return vx_b, vy_b

    def _corrupt_powers(self, powers) -> np.ndarray:
        """Apply data-plane faults to reported powers."""
        spec = self.schedule.spec
        powers = np.asarray(powers, dtype=float)
        shape = powers.shape
        if spec.noise_burst_rate > 0:
            mask = self.schedule.fault_mask("probe.noise", shape,
                                            spec.noise_burst_rate)
            # Signs are drawn unconditionally so the stream stays
            # aligned across rate sweeps (the nested-draw contract).
            signs = self.schedule.signs("probe.noise.sign", shape)
            count = int(np.count_nonzero(mask))
            if count:
                powers = np.where(mask,
                                  powers + signs * spec.noise_burst_db,
                                  powers)
                self._note("probe.noise", count)
        if spec.probe_dropout_rate > 0:
            mask = self.schedule.fault_mask("probe.dropout", shape,
                                            spec.probe_dropout_rate)
            count = int(np.count_nonzero(mask))
            if count:
                powers = np.where(mask, np.nan, powers)
                self._note("probe.dropout", count)
        return powers

    def _count_probe(self) -> None:
        if self.monitor is not None:
            self.monitor.record_probe()

    # ------------------------------------------------------------------ #
    # The probe protocol stack
    # ------------------------------------------------------------------ #
    def measure(self, vx: float, vy: float) -> float:
        """One scalar probe through the fault plane."""
        if self._inactive:
            return self.backend.measure(vx, vy)
        self._count_probe()
        self._maybe_raise()
        vx_f, vy_f = self._perturb_voltages(vx, vy, shape=())
        power = self.backend.measure(float(vx_f), float(vy_f))
        return float(self._corrupt_powers(power))

    def measure_batch(self, vx, vy) -> np.ndarray:
        """One batched probe through the fault plane."""
        if self._inactive:
            return self.backend.measure_batch(vx, vy)
        self._count_probe()
        self._maybe_raise()
        vx_f, vy_f = self._perturb_voltages(vx, vy)
        return self._corrupt_powers(self.backend.measure_batch(vx_f, vy_f))

    def measure_sweep(self, axis: str, values, vx=0.0, vy=0.0) -> np.ndarray:
        """One sweep-axis probe through the fault plane."""
        if self._inactive:
            return self.backend.measure_sweep(axis, values, vx=vx, vy=vy)
        self._count_probe()
        self._maybe_raise()
        shape = np.broadcast_shapes(np.shape(values), np.shape(vx),
                                    np.shape(vy))
        vx_f, vy_f = self._perturb_voltages(vx, vy, shape=shape)
        powers = self.backend.measure_sweep(axis, values, vx=vx_f, vy=vy_f)
        return self._corrupt_powers(powers)

    def measure_grid(self, grid: ProbeGrid) -> np.ndarray:
        """One N-D grid probe through the fault plane.

        Actuator faults rebuild the grid with the *applied* voltages
        (expanded to the full grid shape so every operating point
        draws independently); data faults corrupt the evaluated powers.
        """
        if self._inactive:
            return self.backend.measure_grid(grid)
        self._count_probe()
        self._maybe_raise()
        spec = self.schedule.spec
        if spec.perturbs_voltages:
            shape = grid.shape
            vx = grid.expand("vx") if "vx" in grid else np.zeros(shape)
            vy = grid.expand("vy") if "vy" in grid else np.zeros(shape)
            vx_f, vy_f = self._perturb_voltages(vx, vy, shape=shape)
            others = {axis.name: axis.shaped for axis in grid.axes
                      if axis.name not in ("vx", "vy")}
            grid = ProbeGrid.aligned(**others, vx=vx_f, vy=vy_f)
        powers = self.backend.measure_grid(grid)
        return self._corrupt_powers(powers)


__all__ = ["FaultyBackend"]
