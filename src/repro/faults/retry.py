"""Retry with exponential backoff on a virtual clock.

:class:`RetryPolicy` is the typed answer to every hand-rolled
``while True: try/except`` loop (lint rule RPR006 flags those outside
this package): exponential backoff with bounded jitter, a hard
deadline budget, and a typed retryable-error classification — only
:data:`~repro.faults.errors.DEFAULT_RETRYABLE` faults are retried,
programming errors propagate immediately.

Like the supply simulation, the policy keeps a *virtual* clock: waits
are accounted (``RetryOutcome.waited_s``, bounded by ``deadline_s``)
but never slept, so retry-heavy campaigns run at simulation speed and
stay deterministic.

:class:`RetryingBackend` wraps any measurement backend so every probe
protocol (``measure`` / ``measure_batch`` / ``measure_sweep`` /
``measure_grid``) runs under the policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

import numpy as np

from repro.faults.errors import DEFAULT_RETRYABLE
from repro.faults.health import HealthMonitor
from repro.faults.spec import FaultSchedule


@dataclass(frozen=True)
class RetryOutcome:
    """What one policy-governed call cost.

    Attributes
    ----------
    value:
        The wrapped callable's return value.
    attempts:
        Calls issued (1 = first try succeeded).
    waited_s:
        Total virtual backoff time consumed (never exceeds the
        policy's ``deadline_s``).
    """

    value: Any
    attempts: int
    waited_s: float

    @property
    def retries(self) -> int:
        """Retry attempts beyond the first call."""
        return self.attempts - 1


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter with a deadline budget.

    Attributes
    ----------
    max_attempts:
        Total attempts (first call included).
    base_delay_s:
        Backoff before the first retry.
    backoff_factor:
        Multiplier per further retry (>= 1, so nominal delays are
        monotonically non-decreasing).
    jitter_fraction:
        Bounded jitter: each delay is drawn uniformly from
        ``[nominal, nominal * (1 + jitter_fraction)]``.
    deadline_s:
        Hard budget on total (virtual) backoff time; a retry whose
        delay would exceed it re-raises instead.
    retryable:
        Exception classes worth retrying; everything else propagates
        immediately.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.02
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    deadline_s: float = math.inf
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0:
            raise ValueError("base delay must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1 (delays may "
                             "never shrink)")
        if self.jitter_fraction < 0:
            raise ValueError("jitter fraction must be non-negative")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        object.__setattr__(self, "retryable", tuple(self.retryable))

    # ------------------------------------------------------------------ #
    # Delay schedule
    # ------------------------------------------------------------------ #
    def nominal_delay_s(self, attempt: int) -> float:
        """Jitter-free backoff after the ``attempt``-th failed call."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        return self.base_delay_s * self.backoff_factor ** (attempt - 1)

    def backoff_delays(self) -> Tuple[float, ...]:
        """The full jitter-free delay schedule (one per possible retry)."""
        return tuple(self.nominal_delay_s(attempt)
                     for attempt in range(1, self.max_attempts))

    def delay_s(self, attempt: int,
                rng: Optional[np.random.Generator] = None) -> float:
        """The (possibly jittered) backoff after one failed attempt.

        Without an ``rng`` the delay is the nominal schedule value;
        with one, jitter is drawn from the generator, so a fixed-seed
        generator reproduces the exact delay sequence.
        """
        nominal = self.nominal_delay_s(attempt)
        if rng is None or self.jitter_fraction == 0 or nominal == 0:
            return nominal
        return nominal * (1.0 + self.jitter_fraction * float(rng.random()))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, call: Callable[[], Any],
                rng: Optional[np.random.Generator] = None,
                monitor: Optional[HealthMonitor] = None) -> RetryOutcome:
        """Run ``call`` under the policy; returns the full outcome.

        Retries only the configured ``retryable`` exceptions, backs off
        on the virtual clock, and re-raises the last error once the
        attempt budget or the deadline is exhausted.  ``waited_s`` of
        the returned outcome never exceeds ``deadline_s``.
        """
        attempts = 0
        waited_s = 0.0
        while True:
            attempts += 1
            try:
                value = call()
            except self.retryable as error:
                if attempts >= self.max_attempts:
                    raise
                delay = self.delay_s(attempts, rng=rng)
                if waited_s + delay > self.deadline_s:
                    raise error
                waited_s += delay
                if monitor is not None:
                    monitor.record_retry()
                continue
            return RetryOutcome(value=value, attempts=attempts,
                                waited_s=waited_s)

    def call(self, call: Callable[[], Any],
             rng: Optional[np.random.Generator] = None,
             monitor: Optional[HealthMonitor] = None) -> Any:
        """:meth:`execute`, returning just the wrapped value."""
        return self.execute(call, rng=rng, monitor=monitor).value


class RetryingBackend:
    """A measurement backend whose probes run under a retry policy.

    Wraps any backend of the ``measure`` / ``measure_batch`` /
    ``measure_sweep`` / ``measure_grid`` stack (richer protocols are
    forwarded only if the wrapped backend provides them).  Jitter draws
    come from the fault schedule's ``"retry.jitter"`` stream when a
    schedule is given, keeping retry timing inside the replayable
    trace; retries and waits are tallied on the monitor.
    """

    def __init__(self, backend, policy: Optional[RetryPolicy] = None,
                 monitor: Optional[HealthMonitor] = None,
                 schedule: Optional[FaultSchedule] = None):
        self.backend = backend
        self.policy = policy if policy is not None else RetryPolicy()
        self.monitor = monitor
        self._rng = (schedule.stream("retry.jitter")
                     if schedule is not None else None)

    def _guarded(self, name: str, *args, **kwargs):
        probe = getattr(self.backend, name)
        if self.monitor is not None:
            self.monitor.record_probe()
        return self.policy.call(lambda: probe(*args, **kwargs),
                                rng=self._rng, monitor=self.monitor)

    def measure(self, vx: float, vy: float) -> float:
        """One scalar probe under the retry policy."""
        return float(self._guarded("measure", vx, vy))

    def measure_batch(self, vx, vy) -> np.ndarray:
        """One batched probe under the retry policy."""
        return self._guarded("measure_batch", vx, vy)

    def measure_sweep(self, axis: str, values, vx=0.0, vy=0.0) -> np.ndarray:
        """One sweep-axis probe under the retry policy."""
        return self._guarded("measure_sweep", axis, values, vx, vy)

    def measure_grid(self, grid) -> np.ndarray:
        """One N-D grid probe under the retry policy."""
        return self._guarded("measure_grid", grid)


__all__ = ["RetryOutcome", "RetryPolicy", "RetryingBackend"]
