"""Deterministic fault injection and resilience for the control stack.

Every layer of the reproduction above the physics assumes a perfect
world: probes never fail, supplies never glitch, stations never drop,
and Algorithm 1 trusts every measurement it sees.  The paper's surface
controller must converge on real hardware with noisy RSSI reads and
flaky links, so this package makes failure a first-class, *measured*
quantity:

* **Injection** — :class:`FaultSpec` / :class:`FaultSchedule` describe
  a deterministic, seedable fault plan (probe dropouts, noise bursts,
  stuck/quantized actuators, supply brownouts, VISA I/O errors and
  timeouts, station churn).  The plan is realized by wrappers:
  :class:`FaultyBackend` over the ``measure`` / ``measure_batch`` /
  ``measure_sweep`` / ``measure_grid`` protocol stack,
  :class:`FaultyVisaSession` over the simulated VISA transport and
  :class:`StationChurn` over a fleet's station set.  All draws come
  from named seed streams of one schedule, so every fault trace
  replays exactly.
* **Resilience** — :class:`RetryPolicy` (exponential backoff + jitter
  on a virtual clock, deadline budget, typed retryable-error
  classification) wrapped around probes by :class:`RetryingBackend`;
  :class:`ProbePolicy` (median-of-k re-probing with NaN-outlier
  rejection) threaded through the
  :class:`~repro.core.controller.CentralizedController` grid paths;
  and station quarantine with last-known-good bias in
  :class:`~repro.api.fleet.FleetSession`.
* **Accounting** — a :class:`HealthMonitor` collects retries, faults
  seen and degraded stations into a serializable
  :class:`HealthReport`, so sessions can answer "how broken was the
  world?" after every campaign.

The ``fault_degradation`` and ``fleet_churn`` experiments
(:mod:`repro.experiments.robustness`) turn these hooks into measured
degradation curves with graceful-degradation check gates.
"""

from repro.faults.backends import FaultyBackend
from repro.faults.churn import StationChurn
from repro.faults.errors import ProbeFaultError, TransientFaultError
from repro.faults.health import HealthMonitor, HealthReport
from repro.faults.policy import ProbePolicy
from repro.faults.retry import RetryOutcome, RetryPolicy, RetryingBackend
from repro.faults.spec import (
    NO_FAULTS,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    FaultTrace,
    stream_seed,
)
from repro.faults.visa import FaultyVisaSession

__all__ = [
    "NO_FAULTS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpec",
    "FaultTrace",
    "FaultyBackend",
    "FaultyVisaSession",
    "HealthMonitor",
    "HealthReport",
    "ProbeFaultError",
    "ProbePolicy",
    "RetryOutcome",
    "RetryPolicy",
    "RetryingBackend",
    "StationChurn",
    "TransientFaultError",
    "stream_seed",
]
