"""Faulty VISA transport: scheduled I/O errors and timeouts.

:class:`FaultyVisaSession` wraps a
:class:`~repro.hardware.visa.SimulatedVisaSession` (or any object with
its ``write`` / ``query`` / ``close`` surface) and injects transport
faults from the schedule's ``"visa.error"`` / ``"visa.timeout"``
streams *before* delegating, mirroring a flaky USB/GPIB cable: the
command never reaches the instrument, the session stays healthy, and a
retry may succeed.  Timeouts raise the retryable
:class:`~repro.hardware.visa.VisaTimeoutError`; hard I/O errors raise
plain :class:`~repro.hardware.visa.VisaError` (not retryable — a real
driver surfaces those for operator attention).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.health import HealthMonitor
from repro.faults.spec import FaultSchedule
from repro.hardware.visa import VisaError, VisaTimeoutError


class FaultyVisaSession:
    """A VISA session whose I/O fails on schedule.

    Context management, ``close()`` idempotency and closed-session
    semantics all delegate to the wrapped session, so the regression
    guarantees of :class:`~repro.hardware.visa.SimulatedVisaSession`
    hold here too.
    """

    def __init__(self, session, schedule: FaultSchedule,
                 monitor: Optional[HealthMonitor] = None):
        self.session = session
        self.schedule = schedule
        self.monitor = monitor
        spec = schedule.spec
        self._inactive = (spec.visa_error_rate <= 0
                          and spec.visa_timeout_rate <= 0)

    # ------------------------------------------------------------------ #
    # Delegated surface
    # ------------------------------------------------------------------ #
    @property
    def resource_name(self) -> str:
        """The wrapped session's VISA resource string."""
        return self.session.resource_name

    @property
    def is_open(self) -> bool:
        """Whether the wrapped session is open."""
        return self.session.is_open

    @property
    def command_log(self):
        """Commands the instrument actually received."""
        return self.session.command_log

    def _maybe_fail(self, operation: str) -> None:
        if self._inactive:
            return
        spec = self.schedule.spec
        if spec.visa_timeout_rate > 0 and self.schedule.fault_fires(
                "visa.timeout", spec.visa_timeout_rate):
            if self.monitor is not None:
                self.monitor.record_fault("visa.timeout")
            raise VisaTimeoutError(
                f"injected timeout on {operation} to {self.resource_name}")
        if spec.visa_error_rate > 0 and self.schedule.fault_fires(
                "visa.error", spec.visa_error_rate):
            if self.monitor is not None:
                self.monitor.record_fault("visa.error")
            raise VisaError(
                f"injected I/O error on {operation} to {self.resource_name}")

    def write(self, command: str) -> None:
        """Send a SCPI command, possibly failing on schedule first."""
        self._maybe_fail("write")
        self.session.write(command)

    def query(self, command: str) -> str:
        """Send a SCPI query, possibly failing on schedule first."""
        self._maybe_fail("query")
        return self.session.query(command)

    def close(self) -> None:
        """Close the wrapped session (idempotent)."""
        self.session.close()

    def __enter__(self) -> "FaultyVisaSession":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


__all__ = ["FaultyVisaSession"]
