"""Station churn: scheduled per-station failures and recoveries.

A fleet of IoT stations is never all-up: devices reboot, move out of
range, run out of battery.  :class:`StationChurn` models that as a
per-station two-state Markov process in *epoch* time — each scheduling
epoch, a healthy station fails with probability ``1 / MTBF`` and a
failed one recovers with probability ``1 / MTTR`` (both in epochs,
from the :class:`~repro.faults.spec.FaultSpec`).  Draws come from the
schedule's ``"churn"`` stream in station order, so a fixed seed
reproduces the exact up/down timeline, and because failures fire when
a uniform falls below ``1 / MTBF``, the *set of failure events* at a
higher churn rate contains the set at a lower rate (nested draws) —
the property the ``fleet_churn`` degradation gate leans on.

The adapter is deliberately stateful-but-replayable: drive it with
:meth:`advance` once per epoch and feed the resulting up/down sets to
:meth:`~repro.api.fleet.FleetSession.apply_churn`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.faults.spec import FaultSchedule


class StationChurn:
    """Epoch-stepped up/down process over a fixed station set."""

    def __init__(self, schedule: FaultSchedule,
                 station_names: Sequence[str]):
        self.schedule = schedule
        self.station_names: Tuple[str, ...] = tuple(station_names)
        if not self.station_names:
            raise ValueError("churn needs at least one station")
        if len(set(self.station_names)) != len(self.station_names):
            raise ValueError("station names must be unique")
        self._up: Dict[str, bool] = {name: True
                                     for name in self.station_names}
        self.epoch = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def up_stations(self) -> Tuple[str, ...]:
        """Currently healthy stations, in fleet order."""
        return tuple(name for name in self.station_names if self._up[name])

    @property
    def down_stations(self) -> Tuple[str, ...]:
        """Currently failed stations, in fleet order."""
        return tuple(name for name in self.station_names
                     if not self._up[name])

    def is_up(self, name: str) -> bool:
        """Whether one station is currently healthy."""
        return self._up[name]

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def advance(self) -> Tuple[str, ...]:
        """Advance one epoch; returns the stations up for the new epoch.

        One uniform is drawn per station per epoch regardless of state
        or rate, keeping the ``"churn"`` stream aligned across rate
        sweeps (the nested-draw contract): a station's draw below
        ``1 / MTBF`` fails it when healthy, and below ``1 / MTTR``
        recovers it when failed.
        """
        spec = self.schedule.spec
        fail_rate = (1.0 / spec.station_mtbf_epochs
                     if spec.churns_stations else 0.0)
        recover_rate = 1.0 / spec.station_mttr_epochs
        self.epoch += 1
        draws = self.schedule.stream("churn").random(
            len(self.station_names))
        failures = 0
        recoveries = 0
        for name, draw in zip(self.station_names, draws):
            if self._up[name]:
                if draw < fail_rate:
                    self._up[name] = False
                    failures += 1
            elif draw < recover_rate:
                self._up[name] = True
                recoveries += 1
        if failures:
            self.schedule.record("churn", "churn.fail", failures,
                                 draws=len(self.station_names))
        if recoveries:
            self.schedule.record("churn", "churn.recover", recoveries,
                                 draws=len(self.station_names))
        return self.up_stations


__all__ = ["StationChurn"]
