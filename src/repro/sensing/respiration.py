"""Human-respiration sensing model (paper Sec. 5.2.2, Fig. 23).

The paper's sensing experiment: transmitter and receiver 70 cm apart,
the metasurface 2 m away from the pair's centre, a human subject between
the endpoints and the surface.  Breathing moves the chest by a few
millimetres, which modulates the path length (and hence phase/amplitude)
of the signal reflected off the subject.  At 5 mW transmit power the
modulation is buried in noise without the metasurface; with the surface
redirecting additional energy through the subject's vicinity, the
breathing signal becomes visible in the received-power trace.

The model keeps the same structure:

* a direct Tx->Rx path (static),
* a path that scatters off the subject's chest, whose length oscillates
  with breathing,
* optionally a path that additionally reflects off the metasurface,
  boosting the energy that illuminates the subject,
* receiver thermal noise, which is what hides the breathing at low
  transmit power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.freespace import free_space_path_loss_db
from repro.channel.noise import thermal_noise_dbm
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ, SPEED_OF_LIGHT
from repro.metasurface.surface import Metasurface
from repro.units import (
    db_to_amplitude,
    dbm_to_milliwatts,
    linear_to_db,
    milliwatts_to_dbm,
)


@dataclass(frozen=True)
class BreathingSubject:
    """A breathing human target.

    Attributes
    ----------
    respiration_rate_hz:
        Breathing rate (0.2-0.3 Hz for adults at rest).
    chest_displacement_m:
        Peak-to-peak chest wall displacement (typically ~5 mm).
    radar_cross_section_db:
        Effective reflectivity of the torso relative to an isotropic
        scatterer (negative: most energy is absorbed/scattered away).
    distance_from_tx_m, distance_from_rx_m:
        Geometry of the subject relative to the endpoints.
    """

    respiration_rate_hz: float = 0.25
    chest_displacement_m: float = 0.005
    radar_cross_section_db: float = -12.0
    distance_from_tx_m: float = 1.0
    distance_from_rx_m: float = 1.2

    def __post_init__(self) -> None:
        if self.respiration_rate_hz <= 0:
            raise ValueError("respiration rate must be positive")
        if self.chest_displacement_m <= 0:
            raise ValueError("chest displacement must be positive")
        if self.distance_from_tx_m <= 0 or self.distance_from_rx_m <= 0:
            raise ValueError("subject distances must be positive")

    def chest_offset_m(self, time_s: np.ndarray) -> np.ndarray:
        """Chest-wall displacement from its rest position over time."""
        return (0.5 * self.chest_displacement_m *
                np.sin(2.0 * math.pi * self.respiration_rate_hz *
                       np.asarray(time_s, dtype=float)))


@dataclass(frozen=True)
class TracedBreathingSubject:
    """A breathing target driven by a displacement trace.

    The trace-driven twin of :class:`BreathingSubject`: instead of a
    built-in sinusoid, chest displacement comes from any object with a
    ``sample(times)`` method returning metres — typically a
    :class:`repro.world.traces.RespirationTrace` (irregular breathing,
    recorded curves).  Duck-types into
    :class:`RespirationSensingLink` via ``chest_offset_m`` and
    ``radar_cross_section_db``.
    """

    trace: object
    radar_cross_section_db: float = -12.0
    distance_from_tx_m: float = 1.0
    distance_from_rx_m: float = 1.2

    def __post_init__(self) -> None:
        if not hasattr(self.trace, "sample"):
            raise TypeError("trace must expose a sample(times) method")
        if self.distance_from_tx_m <= 0 or self.distance_from_rx_m <= 0:
            raise ValueError("subject distances must be positive")

    def chest_offset_m(self, time_s: np.ndarray) -> np.ndarray:
        """Chest-wall displacement sampled from the trace."""
        return np.asarray(self.trace.sample(np.asarray(time_s, dtype=float)),
                          dtype=float)


@dataclass(frozen=True)
class SensingTrace:
    """A received-power trace from a sensing capture."""

    timestamps_s: np.ndarray
    power_dbm: np.ndarray
    with_metasurface: bool

    @property
    def duration_s(self) -> float:
        """Trace duration."""
        if self.timestamps_s.size == 0:
            return 0.0
        return float(self.timestamps_s[-1] - self.timestamps_s[0])

    @property
    def peak_to_peak_db(self) -> float:
        """Peak-to-peak swing of the power trace."""
        if self.power_dbm.size == 0:
            return 0.0
        return float(np.max(self.power_dbm) - np.min(self.power_dbm))


class RespirationSensingLink:
    """Simulates the paper's respiration-sensing experiment.

    Parameters
    ----------
    subject:
        The breathing target.
    metasurface:
        Surface used in reflective mode to boost the sensing path; may be
        ``None`` for the baseline run.
    tx_power_dbm:
        Transmit power (the paper reduces it to 5 mW ~ 7 dBm to find the
        point where breathing is undetectable without the surface).
    tx_rx_separation_m:
        Distance between transmitter and receiver (70 cm in the paper).
    surface_distance_m:
        Distance from the transceiver pair's centre to the surface (2 m).
    frequency_hz:
        Carrier frequency.
    bandwidth_hz:
        Receiver observation bandwidth for the power trace.
    antenna_gain_dbi:
        Gain of the (identical) Tx/Rx antennas.
    optimal_bias_v:
        Bias pair the controller found for the reflective configuration.
    illumination_suppression_db:
        How far below the static (direct) path the subject-scattered path
        sits *without* the metasurface: the subject is only illuminated
        by the edge of the antenna beams and re-scatters a small fraction
        (radar cross-section) of that.  With the surface deployed, the
        redirected specular beam floods the monitored area and recovers
        ``surface_illumination_gain_db`` of that suppression — this is
        the mechanism by which Fig. 23's breathing ripple emerges from
        the noise.
    power_estimation_jitter_db:
        Standard deviation of the per-sample received-power estimate
        (finite averaging, gain drift); this is the noise floor the
        breathing ripple has to beat to be detectable.
    """

    def __init__(self,
                 subject: BreathingSubject,
                 metasurface: Optional[Metasurface] = None,
                 tx_power_dbm: float = 7.0,
                 tx_rx_separation_m: float = 0.70,
                 surface_distance_m: float = 2.0,
                 frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ,
                 bandwidth_hz: float = 1e3,
                 antenna_gain_dbi: float = 10.0,
                 optimal_bias_v: tuple = (30.0, 0.0),
                 noise_figure_db: float = 6.0,
                 illumination_suppression_db: float = 38.0,
                 surface_illumination_gain_db: float = 42.0,
                 power_estimation_jitter_db: float = 0.35,
                 reference_tx_power_dbm: float = 7.0,
                 seed: int = 11):
        if tx_rx_separation_m <= 0 or surface_distance_m <= 0:
            raise ValueError("geometry distances must be positive")
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if illumination_suppression_db < 0 or surface_illumination_gain_db < 0:
            raise ValueError("suppression/gain terms must be non-negative")
        if power_estimation_jitter_db < 0:
            raise ValueError("jitter must be non-negative")
        self.subject = subject
        self.metasurface = metasurface
        self.tx_power_dbm = tx_power_dbm
        self.tx_rx_separation_m = tx_rx_separation_m
        self.surface_distance_m = surface_distance_m
        self.frequency_hz = frequency_hz
        self.bandwidth_hz = bandwidth_hz
        self.antenna_gain_dbi = antenna_gain_dbi
        self.optimal_bias_v = optimal_bias_v
        self.noise_figure_db = noise_figure_db
        self.illumination_suppression_db = illumination_suppression_db
        self.surface_illumination_gain_db = surface_illumination_gain_db
        self.power_estimation_jitter_db = power_estimation_jitter_db
        self.reference_tx_power_dbm = reference_tx_power_dbm
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Path amplitudes
    # ------------------------------------------------------------------ #
    def _amplitude_for_budget_db(self, budget_db: float) -> float:
        """Field amplitude (sqrt of linear mW) for a link budget in dB."""
        return float(db_to_amplitude(budget_db))

    def _static_path_budget_db(self) -> float:
        """Direct Tx->Rx path budget (does not involve the subject)."""
        return (self.tx_power_dbm + 2.0 * self.antenna_gain_dbi -
                free_space_path_loss_db(self.tx_rx_separation_m,
                                        self.frequency_hz))

    def _subject_path_budget_db(self, via_surface: bool) -> float:
        """Budget of the path that scatters off the subject's chest.

        Referenced to the static path: without the surface the subject is
        weakly illuminated (beam edge, small radar cross-section); with
        the surface the redirected specular reflection floods the
        monitored area, recovering most of that suppression.  The surface
        contribution is scaled by its reflection efficiency at the
        controller's chosen bias pair, so a lossy or badly tuned surface
        helps less.
        """
        budget = self._static_path_budget_db() - self.illumination_suppression_db
        budget += self.subject.radar_cross_section_db
        if via_surface and self.metasurface is not None:
            vx, vy = self.optimal_bias_v
            surface_efficiency = self.metasurface.reflection_efficiency(
                self.frequency_hz, vx, vy, "x")
            budget += (self.surface_illumination_gain_db +
                       float(linear_to_db(max(surface_efficiency, 1e-9))))
        return budget

    # ------------------------------------------------------------------ #
    # Trace synthesis
    # ------------------------------------------------------------------ #
    def capture(self, duration_s: float = 60.0,
                sample_rate_hz: float = 20.0) -> SensingTrace:
        """Capture a received-power trace (paper Fig. 23 is 60 s)."""
        if duration_s <= 0 or sample_rate_hz <= 0:
            raise ValueError("duration and sample rate must be positive")
        timestamps = np.arange(0.0, duration_s, 1.0 / sample_rate_hz)
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        chest = self.subject.chest_offset_m(timestamps)
        # Breathing modulates the subject-path's electrical length by twice
        # the chest displacement (out and back).
        breathing_phase = 4.0 * math.pi * chest / wavelength
        static_amplitude = self._amplitude_for_budget_db(
            self._static_path_budget_db())
        subject_amplitude = self._amplitude_for_budget_db(
            self._subject_path_budget_db(
                via_surface=self.metasurface is not None))
        # The static phase offset between the two paths sets how linearly
        # the chest motion maps onto received power; 1.2 rad is close to
        # the quadrature point where the sensitivity is highest.
        field = (static_amplitude +
                 subject_amplitude * np.exp(1j * (breathing_phase + 1.2)))
        signal_mw = np.abs(field) ** 2
        # Thermal floor plus the receiver's power-estimation jitter.  At
        # low transmit power the estimation jitter (which does not scale
        # with the signal level in dB terms) is what buries the ripple.
        noise_dbm = thermal_noise_dbm(self.bandwidth_hz,
                                      noise_figure_db=self.noise_figure_db)
        noise_mw = float(dbm_to_milliwatts(noise_dbm))
        total_mw = np.maximum(signal_mw + noise_mw, 1e-20)
        # The estimation jitter grows as the signal approaches the floor:
        # scale it by the ratio of reference to actual transmit power so
        # that reducing the paper's 5 mW further degrades detectability.
        jitter_scale = max(1.0, float(db_to_amplitude(
            self.reference_tx_power_dbm - self.tx_power_dbm)))
        jitter_db = self._rng.normal(
            0.0, self.power_estimation_jitter_db * jitter_scale,
            size=total_mw.size)
        power_dbm = milliwatts_to_dbm(total_mw) + jitter_db
        return SensingTrace(timestamps_s=timestamps, power_dbm=power_dbm,
                            with_metasurface=self.metasurface is not None)


__all__ = ["BreathingSubject", "RespirationSensingLink", "SensingTrace",
           "TracedBreathingSubject"]
