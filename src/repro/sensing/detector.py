"""Respiration-rate detection from received-power traces.

Turns the power traces produced by
:class:`~repro.sensing.respiration.RespirationSensingLink` into a
breathing-rate estimate and a detectability verdict, mirroring how the
paper judges Fig. 23 ("the target's respiration rate is detectable under
a low transmit power configuration" only with the metasurface present).

The detector is a conventional spectral-peak estimator: detrend the
trace, take the periodogram over the physiological band (0.1-0.5 Hz) and
compare the strongest peak against the out-of-band noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sensing.respiration import SensingTrace
from repro.units import linear_to_db


@dataclass(frozen=True)
class RespirationReading:
    """Result of analysing one sensing trace."""

    estimated_rate_hz: Optional[float]
    peak_to_noise_db: float
    detected: bool

    @property
    def estimated_rate_bpm(self) -> Optional[float]:
        """Breaths per minute, if a rate was detected."""
        if self.estimated_rate_hz is None:
            return None
        return self.estimated_rate_hz * 60.0


class RespirationDetector:
    """Spectral-peak respiration detector.

    Parameters
    ----------
    band_hz:
        Physiological respiration band searched for a peak.
    detection_threshold_db:
        Minimum in-band peak-to-out-of-band-floor ratio to declare the
        breathing detectable.
    """

    def __init__(self, band_hz: Tuple[float, float] = (0.1, 0.5),
                 detection_threshold_db: float = 9.0):
        low, high = band_hz
        if not (0.0 < low < high):
            raise ValueError("band must satisfy 0 < low < high")
        if detection_threshold_db <= 0:
            raise ValueError("detection threshold must be positive")
        self.band_hz = band_hz
        self.detection_threshold_db = detection_threshold_db

    # ------------------------------------------------------------------ #
    # Spectral machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _periodogram(trace: SensingTrace) -> Tuple[np.ndarray, np.ndarray]:
        """One-sided periodogram of the detrended power trace."""
        power = np.asarray(trace.power_dbm, dtype=float)
        if power.size < 8:
            raise ValueError("trace too short for spectral analysis")
        timestamps = np.asarray(trace.timestamps_s, dtype=float)
        sample_interval = float(np.median(np.diff(timestamps)))
        if sample_interval <= 0:
            raise ValueError("timestamps must be increasing")
        detrended = power - np.mean(power)
        window = np.hanning(detrended.size)
        spectrum = np.abs(np.fft.rfft(detrended * window)) ** 2
        frequencies = np.fft.rfftfreq(detrended.size, d=sample_interval)
        return frequencies, spectrum

    def analyse(self, trace: SensingTrace) -> RespirationReading:
        """Estimate the respiration rate and decide detectability."""
        frequencies, spectrum = self._periodogram(trace)
        low, high = self.band_hz
        in_band = (frequencies >= low) & (frequencies <= high)
        out_band = (frequencies > high) & (frequencies <= 4.0 * high)
        if not np.any(in_band) or not np.any(out_band):
            return RespirationReading(estimated_rate_hz=None,
                                      peak_to_noise_db=0.0, detected=False)
        peak_index = int(np.argmax(np.where(in_band, spectrum, 0.0)))
        peak_power = spectrum[peak_index]
        noise_floor = float(np.median(spectrum[out_band]))
        if noise_floor <= 0:
            noise_floor = 1e-20
        peak_to_noise_db = float(linear_to_db(max(peak_power, 1e-20) /
                                              noise_floor))
        detected = peak_to_noise_db >= self.detection_threshold_db
        rate = float(frequencies[peak_index]) if detected else None
        return RespirationReading(estimated_rate_hz=rate,
                                  peak_to_noise_db=peak_to_noise_db,
                                  detected=detected)

    def rate_error_hz(self, trace: SensingTrace,
                      true_rate_hz: float) -> Optional[float]:
        """Absolute rate error against the ground truth, if detected."""
        reading = self.analyse(trace)
        if not reading.detected or reading.estimated_rate_hz is None:
            return None
        return abs(reading.estimated_rate_hz - true_rate_hz)


__all__ = ["RespirationDetector", "RespirationReading"]
