"""Wireless sensing application (paper Sec. 5.2.2, Fig. 23).

LLAMA's reflective mode can strengthen the signal reflected off a human
subject enough that respiration becomes detectable at transmit powers
where it otherwise is not.  The package provides the breathing-target
model, the sensing-link simulation and the respiration-rate detector.
"""

from repro.sensing.respiration import (
    BreathingSubject,
    RespirationSensingLink,
    SensingTrace,
    TracedBreathingSubject,
)
from repro.sensing.detector import RespirationDetector, RespirationReading

__all__ = [
    "BreathingSubject",
    "RespirationSensingLink",
    "SensingTrace",
    "TracedBreathingSubject",
    "RespirationDetector",
    "RespirationReading",
]
