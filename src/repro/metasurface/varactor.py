"""Varactor diode model (paper Sec. 3.2 and 4).

LLAMA tunes its birefringent phase-shifter layers with SMV1233 varactor
diodes: the reverse bias voltage sets the junction capacitance, which in
turn detunes an LC-loaded transmission-line section and changes its
transmission phase.  The paper quotes lumped capacitances from 0.84 pF to
2.41 pF for reverse bias voltages of 15 V down to 2 V.

We model the standard abrupt/graded-junction capacitance law

    ``C(V) = Cj0 / (1 + V / Vj)^M + Cp``

with parameters fitted so that C(2 V) = 2.41 pF and C(15 V) = 0.84 pF,
matching the paper's quoted tuning range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class VaractorDiode:
    """A junction varactor with the classic C(V) law.

    Attributes
    ----------
    name:
        Part name for reporting.
    junction_capacitance_f:
        Zero-bias junction capacitance ``Cj0`` in Farads.
    junction_potential_v:
        Built-in junction potential ``Vj`` in Volts.
    grading_coefficient:
        Exponent ``M`` of the capacitance law.
    package_capacitance_f:
        Fixed parasitic package capacitance ``Cp`` in Farads.
    max_reverse_voltage_v:
        Absolute maximum reverse bias; inputs are validated against it.
    unit_cost_usd:
        Per-diode cost used by the design cost model (paper: ~50 cents).
    """

    name: str
    junction_capacitance_f: float
    junction_potential_v: float
    grading_coefficient: float
    package_capacitance_f: float = 0.0
    max_reverse_voltage_v: float = 30.0
    unit_cost_usd: float = 0.5

    def __post_init__(self) -> None:
        if self.junction_capacitance_f <= 0:
            raise ValueError("junction capacitance must be positive")
        if self.junction_potential_v <= 0:
            raise ValueError("junction potential must be positive")
        if self.grading_coefficient <= 0:
            raise ValueError("grading coefficient must be positive")
        if self.package_capacitance_f < 0:
            raise ValueError("package capacitance must be non-negative")
        if self.max_reverse_voltage_v <= 0:
            raise ValueError("max reverse voltage must be positive")

    def capacitance_f(self, reverse_voltage_v: ArrayLike) -> ArrayLike:
        """Junction capacitance (Farads) at a reverse bias voltage.

        Voltages are clipped to ``[0, max_reverse_voltage_v]``: the paper's
        controller sweeps 0-30 V and the physical diode simply saturates
        at its minimum capacitance near the top of that range.
        """
        voltage = np.clip(np.asarray(reverse_voltage_v, dtype=float),
                          0.0, self.max_reverse_voltage_v)
        capacitance = (self.junction_capacitance_f /
                       np.power(1.0 + voltage / self.junction_potential_v,
                                self.grading_coefficient) +
                       self.package_capacitance_f)
        if np.isscalar(reverse_voltage_v):
            return float(capacitance)
        return capacitance

    def capacitance_pf(self, reverse_voltage_v: ArrayLike) -> ArrayLike:
        """Junction capacitance in picofarads."""
        return self.capacitance_f(reverse_voltage_v) * 1e12

    def voltage_for_capacitance(self, capacitance_f: float) -> float:
        """Invert the C(V) law: bias voltage that yields ``capacitance_f``.

        Raises
        ------
        ValueError
            If the requested capacitance is outside the achievable range.
        """
        c_min = self.capacitance_f(self.max_reverse_voltage_v)
        c_max = self.capacitance_f(0.0)
        if not (c_min <= capacitance_f <= c_max):
            raise ValueError(
                f"capacitance {capacitance_f * 1e12:.3f} pF outside the "
                f"achievable range [{c_min * 1e12:.3f}, {c_max * 1e12:.3f}] pF")
        junction = capacitance_f - self.package_capacitance_f
        if junction <= 0:
            raise ValueError("requested capacitance below package parasitic")
        ratio = self.junction_capacitance_f / junction
        voltage = self.junction_potential_v * (
            ratio ** (1.0 / self.grading_coefficient) - 1.0)
        return float(np.clip(voltage, 0.0, self.max_reverse_voltage_v))

    @property
    def tuning_range_pf(self) -> tuple:
        """(min, max) capacitance in pF over the usable bias range."""
        return (float(self.capacitance_pf(self.max_reverse_voltage_v)),
                float(self.capacitance_pf(0.0)))


#: The SMV1233 varactor used by the LLAMA prototype.  Parameters are
#: fitted so the capacitance matches the paper's quoted 2.41 pF at 2 V
#: and 0.84 pF at 15 V reverse bias.
SMV1233 = VaractorDiode(
    name="SMV1233",
    junction_capacitance_f=5.41e-12,
    junction_potential_v=0.70,
    grading_coefficient=0.5986,
    package_capacitance_f=0.0,
    max_reverse_voltage_v=30.0,
    unit_cost_usd=0.5,
)

__all__ = ["VaractorDiode", "SMV1233"]
