"""Two-port network theory (paper Sec. 3.2, Eqs. 9-12).

The paper characterises the metasurface with scattering parameters: the
transmission efficiency criterion of Eq. 11 is built from S21 terms, and
the phase-shifter bandwidth trade-off of Eq. 12 motivates the two-layer
design.  This module provides a small but complete two-port toolkit:
S-matrix and ABCD representations, conversions, cascading, and the
bandwidth formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class TwoPortNetwork:
    """A linear two-port network described by its scattering matrix.

    The S-matrix relates incident waves ``a`` to outgoing waves ``b`` as
    ``[b1, b2]^T = S [a1, a2]^T`` (paper Eq. 10).  ``reference_impedance``
    is the port impedance Z0 used for wave normalisation (paper Eq. 9).
    """

    s11: complex
    s12: complex
    s21: complex
    s22: complex
    reference_impedance: float = 50.0

    def __post_init__(self) -> None:
        if self.reference_impedance <= 0:
            raise ValueError("reference impedance must be positive")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_s_matrix(matrix: Sequence[Sequence[complex]],
                      reference_impedance: float = 50.0) -> "TwoPortNetwork":
        """Build from a 2x2 S-matrix."""
        arr = np.asarray(matrix, dtype=complex)
        if arr.shape != (2, 2):
            raise ValueError("S-matrix must be 2x2")
        return TwoPortNetwork(complex(arr[0, 0]), complex(arr[0, 1]),
                              complex(arr[1, 0]), complex(arr[1, 1]),
                              reference_impedance)

    @staticmethod
    def identity(reference_impedance: float = 50.0) -> "TwoPortNetwork":
        """A matched, lossless, zero-phase through connection."""
        return TwoPortNetwork(0.0, 1.0, 1.0, 0.0, reference_impedance)

    @staticmethod
    def from_abcd(a: complex, b: complex, c: complex, d: complex,
                  reference_impedance: float = 50.0) -> "TwoPortNetwork":
        """Build from ABCD (transmission/chain) parameters."""
        z0 = reference_impedance
        denominator = a + b / z0 + c * z0 + d
        if abs(denominator) < 1e-30:
            raise ValueError("singular ABCD matrix")
        s11 = (a + b / z0 - c * z0 - d) / denominator
        s12 = 2.0 * (a * d - b * c) / denominator
        s21 = 2.0 / denominator
        s22 = (-a + b / z0 - c * z0 + d) / denominator
        return TwoPortNetwork(s11, s12, s21, s22, z0)

    @staticmethod
    def series_impedance(impedance: complex,
                         reference_impedance: float = 50.0) -> "TwoPortNetwork":
        """A series impedance element."""
        return TwoPortNetwork.from_abcd(1.0, impedance, 0.0, 1.0,
                                        reference_impedance)

    @staticmethod
    def shunt_admittance(admittance: complex,
                         reference_impedance: float = 50.0) -> "TwoPortNetwork":
        """A shunt admittance element."""
        return TwoPortNetwork.from_abcd(1.0, 0.0, admittance, 1.0,
                                        reference_impedance)

    @staticmethod
    def transmission_line(electrical_length_rad: float,
                          characteristic_impedance: float,
                          reference_impedance: float = 50.0,
                          attenuation_np: float = 0.0) -> "TwoPortNetwork":
        """A (possibly lossy) transmission-line section.

        Parameters
        ----------
        electrical_length_rad:
            ``beta * l`` in radians.
        characteristic_impedance:
            Line impedance ZL.
        attenuation_np:
            Total line attenuation ``alpha * l`` in nepers.
        """
        if characteristic_impedance <= 0:
            raise ValueError("characteristic impedance must be positive")
        gamma_l = attenuation_np + 1j * electrical_length_rad
        zl = characteristic_impedance
        a = np.cosh(gamma_l)
        b = zl * np.sinh(gamma_l)
        c = np.sinh(gamma_l) / zl
        d = np.cosh(gamma_l)
        return TwoPortNetwork.from_abcd(a, b, c, d, reference_impedance)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def s_matrix(self) -> np.ndarray:
        """The 2x2 S-matrix as an ndarray."""
        return np.array([[self.s11, self.s12], [self.s21, self.s22]],
                        dtype=complex)

    def abcd_matrix(self) -> np.ndarray:
        """Convert to ABCD (chain) parameters."""
        z0 = self.reference_impedance
        s11, s12, s21, s22 = self.s11, self.s12, self.s21, self.s22
        if abs(s21) < 1e-30:
            raise ValueError("S21 = 0; network has no through path")
        a = ((1 + s11) * (1 - s22) + s12 * s21) / (2.0 * s21)
        b = z0 * ((1 + s11) * (1 + s22) - s12 * s21) / (2.0 * s21)
        c = ((1 - s11) * (1 - s22) - s12 * s21) / (2.0 * s21 * z0)
        d = ((1 - s11) * (1 + s22) + s12 * s21) / (2.0 * s21)
        return np.array([[a, b], [c, d]], dtype=complex)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def insertion_loss_db(self) -> float:
        """Insertion loss ``-20 log10 |S21|`` in dB (non-negative for passive)."""
        magnitude = abs(self.s21)
        if magnitude <= 1e-30:
            return float("inf")
        return -20.0 * math.log10(magnitude)

    @property
    def return_loss_db(self) -> float:
        """Return loss ``-20 log10 |S11|`` in dB."""
        magnitude = abs(self.s11)
        if magnitude <= 1e-30:
            return float("inf")
        return -20.0 * math.log10(magnitude)

    @property
    def transmission_phase_rad(self) -> float:
        """Phase of S21 in radians."""
        return float(np.angle(self.s21))

    @property
    def transmission_efficiency(self) -> float:
        """``|S21|^2`` — power transmission efficiency of the through path."""
        return float(abs(self.s21) ** 2)

    @property
    def is_reciprocal(self) -> bool:
        """True when S12 == S21 (within tolerance)."""
        return bool(np.isclose(self.s12, self.s21, atol=1e-9))

    @property
    def is_passive(self) -> bool:
        """True when the network cannot amplify (all eigenvalues of
        ``I - S^H S`` are non-negative)."""
        s = self.s_matrix()
        gram = np.eye(2) - s.conj().T @ s
        eigenvalues = np.linalg.eigvalsh(gram)
        return bool(np.all(eigenvalues >= -1e-9))

    @property
    def is_lossless(self) -> bool:
        """True when the S-matrix is unitary (within tolerance)."""
        s = self.s_matrix()
        return bool(np.allclose(s.conj().T @ s, np.eye(2), atol=1e-9))

    def cascade_with(self, other: "TwoPortNetwork") -> "TwoPortNetwork":
        """Cascade this network followed by ``other`` (ABCD multiplication)."""
        if not math.isclose(self.reference_impedance,
                            other.reference_impedance):
            raise ValueError("cannot cascade networks with different Z0")
        combined = self.abcd_matrix() @ other.abcd_matrix()
        return TwoPortNetwork.from_abcd(combined[0, 0], combined[0, 1],
                                        combined[1, 0], combined[1, 1],
                                        self.reference_impedance)


def cascade_networks(networks: Iterable[TwoPortNetwork]) -> TwoPortNetwork:
    """Cascade an ordered sequence of two-port networks."""
    iterator = iter(networks)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("cannot cascade an empty sequence") from None
    for network in iterator:
        result = result.cascade_with(network)
    return result


def wave_amplitudes(voltage: complex, current: complex,
                    reference_impedance: float = 50.0) -> tuple:
    """Incident/reflected wave amplitudes at a port (paper Eq. 9).

    Returns ``(a, b)`` where ``a`` is the incoming and ``b`` the outgoing
    wave for port voltage ``V`` and current ``I`` (current flowing into
    the port).
    """
    if reference_impedance <= 0:
        raise ValueError("reference impedance must be positive")
    z0 = reference_impedance
    a = (voltage + z0 * current) / (2.0 * math.sqrt(z0))
    b = (voltage - z0 * current) / (2.0 * math.sqrt(z0))
    return a, b


def transmission_efficiency_dual_pol(s_xx21: complex, s_yx21: complex) -> float:
    """Paper Eq. 11: efficiency for an x-polarized excitation.

    ``eff = |Sxx21|^2 + |Syx21|^2`` — the co- and cross-polarized
    transmitted power fractions sum to the total transmitted power.
    """
    return float(abs(s_xx21) ** 2 + abs(s_yx21) ** 2)


def phase_shifter_bandwidth_hz(center_frequency_hz: float,
                               line_length_fraction: float,
                               max_reflection_coefficient: float,
                               input_impedance: float,
                               load_impedance: float) -> float:
    """Paper Eq. 12: bandwidth of a transmission-line phase shifter.

    Parameters
    ----------
    center_frequency_hz:
        Design centre frequency ``f0``.
    line_length_fraction:
        ``m`` where the line length is ``lambda / m`` (e.g. 4 for a
        quarter-wave section).
    max_reflection_coefficient:
        Maximum tolerable reflection coefficient ``Gamma`` (0..1).
    input_impedance, load_impedance:
        ``Z0`` and ``ZL``.

    Returns
    -------
    float
        The usable bandwidth in Hz.  The paper uses this expression to
        argue that fewer, shorter phase-shifter layers give a wider
        bandwidth, motivating the two-layer optimized FR4 design.
    """
    if center_frequency_hz <= 0:
        raise ValueError("center frequency must be positive")
    if not (0.0 < max_reflection_coefficient < 1.0):
        raise ValueError("reflection coefficient must be in (0, 1)")
    if line_length_fraction <= 0:
        raise ValueError("line length fraction must be positive")
    if input_impedance <= 0 or load_impedance <= 0:
        raise ValueError("impedances must be positive")
    if math.isclose(input_impedance, load_impedance):
        raise ValueError("Eq. 12 is undefined for Z0 == ZL (already matched)")
    gamma = max_reflection_coefficient
    argument = (gamma / math.sqrt(1.0 - gamma ** 2) *
                2.0 * math.sqrt(input_impedance * load_impedance) /
                abs(load_impedance - input_impedance))
    argument = min(1.0, max(-1.0, argument))
    bandwidth = center_frequency_hz * (
        2.0 - (line_length_fraction / math.pi) * math.acos(argument))
    return bandwidth


__all__ = [
    "TwoPortNetwork",
    "cascade_networks",
    "wave_amplitudes",
    "transmission_efficiency_dual_pol",
    "phase_shifter_bandwidth_hz",
]
