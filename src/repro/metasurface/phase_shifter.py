"""Varactor-loaded phase-shifter layer (paper Sec. 3.2).

Each birefringent-structure (BFS) layer of the LLAMA metasurface carries
metallic patterns loaded by varactor diodes that form an LC tank.  The
reverse bias voltage sets the varactor capacitance, which in turn
detunes the tank and changes the transmission phase of the co-polarized
component passing through the layer.  Two such layers per axis yield
roughly +/-50 degrees of phase control per axis, i.e. up to ~100 degrees
of differential phase ``delta`` between the X and Y axes and therefore
``delta / 2`` of polarization rotation of up to ~50 degrees (paper
Table 1).

The model combines two physically grounded ingredients:

1. *Resonant phase response*: the transmission phase of a shunt LC tank
   on a transmission line follows ``-arctan(k (f/fr - fr/f))`` where
   ``fr = 1 / (2 pi sqrt(L C))`` and ``k`` captures how strongly the tank
   loads the line (the "loading factor").
2. *Dielectric insertion loss*: a resonator with loaded quality factor
   ``Q_L`` built on a substrate with dielectric quality factor
   ``Q_U = 1 / (fill * tan_delta)`` dissipates
   ``IL = -20 log10(1 - Q_L / Q_U)`` dB.  Simplified patterns (lower Q)
   and thinner layers (lower fill factor) reduce this loss — exactly the
   optimization the paper performs when porting the design from Rogers
   5880 to FR4.

The band-pass frequency selectivity of the *assembled* structure is a
property of the full cascade and therefore lives in
:class:`repro.metasurface.surface.Metasurface`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.metasurface.materials import SubstrateMaterial, FR4
from repro.metasurface.varactor import VaractorDiode, SMV1233


@dataclass(frozen=True)
class PhaseShifterLayer:
    """One varactor-tuned phase-shifter (BFS) layer.

    Attributes
    ----------
    substrate:
        Dielectric the copper pattern is printed on.
    thickness_m:
        Physical layer thickness (drives the dielectric fill factor).
    varactor:
        Tuning diode model.
    inductance_h:
        Equivalent loop/patch inductance of the LC tank.
    loading_factor:
        Dimensionless strength of the tank's phase loading of the line.
    loaded_q:
        Loaded quality factor of the resonant copper pattern.
    dielectric_fill_factor:
        Fraction of stored EM energy residing in the lossy dielectric.
    design_frequency_hz:
        Centre frequency the copper geometry is tuned for.
    detuning_loss_coefficient:
        Strength of the extra mismatch loss incurred when the varactor
        detunes the tank away from the operating frequency.  This is why
        the paper's Fig. 11 efficiency curves differ across bias
        voltages: each bias point re-tunes the structure slightly.
    """

    substrate: SubstrateMaterial = FR4
    thickness_m: float = 0.8e-3
    varactor: VaractorDiode = SMV1233
    inductance_h: float = 3.3e-9
    loading_factor: float = 0.88
    loaded_q: float = 5.5
    dielectric_fill_factor: float = 0.65
    design_frequency_hz: float = 2.44e9
    detuning_loss_coefficient: float = 0.9

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ValueError("thickness must be positive")
        if self.inductance_h <= 0:
            raise ValueError("inductance must be positive")
        if self.loading_factor <= 0:
            raise ValueError("loading factor must be positive")
        if self.loaded_q <= 0:
            raise ValueError("loaded Q must be positive")
        if not (0.0 < self.dielectric_fill_factor <= 1.0):
            raise ValueError("dielectric fill factor must be in (0, 1]")
        if self.design_frequency_hz <= 0:
            raise ValueError("design frequency must be positive")
        if self.detuning_loss_coefficient < 0:
            raise ValueError("detuning loss coefficient must be non-negative")
        # A layer whose dielectric loss exceeds its stored energy budget is
        # not physical: the insertion-loss formula would go negative.
        if self.loaded_q * self.dielectric_fill_factor * self.substrate.loss_tangent >= 1.0:
            raise ValueError(
                "layer is over-lossy: loaded_q * fill * tan_delta must be < 1")

    # ------------------------------------------------------------------ #
    # Resonance and phase
    # ------------------------------------------------------------------ #
    def resonant_frequency_hz(self, bias_voltage_v: float) -> float:
        """LC tank resonant frequency at the given reverse bias voltage.

        Scalar view of :meth:`resonant_frequencies_hz_batch`.
        """
        return float(self.resonant_frequencies_hz_batch(bias_voltage_v))

    def transmission_phase_rad(self, frequency_hz: float,
                               bias_voltage_v: float) -> float:
        """Transmission phase of the co-polarized component (radians).

        Scalar view of :meth:`transmission_phase_rad_batch`.
        """
        return float(self.transmission_phase_rad_batch(frequency_hz,
                                                       bias_voltage_v))

    def resonant_frequencies_hz_batch(self,
                                      bias_voltages_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`resonant_frequency_hz` over a voltage array."""
        capacitance = self.varactor.capacitance_f(
            np.asarray(bias_voltages_v, dtype=float))
        return 1.0 / (2.0 * math.pi * np.sqrt(self.inductance_h * capacitance))

    def transmission_phase_rad_batch(self, frequency_hz,
                                     bias_voltages_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`transmission_phase_rad` over voltage arrays.

        ``frequency_hz`` may be a scalar or an array broadcastable
        against ``bias_voltages_v``, so whole frequency sweeps evaluate
        in the same pass as bias grids.
        """
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0):
            raise ValueError("frequency must be positive")
        resonant = self.resonant_frequencies_hz_batch(bias_voltages_v)
        detuning = frequency / resonant - resonant / frequency
        return -np.arctan(self.loading_factor * detuning)

    def transmission_phase_deg(self, frequency_hz: float,
                               bias_voltage_v: float) -> float:
        """Transmission phase in degrees."""
        return math.degrees(self.transmission_phase_rad(frequency_hz,
                                                        bias_voltage_v))

    def phase_tuning_range_deg(self, frequency_hz: float,
                               voltage_low_v: float = 0.0,
                               voltage_high_v: float = 30.0) -> float:
        """Total phase swing achievable across a bias-voltage range."""
        low = self.transmission_phase_deg(frequency_hz, voltage_low_v)
        high = self.transmission_phase_deg(frequency_hz, voltage_high_v)
        return abs(high - low)

    # ------------------------------------------------------------------ #
    # Loss
    # ------------------------------------------------------------------ #
    @property
    def dielectric_insertion_loss_db(self) -> float:
        """Insertion loss caused by dielectric dissipation (dB)."""
        unloaded_q_inverse = (self.dielectric_fill_factor *
                              self.substrate.loss_tangent)
        remaining = 1.0 - self.loaded_q * unloaded_q_inverse
        return -20.0 * math.log10(remaining)

    def detuning_loss_db_batch(self, frequency_hz,
                               bias_voltages_v: np.ndarray) -> np.ndarray:
        """Mismatch loss from the varactor detuning the tank (dB).

        When the bias voltage pulls the tank resonance away from the
        operating frequency, part of the incident energy is reflected
        rather than transmitted; the loss grows with the normalised
        detuning the phase response is built on.  ``frequency_hz`` may
        be a scalar or an array broadcastable against
        ``bias_voltages_v``.
        """
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0):
            raise ValueError("frequency must be positive")
        resonant = self.resonant_frequencies_hz_batch(bias_voltages_v)
        detuning = frequency / resonant - resonant / frequency
        return 10.0 * np.log10(
            1.0 + (self.detuning_loss_coefficient * detuning) ** 2)

    def detuning_loss_db(self, frequency_hz: float,
                         bias_voltage_v: float) -> float:
        """Scalar view of :meth:`detuning_loss_db_batch`."""
        return float(self.detuning_loss_db_batch(frequency_hz,
                                                 bias_voltage_v))

    def insertion_loss_db(self, frequency_hz: float,
                          bias_voltage_v: float = None) -> float:
        """Layer insertion loss at ``frequency_hz`` (dB).

        Dielectric dissipation dominates and is voltage-independent; when
        a bias voltage is supplied the detuning mismatch loss is added,
        which is what separates the paper's Fig. 11 curves.  The
        structure-level band-pass selectivity is applied by the
        :class:`Metasurface`.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        loss = self.dielectric_insertion_loss_db
        if bias_voltage_v is not None:
            loss += self.detuning_loss_db(frequency_hz, bias_voltage_v)
        return loss

    def insertion_loss_db_batch(self, frequency_hz,
                                bias_voltages_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`insertion_loss_db` over voltage arrays.

        Always includes the voltage-dependent detuning mismatch loss,
        matching the scalar call with an explicit ``bias_voltage_v``.
        ``frequency_hz`` may be a scalar or an array broadcastable
        against ``bias_voltages_v``.
        """
        return (self.dielectric_insertion_loss_db +
                self.detuning_loss_db_batch(frequency_hz, bias_voltages_v))

    # ------------------------------------------------------------------ #
    # Complex transmission coefficient
    # ------------------------------------------------------------------ #
    def s21(self, frequency_hz: float, bias_voltage_v: float) -> complex:
        """Complex co-polarized transmission coefficient of the layer."""
        amplitude = 10.0 ** (
            -self.insertion_loss_db(frequency_hz, bias_voltage_v) / 20.0)
        phase = self.transmission_phase_rad(frequency_hz, bias_voltage_v)
        return amplitude * complex(math.cos(phase), math.sin(phase))

    def with_substrate(self, substrate: SubstrateMaterial) -> "PhaseShifterLayer":
        """Return a copy of this layer built on a different substrate."""
        return replace(self, substrate=substrate)

    def with_inductance(self, inductance_h: float) -> "PhaseShifterLayer":
        """Return a copy of this layer with a different tank inductance."""
        return replace(self, inductance_h=inductance_h)


__all__ = ["PhaseShifterLayer"]
