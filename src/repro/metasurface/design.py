"""Design-space factories for the metasurface (paper Sec. 3.2 + Sec. 4).

The paper compares three designs:

* the *Rogers 5880 reference* design, a direct scaling of the 10 GHz
  rotator of Wu et al. [36] to 2.4 GHz — high efficiency but cost-
  prohibitive (Fig. 8);
* the *naive FR4* port: the same geometry printed on FR4, whose
  ~22x-higher loss tangent destroys the transmission efficiency (Fig. 9);
* the *optimized FR4* (LLAMA) design: fewer, thinner phase-shifter
  layers and simplified patterns that recover most of the efficiency at
  a scalable price point (Fig. 10).

Each factory returns a :class:`MetasurfaceDesign` whose :meth:`build`
assembles a :class:`Metasurface`.  The cost model follows the prototype
numbers from Sec. 4 ($540 of PCBs, 720 varactors at ~$0.50, ~$900 total,
$5/unit, ~$2/unit at scale).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.constants import (
    DEFAULT_CENTER_FREQUENCY_HZ,
    PROTOTYPE_SIDE_M,
    PROTOTYPE_UNIT_COUNT,
    PROTOTYPE_VARACTOR_COUNT,
)
from repro.metasurface.layers import BirefringentLayer, QuarterWavePlateLayer
from repro.metasurface.materials import FR4, ROGERS_5880, SubstrateMaterial
from repro.metasurface.phase_shifter import PhaseShifterLayer
from repro.metasurface.surface import Metasurface
from repro.metasurface.varactor import SMV1233, VaractorDiode


@dataclass(frozen=True)
class MetasurfaceDesign:
    """A named, parameterised metasurface design point.

    The design captures the knobs the paper tunes: substrate material,
    number of phase-shifter layers per axis, per-layer thickness, the
    loaded Q of the printed resonators and the dielectric fill factor
    (thinner layers store less energy in the lossy substrate), plus the
    assembled structure's band-pass selectivity.
    """

    name: str
    substrate: SubstrateMaterial
    layers_per_axis: int
    layer_thickness_m: float
    loaded_q: float
    dielectric_fill_factor: float
    qwp_loaded_q: float
    qwp_fill_factor: float
    selectivity_q: float
    design_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    filter_order: int = 1
    axis_detuning_hz: float = 15e6
    varactor: VaractorDiode = SMV1233
    inductance_h: float = 3.3e-9
    loading_factor: float = 0.88
    y_axis_inductance_scale: float = 1.06
    side_length_m: float = PROTOTYPE_SIDE_M
    unit_count: int = PROTOTYPE_UNIT_COUNT
    varactor_count: int = PROTOTYPE_VARACTOR_COUNT

    def __post_init__(self) -> None:
        if self.layers_per_axis < 1:
            raise ValueError("need at least one phase-shifter layer per axis")
        if self.layer_thickness_m <= 0:
            raise ValueError("layer thickness must be positive")
        if self.unit_count < 1 or self.varactor_count < 1:
            raise ValueError("unit and varactor counts must be positive")
        if self.y_axis_inductance_scale <= 0:
            raise ValueError("inductance scale must be positive")

    def build(self, prototype: bool = True) -> Metasurface:
        """Assemble the :class:`Metasurface` for this design point.

        Parameters
        ----------
        prototype:
            When True (default) the surface models the *fabricated*
            prototype, whose 0-30 V terminal sweep realises the designed
            2-15 V junction-voltage range (paper Sec. 3.3 attributes the
            higher required voltages to fabrication and assembly
            tolerances).  When False the idealised simulated structure is
            returned, matching the paper's HFSS results (Table 1,
            Figs. 8-11) where the stated voltages act directly on the
            varactor junctions.
        """
        shifter = PhaseShifterLayer(
            substrate=self.substrate,
            thickness_m=self.layer_thickness_m,
            varactor=self.varactor,
            inductance_h=self.inductance_h,
            loading_factor=self.loading_factor,
            loaded_q=self.loaded_q,
            dielectric_fill_factor=self.dielectric_fill_factor,
            design_frequency_hz=self.design_frequency_hz,
        )
        birefringent = BirefringentLayer.symmetric(
            shifter,
            layers_per_axis=self.layers_per_axis,
            y_axis_inductance_scale=self.y_axis_inductance_scale,
        )
        front = QuarterWavePlateLayer(
            substrate=self.substrate,
            thickness_m=self.layer_thickness_m,
            rotation_deg=+45.0,
            loaded_q=self.qwp_loaded_q,
            dielectric_fill_factor=self.qwp_fill_factor,
            design_frequency_hz=self.design_frequency_hz,
        )
        back = replace(front, rotation_deg=-45.0)
        return Metasurface(
            front_qwp=front,
            back_qwp=back,
            birefringent=birefringent,
            name=self.name,
            design_frequency_hz=self.design_frequency_hz,
            selectivity_q=self.selectivity_q,
            filter_order=self.filter_order,
            axis_detuning_hz=self.axis_detuning_hz,
            side_length_m=self.side_length_m,
            unit_count=self.unit_count,
            bias_derating=(2.0, 15.0) if prototype else None,
        )

    @property
    def total_layer_count(self) -> int:
        """Total board layers: the two QWPs plus the BFS layers."""
        return 2 + self.layers_per_axis

    @property
    def total_thickness_m(self) -> float:
        """Total stack thickness."""
        return self.total_layer_count * self.layer_thickness_m


def rogers_reference_design(
        design_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ) -> MetasurfaceDesign:
    """The high-performance Rogers 5880 reference design (paper Fig. 8).

    Directly scaled from the 10 GHz rotator of [36]: a thicker stack with
    more phase-shifter layers and higher-Q patterns — affordable in loss
    only because Rogers 5880's loss tangent is 0.0009.
    """
    return MetasurfaceDesign(
        name="Rogers 5880 reference",
        substrate=ROGERS_5880,
        layers_per_axis=3,
        layer_thickness_m=1.6e-3,
        loaded_q=15.0,
        dielectric_fill_factor=0.80,
        qwp_loaded_q=12.0,
        qwp_fill_factor=0.75,
        selectivity_q=16.0,
        design_frequency_hz=design_frequency_hz,
        loading_factor=0.60,
    )


def fr4_naive_design(
        design_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ) -> MetasurfaceDesign:
    """The naive FR4 port of the reference geometry (paper Fig. 9).

    Identical geometry to :func:`rogers_reference_design` but printed on
    FR4, whose loss tangent (0.02) is ~22x larger; the stored energy in
    the high-Q patterns is dissipated in the dielectric and the
    transmission efficiency collapses.
    """
    reference = rogers_reference_design(design_frequency_hz)
    return replace(reference, name="FR4 naive port", substrate=FR4)


def llama_design(
        design_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ) -> MetasurfaceDesign:
    """The paper's optimized FR4 design (Fig. 10, Fig. 6).

    Two phase-shifter layers per axis, thinner boards and simplified
    (lower-Q) patterns reduce the energy dissipated in the FR4 so that
    the in-band efficiency stays above the -5 dB target across a
    >100 MHz bandwidth.
    """
    return MetasurfaceDesign(
        name="LLAMA optimized FR4",
        substrate=FR4,
        layers_per_axis=2,
        layer_thickness_m=0.8e-3,
        loaded_q=5.5,
        dielectric_fill_factor=0.65,
        qwp_loaded_q=5.0,
        qwp_fill_factor=0.60,
        selectivity_q=12.0,
        design_frequency_hz=design_frequency_hz,
        loading_factor=0.88,
    )


#: Backwards-compatible alias: the optimized FR4 design *is* LLAMA's.
fr4_optimized_design = llama_design


def scaled_design(target_frequency_hz: float,
                  base: Optional[MetasurfaceDesign] = None) -> MetasurfaceDesign:
    """Scale a design to a different band (paper: 900 MHz RFID remark).

    Scaling a metasurface means growing the copper features and the unit
    cell by the wavelength ratio; electrically the design point is
    unchanged, so the loaded Q, fill factor and loss model carry over.
    The LC tank inductance scales with the linear dimension so that the
    same varactor capacitance range re-centres the resonance on the new
    band.
    """
    if target_frequency_hz <= 0:
        raise ValueError("target frequency must be positive")
    base = base if base is not None else llama_design()
    ratio = base.design_frequency_hz / target_frequency_hz
    return replace(
        base,
        name=f"{base.name} scaled to {target_frequency_hz / 1e9:.3f} GHz",
        design_frequency_hz=target_frequency_hz,
        inductance_h=base.inductance_h * ratio ** 2,
        layer_thickness_m=base.layer_thickness_m * ratio,
        side_length_m=base.side_length_m * ratio,
        axis_detuning_hz=base.axis_detuning_hz / ratio,
    )


def design_cost_usd(design: MetasurfaceDesign,
                    units: Optional[int] = None,
                    economies_of_scale: bool = False) -> float:
    """Estimate the build cost of a design in US dollars.

    The model reproduces the paper's prototype accounting: PCB cost
    proportional to substrate price, board area and layer count, plus the
    varactor population.  With ``economies_of_scale`` the per-unit cost
    approaches the paper's projected ~$2/unit for >3000-unit runs.
    """
    units = units if units is not None else design.unit_count
    if units < 1:
        raise ValueError("unit count must be positive")
    area_per_unit = design.side_length_m ** 2 / design.unit_count
    board_area = area_per_unit * units
    pcb_cost = (board_area * design.total_layer_count *
                design.substrate.cost_per_square_meter_usd)
    # Fabrication overhead (drilling, plating, assembly) dominates small
    # runs; the paper's $540 of PCBs for ~0.23 m^2 of multi-layer FR4
    # implies a large fixed component.
    fabrication_overhead = 50.0 + 2.0 * units if not economies_of_scale else 0.5 * units
    varactors_per_unit = design.varactor_count / design.unit_count
    varactor_cost = varactors_per_unit * units * design.varactor.unit_cost_usd
    discount = 0.6 if economies_of_scale else 1.0
    return discount * (pcb_cost + fabrication_overhead) + varactor_cost


__all__ = [
    "MetasurfaceDesign",
    "rogers_reference_design",
    "fr4_naive_design",
    "llama_design",
    "fr4_optimized_design",
    "scaled_design",
    "design_cost_usd",
]
