"""Metasurface layer models: quarter-wave plates and birefringent stacks.

The LLAMA rotator (paper Fig. 6) is the cascade

    ``QWP(+45 deg)  .  BFS(Vx, Vy)  .  QWP(-45 deg)``

where the birefringent structure (BFS) applies independent, voltage-
controlled transmission phases to the X and Y field components and the
quarter-wave plates convert that differential phase into a physical
rotation of the polarization plane (paper Eq. 8).

These classes add the non-ideal behaviour the Jones primitives in
:mod:`repro.core.jones` deliberately leave out: substrate-dependent
insertion loss and a small X/Y asymmetry caused by fabrication and
pattern differences (which is why the paper's Table 1 diagonal — equal
Vx and Vy — is not exactly zero rotation).  The frequency-selective
band-pass behaviour of the assembled cascade is handled by
:class:`repro.metasurface.surface.Metasurface`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.jones import JonesMatrix, quarter_wave_plate
from repro.metasurface.materials import SubstrateMaterial, FR4
from repro.metasurface.phase_shifter import PhaseShifterLayer


@dataclass(frozen=True)
class QuarterWavePlateLayer:
    """A printed quarter-wave plate layer with realistic loss.

    Attributes
    ----------
    substrate:
        Board material the QWP pattern is printed on.
    thickness_m:
        Layer thickness.
    rotation_deg:
        Physical rotation of the plate's fast axis (+45 or -45 in LLAMA).
    loaded_q:
        Loaded Q of the printed resonant pattern.
    dielectric_fill_factor:
        Fraction of stored energy in the dielectric.
    design_frequency_hz:
        Centre frequency of the printed pattern.
    """

    substrate: SubstrateMaterial = FR4
    thickness_m: float = 0.8e-3
    rotation_deg: float = 45.0
    loaded_q: float = 5.0
    dielectric_fill_factor: float = 0.60
    design_frequency_hz: float = 2.44e9

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ValueError("thickness must be positive")
        if self.loaded_q <= 0:
            raise ValueError("loaded Q must be positive")
        if not (0.0 < self.dielectric_fill_factor <= 1.0):
            raise ValueError("dielectric fill factor must be in (0, 1]")
        if self.design_frequency_hz <= 0:
            raise ValueError("design frequency must be positive")
        if self.loaded_q * self.dielectric_fill_factor * self.substrate.loss_tangent >= 1.0:
            raise ValueError(
                "layer is over-lossy: loaded_q * fill * tan_delta must be < 1")

    @property
    def dielectric_insertion_loss_db(self) -> float:
        """Dielectric-dissipation insertion loss (dB)."""
        remaining = 1.0 - (self.loaded_q * self.dielectric_fill_factor *
                           self.substrate.loss_tangent)
        return -20.0 * math.log10(remaining)

    def insertion_loss_db(self, frequency_hz: float) -> float:
        """Total insertion loss of the layer (dB)."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.dielectric_insertion_loss_db

    def amplitude_factor(self, frequency_hz: float) -> float:
        """Field amplitude transmission factor."""
        return 10.0 ** (-self.insertion_loss_db(frequency_hz) / 20.0)

    def jones_matrix(self, frequency_hz: float) -> JonesMatrix:
        """Lossy Jones matrix of the rotated QWP at ``frequency_hz``."""
        ideal = quarter_wave_plate(self.rotation_deg)
        return JonesMatrix(ideal.as_array() *
                           self.amplitude_factor(frequency_hz))


@dataclass(frozen=True)
class BirefringentLayer:
    """The tunable birefringent structure: stacked phase-shifter layers.

    The X- and Y-axis patterns are driven by independent bias voltages
    (Vx, Vy).  ``layers_per_axis`` phase-shifter layers act on each axis;
    the paper's optimized design uses two.  The X and Y layer stacks may
    differ slightly (fabrication asymmetry), which produces a small
    residual rotation even when Vx == Vy, as seen on the diagonal of the
    paper's Table 1.
    """

    x_layers: Tuple[PhaseShifterLayer, ...]
    y_layers: Tuple[PhaseShifterLayer, ...]

    def __post_init__(self) -> None:
        if not self.x_layers or not self.y_layers:
            raise ValueError("need at least one phase-shifter layer per axis")

    @staticmethod
    def symmetric(layer: PhaseShifterLayer,
                  layers_per_axis: int = 2,
                  y_axis_inductance_scale: float = 1.0) -> "BirefringentLayer":
        """Build a BFS with identical layers on both axes.

        ``y_axis_inductance_scale`` scales the Y-axis tank inductance to
        model the X/Y pattern asymmetry of the fabricated structure
        (1.0 means perfectly symmetric axes).
        """
        if layers_per_axis < 1:
            raise ValueError("layers_per_axis must be >= 1")
        if y_axis_inductance_scale <= 0:
            raise ValueError("inductance scale must be positive")
        x_layers = tuple(layer for _ in range(layers_per_axis))
        y_layer = layer.with_inductance(layer.inductance_h *
                                        y_axis_inductance_scale)
        y_layers = tuple(y_layer for _ in range(layers_per_axis))
        return BirefringentLayer(x_layers=x_layers, y_layers=y_layers)

    @property
    def layers_per_axis(self) -> int:
        """Number of phase-shifter layers acting on each axis."""
        return len(self.x_layers)

    def axis_phase_rad(self, frequency_hz: float, bias_voltage_v: float,
                       axis: str = "x") -> float:
        """Total transmission phase accumulated along one axis (radians)."""
        if axis not in ("x", "y"):
            raise ValueError("axis must be 'x' or 'y'")
        layers = self.x_layers if axis == "x" else self.y_layers
        return sum(layer.transmission_phase_rad(frequency_hz, bias_voltage_v)
                   for layer in layers)

    def differential_phase_rad(self, frequency_hz: float,
                               vx: float, vy: float) -> float:
        """Paper Eq. 7's ``delta``: X/Y transmission-phase difference."""
        phase_x = self.axis_phase_rad(frequency_hz, vx, "x")
        phase_y = self.axis_phase_rad(frequency_hz, vy, "y")
        return phase_y - phase_x

    def axis_amplitude(self, frequency_hz: float, axis: str = "x",
                       bias_voltage_v: float = None) -> float:
        """Field amplitude factor along one axis (loss only).

        When ``bias_voltage_v`` is given the voltage-dependent detuning
        mismatch loss of each layer is included.
        """
        if axis not in ("x", "y"):
            raise ValueError("axis must be 'x' or 'y'")
        layers = self.x_layers if axis == "x" else self.y_layers
        loss_db = sum(layer.insertion_loss_db(frequency_hz, bias_voltage_v)
                      for layer in layers)
        return 10.0 ** (-loss_db / 20.0)

    def insertion_loss_db(self, frequency_hz: float) -> float:
        """Mean voltage-independent insertion loss across both axes (dB)."""
        amp_x = self.axis_amplitude(frequency_hz, "x")
        amp_y = self.axis_amplitude(frequency_hz, "y")
        mean = 0.5 * (amp_x + amp_y)
        return -20.0 * math.log10(max(mean, 1e-15))

    def jones_matrix(self, frequency_hz: float, vx: float,
                     vy: float) -> JonesMatrix:
        """Lossy Jones matrix ``diag(tx e^{j phi_x}, ty e^{j phi_y})``.

        Scalar view of :meth:`diagonal_batch` (the per-axis phase/loss
        expressions exist once, in the batch path).
        """
        dx, dy = self.diagonal_batch(frequency_hz, vx, vy)
        matrix = np.array([
            [complex(dx), 0.0],
            [0.0, complex(dy)],
        ], dtype=complex)
        return JonesMatrix(matrix)

    def diagonal_batch(self, frequency_hz, vx: np.ndarray,
                       vy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized diagonal of :meth:`jones_matrix` over voltage arrays.

        Returns the complex ``(dx, dy)`` arrays with
        ``dx = tx e^{j phi_x}`` evaluated element-wise over ``vx`` (and
        likewise for ``vy``), matching the scalar matrix entries.
        ``frequency_hz`` may be a scalar or an array that broadcasts
        against the voltage arrays, so a frequency axis sweeps in the
        same vectorized pass as a bias grid.
        """
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        phase_x = sum(layer.transmission_phase_rad_batch(frequency_hz, vx)
                      for layer in self.x_layers)
        phase_y = sum(layer.transmission_phase_rad_batch(frequency_hz, vy)
                      for layer in self.y_layers)
        loss_x_db = sum(layer.insertion_loss_db_batch(frequency_hz, vx)
                        for layer in self.x_layers)
        loss_y_db = sum(layer.insertion_loss_db_batch(frequency_hz, vy)
                        for layer in self.y_layers)
        amp_x = 10.0 ** (-loss_x_db / 20.0)
        amp_y = 10.0 ** (-loss_y_db / 20.0)
        return amp_x * np.exp(1j * phase_x), amp_y * np.exp(1j * phase_y)

    def phase_difference_range_rad(self, frequency_hz: float,
                                   voltage_low_v: float = 0.0,
                                   voltage_high_v: float = 30.0) -> float:
        """Maximum achievable |delta| over the bias-voltage range."""
        corners = [
            abs(self.differential_phase_rad(frequency_hz, voltage_low_v,
                                            voltage_high_v)),
            abs(self.differential_phase_rad(frequency_hz, voltage_high_v,
                                            voltage_low_v)),
        ]
        return max(corners)


__all__ = ["QuarterWavePlateLayer", "BirefringentLayer"]
