"""Metasurface electromagnetic substrate.

Models the LLAMA polarization rotator hardware described in paper
Sections 3.2 and 4: dielectric substrate materials, the SMV1233 varactor
diodes used as tuning elements, varactor-loaded phase-shifter layers,
quarter-wave-plate layers, the assembled metasurface (transmissive and
reflective responses) and the design-space factories used to compare the
Rogers-5880 reference design, the naive FR4 port and the paper's
optimized FR4 design (Figs. 8-10).
"""

from repro.metasurface.materials import (
    SubstrateMaterial,
    FR4,
    ROGERS_5880,
    ROGERS_4350B,
    AIR,
)
from repro.metasurface.varactor import VaractorDiode, SMV1233
from repro.metasurface.two_port import TwoPortNetwork, phase_shifter_bandwidth_hz
from repro.metasurface.phase_shifter import PhaseShifterLayer
from repro.metasurface.layers import QuarterWavePlateLayer, BirefringentLayer
from repro.metasurface.surface import Metasurface, SurfaceMode, SurfaceResponse
from repro.metasurface.design import (
    MetasurfaceDesign,
    llama_design,
    fr4_naive_design,
    rogers_reference_design,
    scaled_design,
    design_cost_usd,
)

__all__ = [
    "SubstrateMaterial",
    "FR4",
    "ROGERS_5880",
    "ROGERS_4350B",
    "AIR",
    "VaractorDiode",
    "SMV1233",
    "TwoPortNetwork",
    "phase_shifter_bandwidth_hz",
    "PhaseShifterLayer",
    "QuarterWavePlateLayer",
    "BirefringentLayer",
    "Metasurface",
    "SurfaceMode",
    "SurfaceResponse",
    "MetasurfaceDesign",
    "llama_design",
    "fr4_naive_design",
    "rogers_reference_design",
    "scaled_design",
    "design_cost_usd",
]
