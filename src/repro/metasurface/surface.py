"""The assembled programmable metasurface (paper Secs. 3.2 and 4).

A :class:`Metasurface` stacks two quarter-wave-plate layers around a
tunable birefringent structure and exposes the quantities the paper
evaluates:

* complex Jones response (transmissive or reflective) as a function of
  frequency and the two bias voltages,
* transmission efficiency per paper Eq. 11 (Figs. 8-11),
* realized polarization rotation angle (Table 1, Fig. 15h),
* physical/cost metadata of the fabricated lattice (Sec. 4).

Per-layer objects model the voltage-controlled phase and the dielectric
dissipation; the *frequency selectivity* of the assembled cascade (the
band-pass shape of Figs. 8-11) is a property of the matched stack as a
whole, so it is applied here as a structure-level response with a small
detuning between the X and Y axes (the reason the paper's x- and
y-excitation curves differ slightly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.constants import (
    BIAS_VOLTAGE_MAX_V,
    BIAS_VOLTAGE_MIN_V,
    DEFAULT_CENTER_FREQUENCY_HZ,
    METASURFACE_LEAKAGE_CURRENT_A,
    PROTOTYPE_SIDE_M,
    PROTOTYPE_UNIT_COUNT,
)
from repro.core.jones import JonesMatrix, JonesVector
from repro.metasurface.layers import BirefringentLayer, QuarterWavePlateLayer


class SurfaceMode(Enum):
    """Deployment mode of the metasurface (paper Fig. 14)."""

    TRANSMISSIVE = "transmissive"
    REFLECTIVE = "reflective"


@dataclass(frozen=True)
class SurfaceResponse:
    """The metasurface's response to one (frequency, Vx, Vy) operating point.

    Attributes
    ----------
    jones:
        Complex 2x2 Jones matrix applied to the incident field.
    rotation_angle_deg:
        Equivalent polarization rotation produced by the surface.
    efficiency_x, efficiency_y:
        Power transmission efficiency (Eq. 11) for x-/y-polarized
        excitation, linear scale in [0, 1].
    """

    jones: JonesMatrix
    rotation_angle_deg: float
    efficiency_x: float
    efficiency_y: float

    @property
    def efficiency_x_db(self) -> float:
        """x-excitation efficiency in dB."""
        return 10.0 * math.log10(max(self.efficiency_x, 1e-20))

    @property
    def efficiency_y_db(self) -> float:
        """y-excitation efficiency in dB."""
        return 10.0 * math.log10(max(self.efficiency_y, 1e-20))


@dataclass(frozen=True)
class Metasurface:
    """A programmable polarization-rotating metasurface.

    Attributes
    ----------
    front_qwp, back_qwp:
        Quarter-wave-plate layers at +45 and -45 degrees.
    birefringent:
        The voltage-tunable BFS stack.
    name:
        Design name for reporting.
    design_frequency_hz:
        Centre frequency of the assembled structure's pass band.
    selectivity_q:
        Effective quality factor of the structure-level band-pass
        response; sets how quickly efficiency rolls off away from the
        design frequency.
    filter_order:
        Order of the band-pass roll-off (1 gives the gentle skirts seen
        in the paper's HFSS sweeps).
    axis_detuning_hz:
        Offset between the X- and Y-axis pass-band centres caused by the
        asymmetric copper patterns.
    side_length_m:
        Physical side length of the square lattice.
    unit_count:
        Number of functional units in the lattice.
    reflective_backplane_efficiency:
        Power reflectivity of the metallic backplane used in reflective
        mode (close to 1 for copper).
    reflective_conversion_fraction:
        Fraction of the reflected energy that traverses the functional
        (anisotropic) part of the aperture twice and therefore undergoes
        polarization conversion; the remainder reflects specularly with
        its polarization unchanged (unit-cell borders, bias lines,
        frame).  A reciprocal rotator largely cancels its own rotation on
        the return pass, which is why the paper observes much smaller
        voltage sensitivity in reflection (Fig. 21); the double pass
        through the +/-45 degree QWPs still converts part of the wave
        into the orthogonal polarization, which is what produces the
        reflective power gain of Fig. 22.
    bias_derating:
        ``None`` for the idealised (HFSS-style) structure whose terminal
        voltages directly set the varactor junction voltage — this is
        what the paper's Table 1 and Figs. 8-11 simulate over 2-15 V.
        For the fabricated prototype the paper reports that "the
        effective reverse bias voltage ... may need to be as high as
        30 V ... due to the fabrication and assembly errors" (Sec. 3.3),
        i.e. the full 0-30 V terminal sweep only realises the designed
        2-15 V junction range.  Setting ``bias_derating=(2.0, 15.0)``
        applies that affine mapping, which is why the over-the-air
        rotation stays within 3-45 degrees even though the supply sweeps
        0-30 V.
    leakage_current_a:
        DC bias leakage current (paper: 15 nA).
    """

    front_qwp: QuarterWavePlateLayer
    back_qwp: QuarterWavePlateLayer
    birefringent: BirefringentLayer
    name: str = "LLAMA metasurface"
    design_frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ
    selectivity_q: float = 12.0
    filter_order: int = 1
    axis_detuning_hz: float = 15e6
    side_length_m: float = PROTOTYPE_SIDE_M
    unit_count: int = PROTOTYPE_UNIT_COUNT
    reflective_backplane_efficiency: float = 0.95
    reflective_conversion_fraction: float = 0.7
    bias_derating: Optional[Tuple[float, float]] = None
    leakage_current_a: float = METASURFACE_LEAKAGE_CURRENT_A

    def __post_init__(self) -> None:
        if self.design_frequency_hz <= 0:
            raise ValueError("design frequency must be positive")
        if self.selectivity_q <= 0:
            raise ValueError("selectivity Q must be positive")
        if self.filter_order < 1:
            raise ValueError("filter order must be at least 1")
        if self.side_length_m <= 0:
            raise ValueError("side length must be positive")
        if self.unit_count < 1:
            raise ValueError("unit count must be at least 1")
        if not (0.0 < self.reflective_backplane_efficiency <= 1.0):
            raise ValueError("backplane efficiency must be in (0, 1]")
        if not (0.0 <= self.reflective_conversion_fraction <= 1.0):
            raise ValueError("conversion fraction must be in [0, 1]")
        if self.bias_derating is not None:
            low, high = self.bias_derating
            if not (0.0 <= low < high <= BIAS_VOLTAGE_MAX_V):
                raise ValueError("bias derating must satisfy 0 <= low < high <= 30")

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_voltages(vx: float, vy: float) -> None:
        for name, value in (("Vx", vx), ("Vy", vy)):
            if not (BIAS_VOLTAGE_MIN_V <= value <= BIAS_VOLTAGE_MAX_V):
                raise ValueError(
                    f"{name}={value} V outside the supported bias range "
                    f"[{BIAS_VOLTAGE_MIN_V}, {BIAS_VOLTAGE_MAX_V}] V")

    @staticmethod
    def _validate_voltage_arrays(vx: np.ndarray,
                                 vy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Validate bias-voltage arrays and return them as float arrays."""
        vx = np.asarray(vx, dtype=float)
        vy = np.asarray(vy, dtype=float)
        for name, values in (("Vx", vx), ("Vy", vy)):
            # NaN fails both comparisons, so it is rejected here just
            # like the scalar _validate_voltages path rejects it.
            if not np.all((values >= BIAS_VOLTAGE_MIN_V) &
                          (values <= BIAS_VOLTAGE_MAX_V)):
                raise ValueError(
                    f"{name} contains voltages outside the supported bias "
                    f"range [{BIAS_VOLTAGE_MIN_V}, {BIAS_VOLTAGE_MAX_V}] V")
        return vx, vy

    def _effective_voltages(self, vx: float, vy: float) -> Tuple[float, float]:
        """Map terminal bias voltages to effective junction voltages.

        Identity for the idealised structure; the prototype derating maps
        the 0-30 V terminal range onto the designed junction range.
        """
        if self.bias_derating is None:
            return (vx, vy)
        low, high = self.bias_derating
        span = BIAS_VOLTAGE_MAX_V - BIAS_VOLTAGE_MIN_V
        scale = (high - low) / span
        return (low + (vx - BIAS_VOLTAGE_MIN_V) * scale,
                low + (vy - BIAS_VOLTAGE_MIN_V) * scale)

    # ------------------------------------------------------------------ #
    # Structure-level band-pass response
    # ------------------------------------------------------------------ #
    def bandpass_loss_db(self, frequency_hz, axis: str = "x"):
        """Band-pass roll-off of the assembled structure for one axis (dB).

        ``frequency_hz`` may be a scalar (returns a float) or a NumPy
        array (returns the element-wise roll-off with the same shape).
        """
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0):
            raise ValueError("frequency must be positive")
        if axis not in ("x", "y"):
            raise ValueError("axis must be 'x' or 'y'")
        center = self.design_frequency_hz + (
            self.axis_detuning_hz if axis == "y" else -self.axis_detuning_hz)
        normalized = 2.0 * self.selectivity_q * (frequency - center) / center
        value = 10.0 * np.log10(1.0 + normalized ** (2 * self.filter_order))
        if np.isscalar(frequency_hz):
            return float(value)
        return value

    def _bandpass_amplitudes(self, frequency_hz) -> Tuple:
        """Per-axis field amplitude factors of the band-pass response."""
        amp_x = 10.0 ** (-self.bandpass_loss_db(frequency_hz, "x") / 20.0)
        amp_y = 10.0 ** (-self.bandpass_loss_db(frequency_hz, "y") / 20.0)
        return amp_x, amp_y

    # ------------------------------------------------------------------ #
    # Transmissive response
    # ------------------------------------------------------------------ #
    def jones_matrix(self, frequency_hz: float, vx: float,
                     vy: float) -> JonesMatrix:
        """Transmissive Jones matrix ``Q(+45) B(Vx, Vy) Q(-45)`` with loss.

        The structure-level band-pass response is applied per incident
        field axis, so the matrix is consistent with
        :meth:`transmission_efficiency` at every frequency.  Scalar view
        of :meth:`jones_matrix_batch` (the cascade exists once, in the
        batch path).
        """
        self._validate_voltages(vx, vy)
        return JonesMatrix(self.jones_matrix_batch(frequency_hz, vx, vy))

    def jones_matrix_batch(self, frequency_hz, vx: np.ndarray,
                           vy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`jones_matrix` over bias-voltage arrays.

        ``vx``, ``vy`` and ``frequency_hz`` must broadcast against each
        other (frequency may be a scalar, or e.g. an ``(n, 1)`` column
        sweeping the carrier alongside an ``(n, k)`` bias grid); the
        result is a complex ``(..., 2, 2)`` array whose trailing
        matrices equal the scalar :meth:`jones_matrix` at each
        (frequency, voltage) operating point.
        """
        vx, vy = self._validate_voltage_arrays(vx, vy)
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0):
            raise ValueError("frequency must be positive")
        effective_vx, effective_vy = self._effective_voltages(vx, vy)
        # The QWP layers' loss model is frequency-flat (dielectric
        # dissipation only), so their matrices are constants of the
        # stack and can be evaluated once at the design frequency.
        front = self.front_qwp.jones_matrix(self.design_frequency_hz).as_array()
        back = self.back_qwp.jones_matrix(self.design_frequency_hz).as_array()
        dx, dy = self.birefringent.diagonal_batch(frequency, effective_vx,
                                                  effective_vy)
        # front @ diag(dx, dy) scales front's columns element-wise, then
        # the full matmul with `back` reproduces the scalar cascade.
        diagonal = np.stack(np.broadcast_arrays(dx, dy), axis=-1)
        cascade = (front[..., :, :] * diagonal[..., None, :]) @ back
        amp_x, amp_y = self._bandpass_amplitudes(frequency)
        bandpass = np.stack(np.broadcast_arrays(
            np.asarray(amp_x, dtype=float), np.asarray(amp_y, dtype=float)),
            axis=-1)
        return cascade * bandpass[..., None, :]

    def rotation_angle_deg(self, frequency_hz: float, vx: float,
                           vy: float) -> float:
        """Polarization rotation produced in transmissive mode (degrees).

        Equals half the differential phase of the BFS (paper Eq. 8); the
        sign convention is such that the magnitude matches Table 1.
        """
        self._validate_voltages(vx, vy)
        effective_vx, effective_vy = self._effective_voltages(vx, vy)
        delta = self.birefringent.differential_phase_rad(
            frequency_hz, effective_vx, effective_vy)
        return math.degrees(delta) / 2.0

    def transmission_efficiency(self, frequency_hz: float, vx: float,
                                vy: float, excitation: str = "x") -> float:
        """Power transmission efficiency for a linearly polarized excitation.

        Implements paper Eq. 11: the sum of co- and cross-polarized
        transmitted power fractions for a unit-power incident wave.
        """
        if excitation not in ("x", "y"):
            raise ValueError("excitation must be 'x' or 'y'")
        jones = self.jones_matrix(frequency_hz, vx, vy)
        incident = (JonesVector.horizontal() if excitation == "x"
                    else JonesVector.vertical())
        return float(min(1.0, jones.apply(incident).intensity))

    def transmission_efficiency_db(self, frequency_hz: float, vx: float,
                                   vy: float, excitation: str = "x") -> float:
        """Transmission efficiency in dB (paper Figs. 8-11 y-axis)."""
        efficiency = self.transmission_efficiency(frequency_hz, vx, vy,
                                                  excitation)
        return 10.0 * math.log10(max(efficiency, 1e-20))

    # ------------------------------------------------------------------ #
    # Reflective response
    # ------------------------------------------------------------------ #
    def reflection_jones_matrix(self, frequency_hz: float, vx: float,
                                vy: float) -> JonesMatrix:
        """Jones matrix for reflective operation.

        The wave traverses the stack, reflects off the metallic backplane
        and traverses the stack again.  The return pass through a
        reciprocal stack is described by the transpose of the forward
        Jones matrix, and the backplane is modelled as an ideal mirror
        ``diag(1, -1)``.  Only ``reflective_conversion_fraction`` of the
        aperture participates in this anisotropic double traversal; the
        remainder reflects specularly with its polarization unchanged.
        Scalar view of :meth:`reflection_jones_matrix_batch`.
        """
        self._validate_voltages(vx, vy)
        return JonesMatrix(
            self.reflection_jones_matrix_batch(frequency_hz, vx, vy))

    def reflection_jones_matrix_batch(self, frequency_hz,
                                      vx: np.ndarray,
                                      vy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`reflection_jones_matrix` over voltage arrays.

        Accepts the same broadcastable frequency/voltage arrays as
        :meth:`jones_matrix_batch`; returns a complex ``(..., 2, 2)``
        array whose trailing matrices equal the scalar reflective Jones
        matrix at each operating point.
        """
        one_way = self.jones_matrix_batch(frequency_hz, vx, vy)
        mirror = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
        backplane_amplitude = math.sqrt(self.reflective_backplane_efficiency)
        transposed = np.swapaxes(one_way, -1, -2)
        converted = transposed @ (backplane_amplitude * mirror) @ one_way
        specular = backplane_amplitude * np.eye(2, dtype=complex)
        fraction = self.reflective_conversion_fraction
        return fraction * converted + (1.0 - fraction) * specular

    def reflection_efficiency(self, frequency_hz: float, vx: float,
                              vy: float, excitation: str = "x") -> float:
        """Power reflection efficiency for a linearly polarized excitation."""
        if excitation not in ("x", "y"):
            raise ValueError("excitation must be 'x' or 'y'")
        jones = self.reflection_jones_matrix(frequency_hz, vx, vy)
        incident = (JonesVector.horizontal() if excitation == "x"
                    else JonesVector.vertical())
        return float(min(1.0, jones.apply(incident).intensity))

    # ------------------------------------------------------------------ #
    # Mode dispatch and bookkeeping
    # ------------------------------------------------------------------ #
    def response(self, frequency_hz: float, vx: float, vy: float,
                 mode: SurfaceMode = SurfaceMode.TRANSMISSIVE) -> SurfaceResponse:
        """Full response record at one operating point."""
        if mode is SurfaceMode.TRANSMISSIVE:
            jones = self.jones_matrix(frequency_hz, vx, vy)
            rotation = self.rotation_angle_deg(frequency_hz, vx, vy)
            eff_x = self.transmission_efficiency(frequency_hz, vx, vy, "x")
            eff_y = self.transmission_efficiency(frequency_hz, vx, vy, "y")
        else:
            jones = self.reflection_jones_matrix(frequency_hz, vx, vy)
            # In reflection the relevant quantity is the polarization
            # conversion angle of the round trip, which for the ideal
            # rotator equals twice the one-way rotation scaled by the
            # functional-aperture fraction.
            rotation = (self.reflective_conversion_fraction * 2.0 *
                        self.rotation_angle_deg(frequency_hz, vx, vy))
            eff_x = self.reflection_efficiency(frequency_hz, vx, vy, "x")
            eff_y = self.reflection_efficiency(frequency_hz, vx, vy, "y")
        return SurfaceResponse(jones=jones, rotation_angle_deg=rotation,
                               efficiency_x=eff_x, efficiency_y=eff_y)

    def rotation_range_deg(self, frequency_hz: float,
                           voltage_low_v: float = 2.0,
                           voltage_high_v: float = 15.0) -> Tuple[float, float]:
        """(min, max) |rotation| over the corner points of the voltage range.

        The paper reports 1.9-48.7 degrees over the 2-15 V range
        (Table 1) and 3-45 degrees measured over the air (Sec. 5.1.1).
        """
        corners = [
            (voltage_low_v, voltage_low_v),
            (voltage_low_v, voltage_high_v),
            (voltage_high_v, voltage_low_v),
            (voltage_high_v, voltage_high_v),
        ]
        magnitudes = [abs(self.rotation_angle_deg(frequency_hz, vx, vy))
                      for vx, vy in corners]
        return (min(magnitudes), max(magnitudes))

    @property
    def area_m2(self) -> float:
        """Aperture area of the lattice in square metres."""
        return self.side_length_m ** 2

    def standby_power_w(self, bias_voltage_v: float = BIAS_VOLTAGE_MAX_V) -> float:
        """DC power drawn by the bias network (paper: ~15 nA leakage)."""
        if bias_voltage_v < 0:
            raise ValueError("bias voltage must be non-negative")
        return self.leakage_current_a * bias_voltage_v


__all__ = ["Metasurface", "SurfaceMode", "SurfaceResponse"]
