"""Dielectric substrate materials (paper Sec. 3.2).

The paper's central cost/performance trade-off is the choice of PCB
substrate: Rogers 5880 (loss tangent 0.0009) achieves high transmission
efficiency but is cost-prohibitive at scale, while FR4 (loss tangent
0.02) is cheap but lossy and requires the structural optimization LLAMA
introduces.  This module defines the material model used by the layer
and surface classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SPEED_OF_LIGHT


@dataclass(frozen=True)
class SubstrateMaterial:
    """A PCB dielectric substrate.

    Attributes
    ----------
    name:
        Commercial material name.
    relative_permittivity:
        Real part of the relative dielectric constant (epsilon_r).
    loss_tangent:
        Dielectric loss tangent (tan delta); drives transmission loss.
    cost_per_square_meter_usd:
        Approximate board cost used by the design cost model.
    """

    name: str
    relative_permittivity: float
    loss_tangent: float
    cost_per_square_meter_usd: float

    def __post_init__(self) -> None:
        if self.relative_permittivity < 1.0:
            raise ValueError("relative permittivity must be >= 1")
        if self.loss_tangent < 0.0:
            raise ValueError("loss tangent must be non-negative")
        if self.cost_per_square_meter_usd < 0.0:
            raise ValueError("cost must be non-negative")

    @property
    def dielectric_quality_factor(self) -> float:
        """Unloaded quality factor limit set by dielectric loss, ``1/tan(d)``."""
        if self.loss_tangent == 0.0:
            return float("inf")
        return 1.0 / self.loss_tangent

    def wavelength_in_material_m(self, frequency_hz: float) -> float:
        """Guided wavelength inside the dielectric at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return SPEED_OF_LIGHT / (frequency_hz * math.sqrt(self.relative_permittivity))

    def dielectric_attenuation_db_per_meter(self, frequency_hz: float) -> float:
        """Bulk dielectric attenuation in dB/m at ``frequency_hz``.

        Standard plane-wave result for a low-loss dielectric:
        ``alpha = pi * f * sqrt(eps_r) * tan(d) / c`` nepers per metre,
        converted to dB (1 Np = 8.686 dB).
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        alpha_np = (math.pi * frequency_hz *
                    math.sqrt(self.relative_permittivity) *
                    self.loss_tangent / SPEED_OF_LIGHT)
        return 8.685889638 * alpha_np

    def transmission_loss_db(self, frequency_hz: float, thickness_m: float,
                             path_multiplier: float = 1.0) -> float:
        """Dielectric loss for a wave crossing ``thickness_m`` of material.

        ``path_multiplier`` accounts for resonant structures where the
        effective electrical path greatly exceeds the physical thickness.
        """
        if thickness_m < 0:
            raise ValueError("thickness must be non-negative")
        if path_multiplier < 0:
            raise ValueError("path multiplier must be non-negative")
        return (self.dielectric_attenuation_db_per_meter(frequency_hz) *
                thickness_m * path_multiplier)


#: Cheap glass-epoxy laminate used by LLAMA (paper reference [13]).
FR4 = SubstrateMaterial(
    name="FR4",
    relative_permittivity=4.4,
    loss_tangent=0.02,
    cost_per_square_meter_usd=45.0,
)

#: Low-loss PTFE laminate used by the 10 GHz reference design [36].
ROGERS_5880 = SubstrateMaterial(
    name="Rogers RT/duroid 5880",
    relative_permittivity=2.2,
    loss_tangent=0.0009,
    cost_per_square_meter_usd=900.0,
)

#: Mid-range laminate included for design-space exploration.
ROGERS_4350B = SubstrateMaterial(
    name="Rogers RO4350B",
    relative_permittivity=3.48,
    loss_tangent=0.0037,
    cost_per_square_meter_usd=400.0,
)

#: Idealised lossless spacer.
AIR = SubstrateMaterial(
    name="Air",
    relative_permittivity=1.0,
    loss_tangent=0.0,
    cost_per_square_meter_usd=0.0,
)

__all__ = ["SubstrateMaterial", "FR4", "ROGERS_5880", "ROGERS_4350B", "AIR"]
