"""Multi-link extension: dense IoT deployments sharing one metasurface.

The paper's conclusion sketches the next step beyond single links: "When
there are multiple IoT devices in different polarization orientations,
tuning the signal polarization can lead to a new form of polarization
reuse or access control and improve the network throughput for dense IoT
deployments."  This package implements that extension on top of the
single-link machinery:

* :mod:`repro.network.deployment` — a dense deployment of IoT stations
  around one access point and one shared LLAMA surface;
* :mod:`repro.network.scheduler` — TDMA schedulers that decide which
  bias pair serves which station in each slot (fixed-bias baseline,
  per-station retuning, and orientation-clustered "polarization reuse");
* :mod:`repro.network.access_control` — polarization-based access
  control: choosing a bias pair that serves the intended station while
  keeping an unauthorised receiver below its decoding threshold.

Since PR 4 every utility search in this package is *fleet-stacked*: the
deployment exposes whole-fleet planes (``rssi_matrix``,
``best_bias_per_station``, ``compromise_bias``) that evaluate all
stations in one NumPy pass of the link budget via
:class:`repro.channel.ensemble.LinkEnsemble`; the declarative session
facade lives in :mod:`repro.api.fleet`.
"""

from repro.network.deployment import DenseDeployment, StationPlacement
from repro.network.scheduler import (
    ScheduleResult,
    StationAllocation,
    FixedBiasScheduler,
    PerStationScheduler,
    PolarizationReuseScheduler,
    baseline_without_surface,
    jain_fairness_index,
)
from repro.network.access_control import (
    AccessControlResult,
    polarization_access_control,
)

__all__ = [
    "DenseDeployment",
    "StationPlacement",
    "ScheduleResult",
    "StationAllocation",
    "FixedBiasScheduler",
    "PerStationScheduler",
    "PolarizationReuseScheduler",
    "baseline_without_surface",
    "jain_fairness_index",
    "AccessControlResult",
    "polarization_access_control",
]
