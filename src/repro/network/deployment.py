"""Dense IoT deployment model (paper Sec. 7 / conclusion).

A deployment is a set of IoT stations at different positions and —
crucially for LLAMA — different antenna orientations, all talking to one
access point through (or past) one shared metasurface.  Since PR 4 the
deployment's data plane is *fleet-stacked*: the per-station parameters
(distance, transmit power, transmit-antenna orientation) form a
:class:`~repro.channel.ensemble.LinkEnsemble`, so the received power of
**every** station over **every** probed bias pair evaluates in a single
NumPy pass of the link budget (:meth:`DenseDeployment.rssi_matrix`).
The schedulers in :mod:`repro.network.scheduler`, the access-control
search and the :class:`repro.api.fleet.FleetSession` facade all ride on
those stacked planes; the historical per-station entry points
(:meth:`rssi_dbm_batch`, :meth:`rate_mbps_batch`, ...) survive as thin
shims over cached per-station links.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.antenna import dipole_antenna
from repro.channel.ensemble import LinkEnsemble
from repro.channel.geometry import LinkGeometry
from repro.core.controller import vectorized_grid_max
from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.channel.multipath import MultipathEnvironment
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.devices.wifi import netgear_access_point, wifi_rate_for_rssi_mbps
from repro.metasurface.design import llama_design
from repro.metasurface.surface import Metasurface


@dataclass(frozen=True)
class StationPlacement:
    """One IoT station in the deployment.

    Attributes
    ----------
    name:
        Station identifier.
    distance_m:
        Distance from the access point (the surface sits midway).
    orientation_deg:
        Antenna polarization orientation the user happened to deploy.
    tx_power_dbm:
        Uplink transmit power.
    traffic_demand_mbps:
        Offered load, used by the schedulers' utility metrics.
    """

    name: str
    distance_m: float
    orientation_deg: float
    tx_power_dbm: float = 14.0
    traffic_demand_mbps: float = 10.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError("distance must be positive")
        if self.traffic_demand_mbps <= 0:
            raise ValueError("traffic demand must be positive")


class DenseDeployment:
    """A set of stations sharing one access point and one metasurface.

    Parameters
    ----------
    stations:
        Station placements.
    metasurface:
        The shared surface (the optimized FR4 prototype by default).
    ap_orientation_deg:
        Polarization orientation of the access-point antenna.
    environment_seed:
        Seed of the shared multipath environment.
    """

    def __init__(self,
                 stations: Sequence[StationPlacement],
                 metasurface: Optional[Metasurface] = None,
                 ap_orientation_deg: float = 0.0,
                 frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ,
                 environment_seed: int = 2021):
        if not stations:
            raise ValueError("a deployment needs at least one station")
        names = [station.name for station in stations]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")
        self.stations: Tuple[StationPlacement, ...] = tuple(stations)
        self.metasurface = (metasurface if metasurface is not None
                            else llama_design().build())
        self.ap_orientation_deg = ap_orientation_deg
        self.frequency_hz = frequency_hz
        self.environment_seed = environment_seed
        self._station_index: Dict[str, int] = {
            station.name: index for index, station in enumerate(self.stations)}
        # All stations share the AP antenna and the (deterministic)
        # multipath environment; build each exactly once.
        self._ap_antenna = netgear_access_point(
            orientation_deg=ap_orientation_deg).antenna
        self._environment = MultipathEnvironment(
            absorber_enabled=False, rician_k_db=10.0, ray_count=12,
            seed=environment_seed)
        self._links: Dict[str, WirelessLink] = {}
        self._baselines: Dict[str, WirelessLink] = {}
        self._ensembles: Dict[Tuple[Tuple[str, ...], bool], LinkEnsemble] = {}

    # ------------------------------------------------------------------ #
    # Link construction
    # ------------------------------------------------------------------ #
    def _configuration(self, station: StationPlacement,
                       with_surface: bool) -> LinkConfiguration:
        configuration = LinkConfiguration(
            tx_antenna=dipole_antenna(orientation_deg=station.orientation_deg,
                                      name=f"{station.name} antenna"),
            rx_antenna=self._ap_antenna,
            geometry=LinkGeometry.transmissive(station.distance_m),
            frequency_hz=self.frequency_hz,
            tx_power_dbm=station.tx_power_dbm,
            bandwidth_hz=20e6,
            environment=self._environment,
            metasurface=self.metasurface if with_surface else None,
            deployment=(DeploymentMode.TRANSMISSIVE if with_surface
                        else DeploymentMode.NONE),
        )
        return configuration

    def link_for(self, station_name: str) -> WirelessLink:
        """With-surface uplink of one station (built once, cached)."""
        if station_name not in self._links:
            station = self.station(station_name)
            self._links[station_name] = WirelessLink(
                self._configuration(station, with_surface=True))
        return self._links[station_name]

    def baseline_link_for(self, station_name: str) -> WirelessLink:
        """No-surface uplink of one station (built once, cached)."""
        if station_name not in self._baselines:
            station = self.station(station_name)
            self._baselines[station_name] = WirelessLink(
                self._configuration(station, with_surface=False))
        return self._baselines[station_name]

    def station(self, name: str) -> StationPlacement:
        """Look up a station by name (O(1))."""
        try:
            return self.stations[self._station_index[name]]
        except KeyError:
            raise KeyError(f"unknown station {name!r}") from None

    def station_index(self, name: str) -> int:
        """Position of a station on the fleet's stacked station axis."""
        try:
            return self._station_index[name]
        except KeyError:
            raise KeyError(f"unknown station {name!r}") from None

    @property
    def station_names(self) -> Tuple[str, ...]:
        """Station names in stacking order."""
        return tuple(station.name for station in self.stations)

    # ------------------------------------------------------------------ #
    # The fleet-stacked data plane
    # ------------------------------------------------------------------ #
    def _resolve_names(self,
                       names: Optional[Sequence[str]]) -> Tuple[str, ...]:
        if names is None:
            return self.station_names
        resolved = tuple(names)
        for name in resolved:
            self.station(name)  # raises KeyError for unknown stations
        return resolved

    def ensemble_for(self, names: Optional[Sequence[str]] = None,
                     with_surface: bool = True) -> LinkEnsemble:
        """The stacked link ensemble of a set of stations (cached).

        ``names`` selects (and orders) the stations on the leading axis;
        ``None`` stacks the whole deployment.  The ensemble shares one
        base link, so its direct/clutter field caches are computed once
        for the entire fleet.  An explicit empty selection yields a
        zero-station ensemble (every stacked probe returns an empty
        leading axis) — the degenerate fleet a fully-quarantined
        scheduler still has to evaluate.
        """
        key = (self._resolve_names(names), bool(with_surface))
        if key not in self._ensembles:
            stations = [self.station(name) for name in key[0]]
            # A zero-station ensemble still needs a base link to carry
            # the shared physics; any placement serves as the template.
            template = stations[0] if stations else self.stations[0]
            base = replace(
                self._configuration(template, with_surface=with_surface),
                tx_antenna=dipole_antenna(name="station antenna"))
            self._ensembles[key] = LinkEnsemble(
                base,
                distance_m=[station.distance_m for station in stations],
                tx_power_dbm=[station.tx_power_dbm for station in stations],
                tx_orientation_deg=[station.orientation_deg
                                    for station in stations])
        return self._ensembles[key]

    def rssi_matrix(self, vx, vy,
                    names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Uplink RSSI of every station at every bias pair, one pass.

        ``vx`` / ``vy`` may be scalars or mutually broadcastable arrays;
        the result is shaped ``(station_count,) + broadcast(vx, vy)``
        with stations stacked along the leading axis in ``names`` order
        (deployment order when ``None``).
        """
        return self.ensemble_for(names).measure_batch(vx, vy)

    def rate_matrix(self, vx, vy,
                    names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Achievable 802.11g PHY rates of every station, one pass."""
        return np.asarray(wifi_rate_for_rssi_mbps(
            self.rssi_matrix(vx, vy, names)), dtype=float)

    def rssi_aligned(self, vx, vy,
                     names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Per-station RSSI at *per-station* bias pairs (element-wise).

        ``vx`` / ``vy`` are scalars or arrays aligned with the station
        axis (one bias pair per station); the result is ``(n,)``.
        """
        return self.ensemble_for(names).measure_aligned(vx, vy)

    def baseline_rssi_vector(
            self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """No-surface uplink RSSI of every station, one pass."""
        return np.asarray(self.ensemble_for(
            names, with_surface=False).measure_batch(0.0, 0.0))

    def baseline_rate_vector(
            self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """No-surface achievable rate of every station, one pass."""
        return np.asarray(wifi_rate_for_rssi_mbps(
            self.baseline_rssi_vector(names)), dtype=float)

    def best_bias_per_station(self, step_v: float = 5.0,
                              names: Optional[Sequence[str]] = None
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grid-search every station's best bias pair in one stacked pass.

        Returns ``(vx, vy, rssi_dbm)`` arrays aligned with the station
        axis; element ``i`` matches :meth:`best_bias_for` on station
        ``i`` (same vx-major grid, same first-maximum semantics).
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
        vx_grid, vy_grid = np.meshgrid(levels, levels, indexing="ij")
        vx_flat, vy_flat = vx_grid.ravel(), vy_grid.ravel()
        powers = self.rssi_matrix(vx_flat, vy_flat, names)
        masked = np.where(np.isnan(powers), -np.inf, powers)
        best = np.argmax(masked, axis=1)
        rows = np.arange(powers.shape[0])
        return vx_flat[best], vy_flat[best], powers[rows, best]

    def compromise_bias(self, names: Optional[Sequence[str]] = None,
                        step_v: float = 5.0) -> Tuple[float, float]:
        """Bias pair maximizing the summed rate of a set of stations.

        The whole (Vx, Vy) grid crossed with the whole station set is
        one stacked probe; the per-station utilities reduce over the
        leading station axis.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
        vx_flat, vy_flat, _utility, best_index = vectorized_grid_max(
            levels, levels,
            lambda vx, vy: self.rate_matrix(vx, vy, names).sum(axis=0))
        return (float(vx_flat[best_index]), float(vy_flat[best_index]))

    # ------------------------------------------------------------------ #
    # Per-station metrics (thin shims over the cached links / the fleet)
    # ------------------------------------------------------------------ #
    def rssi_dbm(self, station_name: str, vx: float, vy: float) -> float:
        """Uplink RSSI of a station at a given surface bias pair."""
        return self.link_for(station_name).received_power_dbm(vx, vy)

    def baseline_rssi_dbm(self, station_name: str) -> float:
        """Uplink RSSI of a station with no surface deployed."""
        return self.baseline_link_for(station_name).received_power_dbm()

    def rssi_dbm_batch(self, station_name: str, vx: np.ndarray,
                       vy: np.ndarray) -> np.ndarray:
        """Vectorized uplink RSSI of one station over whole bias grids.

        .. deprecated::
            Superseded by the station-stacked :meth:`rssi_matrix` (all
            stations in one pass); this shim survives for single-station
            campaigns and probes the station's cached link.
        """
        warnings.warn(
            "DenseDeployment.rssi_dbm_batch is deprecated; use "
            "rssi_matrix(vx, vy, names=[station]) (or FleetSession."
            "measure_grid) to probe stations in one stacked pass",
            DeprecationWarning, stacklevel=2)
        return self.link_for(station_name).received_power_dbm_batch(vx, vy)

    def rate_mbps(self, station_name: str, vx: float, vy: float) -> float:
        """Achievable 802.11g PHY rate of a station at a bias pair."""
        return float(wifi_rate_for_rssi_mbps(self.rssi_dbm(station_name, vx, vy)))

    def rate_mbps_batch(self, station_name: str, vx: np.ndarray,
                        vy: np.ndarray) -> np.ndarray:
        """Vectorized achievable PHY rate of one station over bias grids.

        .. deprecated::
            Superseded by the station-stacked :meth:`rate_matrix`.
        """
        warnings.warn(
            "DenseDeployment.rate_mbps_batch is deprecated; use "
            "rate_matrix(vx, vy, names=[station]) (or FleetSession."
            "rate_grid) to probe stations in one stacked pass",
            DeprecationWarning, stacklevel=2)
        return np.asarray(wifi_rate_for_rssi_mbps(
            self.link_for(station_name).received_power_dbm_batch(vx, vy)),
            dtype=float)

    def baseline_rate_mbps(self, station_name: str) -> float:
        """Achievable rate of a station with no surface deployed."""
        return float(wifi_rate_for_rssi_mbps(self.baseline_rssi_dbm(station_name)))

    def best_bias_for(self, station_name: str,
                      step_v: float = 5.0) -> Tuple[float, float, float]:
        """Grid-search the bias pair maximizing one station's RSSI.

        A single-station view of :meth:`best_bias_per_station` (one
        stacked probe over the station's sub-ensemble).  Returns
        ``(vx, vy, rssi_dbm)``.
        """
        vx, vy, power = self.best_bias_per_station(step_v=step_v,
                                                   names=[station_name])
        return (float(vx[0]), float(vy[0]), float(power[0]))

    def orientation_groups(self, tolerance_deg: float = 20.0) -> List[List[str]]:
        """Cluster stations whose antenna orientations are similar.

        Stations within ``tolerance_deg`` of a group's first member share
        a group; this is the "polarization reuse" structure the
        polarization-reuse scheduler exploits (one bias pair can serve a
        whole group well).
        """
        if tolerance_deg <= 0:
            raise ValueError("tolerance must be positive")
        groups: List[List[str]] = []
        anchors: List[float] = []
        for station in self.stations:
            orientation = station.orientation_deg % 180.0
            placed = False
            for group, anchor in zip(groups, anchors):
                difference = abs(orientation - anchor) % 180.0
                difference = min(difference, 180.0 - difference)
                if difference <= tolerance_deg:
                    group.append(station.name)
                    placed = True
                    break
            if not placed:
                groups.append([station.name])
                anchors.append(orientation)
        return groups

    @staticmethod
    def random_home(station_count: int = 6, seed: int = 7,
                    metasurface: Optional[Metasurface] = None) -> "DenseDeployment":
        """A reproducible random smart-home deployment.

        Stations are scattered 2-8 m from the AP with arbitrary antenna
        orientations, mimicking how end users actually deploy devices.
        """
        if station_count < 1:
            raise ValueError("need at least one station")
        rng = np.random.default_rng(seed)
        stations = [
            StationPlacement(
                name=f"station-{index}",
                distance_m=float(rng.uniform(2.0, 8.0)),
                orientation_deg=float(rng.uniform(0.0, 180.0)),
                tx_power_dbm=14.0,
                traffic_demand_mbps=float(rng.uniform(2.0, 20.0)),
            )
            for index in range(station_count)
        ]
        return DenseDeployment(stations, metasurface=metasurface, environment_seed=seed)


__all__ = ["StationPlacement", "DenseDeployment"]
