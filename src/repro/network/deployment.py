"""Dense IoT deployment model (paper conclusion / future work).

A deployment is a set of IoT stations at different positions and —
crucially for LLAMA — different antenna orientations, all talking to one
access point through (or past) one shared metasurface.  The deployment
exposes, for every station, the received power as a function of the
surface's bias pair, which is all the schedulers in
:mod:`repro.network.scheduler` need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.antenna import dipole_antenna
from repro.channel.geometry import LinkGeometry
from repro.core.controller import vectorized_grid_max
from repro.channel.link import DeploymentMode, LinkConfiguration, WirelessLink
from repro.channel.multipath import MultipathEnvironment
from repro.constants import DEFAULT_CENTER_FREQUENCY_HZ
from repro.devices.wifi import netgear_access_point, wifi_rate_for_rssi_mbps
from repro.metasurface.design import llama_design
from repro.metasurface.surface import Metasurface


@dataclass(frozen=True)
class StationPlacement:
    """One IoT station in the deployment.

    Attributes
    ----------
    name:
        Station identifier.
    distance_m:
        Distance from the access point (the surface sits midway).
    orientation_deg:
        Antenna polarization orientation the user happened to deploy.
    tx_power_dbm:
        Uplink transmit power.
    traffic_demand_mbps:
        Offered load, used by the schedulers' utility metrics.
    """

    name: str
    distance_m: float
    orientation_deg: float
    tx_power_dbm: float = 14.0
    traffic_demand_mbps: float = 10.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError("distance must be positive")
        if self.traffic_demand_mbps <= 0:
            raise ValueError("traffic demand must be positive")


class DenseDeployment:
    """A set of stations sharing one access point and one metasurface.

    Parameters
    ----------
    stations:
        Station placements.
    metasurface:
        The shared surface (the optimized FR4 prototype by default).
    ap_orientation_deg:
        Polarization orientation of the access-point antenna.
    environment_seed:
        Seed of the shared multipath environment.
    """

    def __init__(self,
                 stations: Sequence[StationPlacement],
                 metasurface: Optional[Metasurface] = None,
                 ap_orientation_deg: float = 0.0,
                 frequency_hz: float = DEFAULT_CENTER_FREQUENCY_HZ,
                 environment_seed: int = 2021):
        if not stations:
            raise ValueError("a deployment needs at least one station")
        names = [station.name for station in stations]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")
        self.stations: Tuple[StationPlacement, ...] = tuple(stations)
        self.metasurface = (metasurface if metasurface is not None
                            else llama_design().build())
        self.ap_orientation_deg = ap_orientation_deg
        self.frequency_hz = frequency_hz
        self.environment_seed = environment_seed
        self._links: Dict[str, WirelessLink] = {}
        self._baselines: Dict[str, WirelessLink] = {}

    # ------------------------------------------------------------------ #
    # Link construction
    # ------------------------------------------------------------------ #
    def _configuration(self, station: StationPlacement,
                       with_surface: bool) -> LinkConfiguration:
        access_point = netgear_access_point(
            orientation_deg=self.ap_orientation_deg)
        configuration = LinkConfiguration(
            tx_antenna=dipole_antenna(orientation_deg=station.orientation_deg,
                                      name=f"{station.name} antenna"),
            rx_antenna=access_point.antenna,
            geometry=LinkGeometry.transmissive(station.distance_m),
            frequency_hz=self.frequency_hz,
            tx_power_dbm=station.tx_power_dbm,
            bandwidth_hz=20e6,
            environment=MultipathEnvironment(absorber_enabled=False,
                                             rician_k_db=10.0, ray_count=12,
                                             seed=self.environment_seed),
            metasurface=self.metasurface if with_surface else None,
            deployment=(DeploymentMode.TRANSMISSIVE if with_surface
                        else DeploymentMode.NONE),
        )
        return configuration

    def link_for(self, station_name: str) -> WirelessLink:
        """With-surface uplink of one station (cached)."""
        if station_name not in self._links:
            station = self.station(station_name)
            self._links[station_name] = WirelessLink(
                self._configuration(station, with_surface=True))
        return self._links[station_name]

    def baseline_link_for(self, station_name: str) -> WirelessLink:
        """No-surface uplink of one station (cached)."""
        if station_name not in self._baselines:
            station = self.station(station_name)
            self._baselines[station_name] = WirelessLink(
                self._configuration(station, with_surface=False))
        return self._baselines[station_name]

    def station(self, name: str) -> StationPlacement:
        """Look up a station by name."""
        for station in self.stations:
            if station.name == name:
                return station
        raise KeyError(f"unknown station {name!r}")

    # ------------------------------------------------------------------ #
    # Per-station metrics
    # ------------------------------------------------------------------ #
    def rssi_dbm(self, station_name: str, vx: float, vy: float) -> float:
        """Uplink RSSI of a station at a given surface bias pair."""
        return self.link_for(station_name).received_power_dbm(vx, vy)

    def baseline_rssi_dbm(self, station_name: str) -> float:
        """Uplink RSSI of a station with no surface deployed."""
        return self.baseline_link_for(station_name).received_power_dbm()

    def rssi_dbm_batch(self, station_name: str, vx: np.ndarray,
                       vy: np.ndarray) -> np.ndarray:
        """Vectorized uplink RSSI over whole bias grids (one NumPy pass)."""
        return self.link_for(station_name).received_power_dbm_batch(vx, vy)

    def rate_mbps(self, station_name: str, vx: float, vy: float) -> float:
        """Achievable 802.11g PHY rate of a station at a bias pair."""
        return float(wifi_rate_for_rssi_mbps(self.rssi_dbm(station_name, vx, vy)))

    def rate_mbps_batch(self, station_name: str, vx: np.ndarray,
                        vy: np.ndarray) -> np.ndarray:
        """Vectorized achievable PHY rate over whole bias grids."""
        return np.asarray(wifi_rate_for_rssi_mbps(
            self.rssi_dbm_batch(station_name, vx, vy)), dtype=float)

    def baseline_rate_mbps(self, station_name: str) -> float:
        """Achievable rate of a station with no surface deployed."""
        return float(wifi_rate_for_rssi_mbps(self.baseline_rssi_dbm(station_name)))

    def best_bias_for(self, station_name: str,
                      step_v: float = 5.0) -> Tuple[float, float, float]:
        """Grid-search the bias pair maximizing one station's RSSI.

        The grid is evaluated as one batched probe.  Returns
        ``(vx, vy, rssi_dbm)``.
        """
        if step_v <= 0:
            raise ValueError("step must be positive")
        levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
        vx_flat, vy_flat, powers, best_index = vectorized_grid_max(
            levels, levels,
            lambda vx, vy: self.rssi_dbm_batch(station_name, vx, vy))
        return (float(vx_flat[best_index]), float(vy_flat[best_index]),
                float(powers[best_index]))

    def orientation_groups(self, tolerance_deg: float = 20.0) -> List[List[str]]:
        """Cluster stations whose antenna orientations are similar.

        Stations within ``tolerance_deg`` of a group's first member share
        a group; this is the "polarization reuse" structure the
        polarization-reuse scheduler exploits (one bias pair can serve a
        whole group well).
        """
        if tolerance_deg <= 0:
            raise ValueError("tolerance must be positive")
        groups: List[List[str]] = []
        anchors: List[float] = []
        for station in self.stations:
            orientation = station.orientation_deg % 180.0
            placed = False
            for group, anchor in zip(groups, anchors):
                difference = abs(orientation - anchor) % 180.0
                difference = min(difference, 180.0 - difference)
                if difference <= tolerance_deg:
                    group.append(station.name)
                    placed = True
                    break
            if not placed:
                groups.append([station.name])
                anchors.append(orientation)
        return groups

    @staticmethod
    def random_home(station_count: int = 6, seed: int = 7,
                    metasurface: Optional[Metasurface] = None) -> "DenseDeployment":
        """A reproducible random smart-home deployment.

        Stations are scattered 2-8 m from the AP with arbitrary antenna
        orientations, mimicking how end users actually deploy devices.
        """
        if station_count < 1:
            raise ValueError("need at least one station")
        rng = np.random.default_rng(seed)
        stations = [
            StationPlacement(
                name=f"station-{index}",
                distance_m=float(rng.uniform(2.0, 8.0)),
                orientation_deg=float(rng.uniform(0.0, 180.0)),
                tx_power_dbm=14.0,
                traffic_demand_mbps=float(rng.uniform(2.0, 20.0)),
            )
            for index in range(station_count)
        ]
        return DenseDeployment(stations, metasurface=metasurface, environment_seed=seed)


__all__ = ["StationPlacement", "DenseDeployment"]
