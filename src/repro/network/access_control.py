"""Polarization-based access control (paper conclusion / future work).

Because the surface controls the polarization arriving at each receiver,
it can deliberately *mismatch* an unauthorised device while serving the
intended one: choose the bias pair that maximizes the intended
receiver's power subject to keeping the unauthorised receiver below its
decoding threshold (or simply maximize the power ratio between them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.network.deployment import DenseDeployment


@dataclass(frozen=True)
class AccessControlResult:
    """Outcome of a polarization access-control optimization."""

    intended_station: str
    unauthorized_station: str
    bias_pair: Tuple[float, float]
    intended_rssi_dbm: float
    unauthorized_rssi_dbm: float
    baseline_isolation_db: float

    @property
    def isolation_db(self) -> float:
        """Power margin of the intended over the unauthorised receiver."""
        return self.intended_rssi_dbm - self.unauthorized_rssi_dbm

    @property
    def isolation_improvement_db(self) -> float:
        """How much the surface improves the isolation over no-surface."""
        return self.isolation_db - self.baseline_isolation_db


def polarization_access_control(deployment: DenseDeployment,
                                intended_station: str,
                                unauthorized_station: str,
                                step_v: float = 3.0,
                                minimum_intended_rssi_dbm: Optional[float] = None
                                ) -> AccessControlResult:
    """Find the bias pair that favours one station over another.

    Parameters
    ----------
    deployment:
        The dense deployment both stations belong to.
    intended_station, unauthorized_station:
        Names of the station to serve and the station to suppress.
    step_v:
        Bias grid step for the search.
    minimum_intended_rssi_dbm:
        Optional floor on the intended station's RSSI; bias pairs that
        drop it below this level are rejected even if they isolate the
        unauthorised station better.

    Returns
    -------
    AccessControlResult
        The chosen bias pair and the achieved isolation.
    """
    if intended_station == unauthorized_station:
        raise ValueError("intended and unauthorized stations must differ")
    if step_v <= 0:
        raise ValueError("step must be positive")
    # Validate both names up front (raises KeyError for unknown ones).
    deployment.station(intended_station)
    deployment.station(unauthorized_station)

    baseline_isolation = (deployment.baseline_rssi_dbm(intended_station) -
                          deployment.baseline_rssi_dbm(unauthorized_station))
    levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
    best: Optional[Tuple[float, float, float, float]] = None
    for vx in levels:
        for vy in levels:
            intended = deployment.rssi_dbm(intended_station, float(vx), float(vy))
            if (minimum_intended_rssi_dbm is not None and
                    intended < minimum_intended_rssi_dbm):
                continue
            unauthorized = deployment.rssi_dbm(unauthorized_station,
                                               float(vx), float(vy))
            isolation = intended - unauthorized
            if best is None or isolation > best[0]:
                best = (isolation, float(vx), float(vy), intended)
    if best is None:
        raise ValueError(
            "no bias pair satisfies the minimum intended RSSI constraint")
    _isolation, vx, vy, intended_rssi = best
    return AccessControlResult(
        intended_station=intended_station,
        unauthorized_station=unauthorized_station,
        bias_pair=(vx, vy),
        intended_rssi_dbm=intended_rssi,
        unauthorized_rssi_dbm=deployment.rssi_dbm(unauthorized_station, vx, vy),
        baseline_isolation_db=baseline_isolation,
    )


__all__ = ["AccessControlResult", "polarization_access_control"]
