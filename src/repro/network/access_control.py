"""Polarization-based access control (paper conclusion / future work).

Because the surface controls the polarization arriving at each receiver,
it can deliberately *mismatch* an unauthorised device while serving the
intended one: choose the bias pair that maximizes the intended
receiver's power subject to keeping the unauthorised receiver below its
decoding threshold (or simply maximize the power ratio between them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.network.deployment import DenseDeployment


@dataclass(frozen=True)
class AccessControlResult:
    """Outcome of a polarization access-control optimization."""

    intended_station: str
    unauthorized_station: str
    bias_pair: Tuple[float, float]
    intended_rssi_dbm: float
    unauthorized_rssi_dbm: float
    baseline_isolation_db: float

    @property
    def isolation_db(self) -> float:
        """Power margin of the intended over the unauthorised receiver."""
        return self.intended_rssi_dbm - self.unauthorized_rssi_dbm

    @property
    def isolation_improvement_db(self) -> float:
        """How much the surface improves the isolation over no-surface."""
        return self.isolation_db - self.baseline_isolation_db


def polarization_access_control(deployment: DenseDeployment,
                                intended_station: str,
                                unauthorized_station: str,
                                step_v: float = 3.0,
                                minimum_intended_rssi_dbm: Optional[float] = None
                                ) -> AccessControlResult:
    """Find the bias pair that favours one station over another.

    Parameters
    ----------
    deployment:
        The dense deployment both stations belong to.
    intended_station, unauthorized_station:
        Names of the station to serve and the station to suppress.
    step_v:
        Bias grid step for the search.
    minimum_intended_rssi_dbm:
        Optional floor on the intended station's RSSI; bias pairs that
        drop it below this level are rejected even if they isolate the
        unauthorised station better.

    Returns
    -------
    AccessControlResult
        The chosen bias pair and the achieved isolation.
    """
    if intended_station == unauthorized_station:
        raise ValueError("intended and unauthorized stations must differ")
    if step_v <= 0:
        raise ValueError("step must be positive")
    # Validate both names up front (raises KeyError for unknown ones).
    names = (intended_station, unauthorized_station)
    for name in names:
        deployment.station(name)

    baselines = deployment.baseline_rssi_vector(names)
    baseline_isolation = float(baselines[0] - baselines[1])
    levels = np.arange(0.0, 30.0 + 0.5 * step_v, step_v)
    vx_grid, vy_grid = np.meshgrid(levels, levels, indexing="ij")
    vx_flat, vy_flat = vx_grid.ravel(), vy_grid.ravel()
    # One fleet-stacked probe evaluates both stations over the whole
    # grid; row 0 is the intended station, row 1 the unauthorised one.
    rssi = deployment.rssi_matrix(vx_flat, vy_flat, names)
    intended, unauthorized = rssi[0], rssi[1]
    isolation = intended - unauthorized
    allowed = (np.ones_like(intended, dtype=bool)
               if minimum_intended_rssi_dbm is None
               else intended >= minimum_intended_rssi_dbm)
    if not np.any(allowed):
        raise ValueError(
            "no bias pair satisfies the minimum intended RSSI constraint")
    # First maximum in vx-major order, matching the historical strict-">"
    # nested scalar loop.
    best_index = int(np.argmax(np.where(allowed, isolation, -np.inf)))
    return AccessControlResult(
        intended_station=intended_station,
        unauthorized_station=unauthorized_station,
        bias_pair=(float(vx_flat[best_index]), float(vy_flat[best_index])),
        intended_rssi_dbm=float(intended[best_index]),
        unauthorized_rssi_dbm=float(unauthorized[best_index]),
        baseline_isolation_db=baseline_isolation,
    )


__all__ = ["AccessControlResult", "polarization_access_control"]
