"""TDMA schedulers for a dense deployment sharing one metasurface.

The surface has a single bias state at any instant, so serving stations
with different antenna orientations is a scheduling problem: which bias
pair does the controller program in each slot, and which station
transmits?  Three strategies bracket the design space:

* :class:`FixedBiasScheduler` — the surface is tuned once (or not at
  all) and every station shares that state; the baseline for "just hang
  the panel on the wall".
* :class:`PerStationScheduler` — every slot retunes the surface for the
  scheduled station; maximum per-station RSSI but pays the retuning
  overhead (Algorithm 1 at 50 Hz switching) on every slot boundary.
* :class:`PolarizationReuseScheduler` — stations are clustered by
  antenna orientation and the surface is retuned only at *group*
  boundaries; this is the paper's "polarization reuse" idea, trading a
  little per-station optimality for far less retuning overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.devices.wifi import wifi_rate_for_rssi_mbps
from repro.network.deployment import DenseDeployment


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a set of non-negative allocations."""
    allocations = np.asarray(values, dtype=float)
    if allocations.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(allocations < 0):
        raise ValueError("allocations must be non-negative")
    total = allocations.sum()
    if total == 0:
        return 1.0
    return float(total ** 2 / (allocations.size * np.sum(allocations ** 2)))


@dataclass(frozen=True)
class StationAllocation:
    """Per-station outcome of one scheduling epoch."""

    station: str
    bias_pair: Tuple[float, float]
    rssi_dbm: float
    rate_mbps: float
    airtime_fraction: float

    @property
    def throughput_mbps(self) -> float:
        """Throughput delivered to this station over the epoch."""
        return self.rate_mbps * self.airtime_fraction


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one epoch over a deployment."""

    scheduler_name: str
    allocations: Tuple[StationAllocation, ...]
    retune_count: int
    retune_overhead_fraction: float

    @property
    def total_throughput_mbps(self) -> float:
        """Aggregate network throughput after retuning overhead."""
        raw = sum(allocation.throughput_mbps for allocation in self.allocations)
        return raw * (1.0 - self.retune_overhead_fraction)

    @property
    def fairness(self) -> float:
        """Jain fairness of the per-station throughputs.

        An epoch that allocated nothing (no stations) is vacuously fair.
        """
        if not self.allocations:
            return 1.0
        return jain_fairness_index(
            [allocation.throughput_mbps for allocation in self.allocations])

    @property
    def worst_station_rate_mbps(self) -> float:
        """PHY rate of the worst-served station (0 if any link is down,
        or when the epoch allocated no stations at all)."""
        if not self.allocations:
            return 0.0
        return min(allocation.rate_mbps for allocation in self.allocations)

    def allocation_for(self, station: str) -> StationAllocation:
        """Look up one station's allocation."""
        for allocation in self.allocations:
            if allocation.station == station:
                return allocation
        raise KeyError(f"no allocation for station {station!r}")


class _SchedulerBase:
    """Shared plumbing for the concrete schedulers."""

    #: Time the controller needs to retune the surface (Algorithm 1 with
    #: the paper's defaults: 50 probes at 50 Hz switching = 1 s).
    RETUNE_TIME_S = 1.0

    def __init__(self, deployment: DenseDeployment,
                 epoch_duration_s: float = 60.0,
                 bias_search_step_v: float = 5.0,
                 stations: Optional[Sequence[str]] = None):
        if epoch_duration_s <= 0:
            raise ValueError("epoch duration must be positive")
        if bias_search_step_v <= 0:
            raise ValueError("bias search step must be positive")
        self.deployment = deployment
        self.epoch_duration_s = epoch_duration_s
        self.bias_search_step_v = bias_search_step_v
        # The stations this epoch actually serves (the survivor subset
        # after quarantine); ``None`` schedules the whole deployment.
        # May be empty — the epoch then allocates nothing.
        if stations is None:
            self.stations = deployment.stations
        else:
            self.stations = tuple(deployment.station(name)
                                  for name in stations)

    @property
    def station_names(self) -> Tuple[str, ...]:
        """Names of the stations this epoch serves, in slot order."""
        return tuple(station.name for station in self.stations)

    def _airtime_fractions(self) -> Dict[str, float]:
        """Equal airtime split across stations (TDMA round robin)."""
        if not self.stations:
            return {}
        share = 1.0 / len(self.stations)
        return {station.name: share for station in self.stations}

    def _empty_result(self, name: str) -> ScheduleResult:
        """The well-formed epoch that serves nobody (all quarantined)."""
        return ScheduleResult(scheduler_name=name, allocations=(),
                              retune_count=0, retune_overhead_fraction=0.0)

    def _best_compromise_bias(self,
                              station_names: Sequence[str]) -> Tuple[float, float]:
        """Bias pair maximizing the summed rate of a set of stations.

        The whole (Vx, Vy) grid crossed with the whole station set is
        one fleet-stacked probe of the link budget
        (:meth:`DenseDeployment.compromise_bias`), replacing the one
        batched probe *per station* of PR 1 — and the seed's quadruple
        Python loop before that.
        """
        return self.deployment.compromise_bias(station_names,
                                               step_v=self.bias_search_step_v)

    def _overhead_fraction(self, retune_count: int) -> float:
        """Fraction of the epoch burned by surface retuning."""
        overhead = retune_count * self.RETUNE_TIME_S / self.epoch_duration_s
        return min(overhead, 1.0)

    def _build_result(self, name: str,
                      bias_per_station: Dict[str, Tuple[float, float]],
                      retune_count: int) -> ScheduleResult:
        airtime = self._airtime_fractions()
        stations = self.stations
        vx = np.array([bias_per_station[station.name][0]
                       for station in stations])
        vy = np.array([bias_per_station[station.name][1]
                       for station in stations])
        # One aligned fleet probe: every station's RSSI at the bias pair
        # programmed for *its* slot.
        rssi = self.deployment.rssi_aligned(vx, vy, self.station_names)
        rates = np.asarray(wifi_rate_for_rssi_mbps(rssi), dtype=float)
        allocations = []
        for index, station in enumerate(stations):
            allocations.append(StationAllocation(
                station=station.name,
                bias_pair=(float(vx[index]), float(vy[index])),
                rssi_dbm=float(rssi[index]),
                rate_mbps=float(rates[index]),
                airtime_fraction=airtime[station.name],
            ))
        return ScheduleResult(
            scheduler_name=name,
            allocations=tuple(allocations),
            retune_count=retune_count,
            retune_overhead_fraction=self._overhead_fraction(retune_count),
        )


class FixedBiasScheduler(_SchedulerBase):
    """One bias pair for the whole epoch (tuned for the aggregate).

    The bias pair is chosen to maximize the *sum* of station RSSIs over a
    coarse grid — i.e. the best single compromise state — and is applied
    once at the start of the epoch.
    """

    def schedule(self) -> ScheduleResult:
        """Pick the best compromise bias pair and serve everyone with it."""
        if not self.stations:
            return self._empty_result("fixed-bias")
        best_pair = self._best_compromise_bias(self.station_names)
        bias_per_station = {station.name: best_pair
                            for station in self.stations}
        return self._build_result("fixed-bias", bias_per_station,
                                  retune_count=1)


class PerStationScheduler(_SchedulerBase):
    """Retune the surface for every station's slot."""

    def schedule(self) -> ScheduleResult:
        """Give each station its individually optimal bias pair.

        All stations' grid searches run as one stacked probe of the
        fleet ensemble (:meth:`DenseDeployment.best_bias_per_station`).
        """
        if not self.stations:
            return self._empty_result("per-station")
        vx, vy, _power = self.deployment.best_bias_per_station(
            step_v=self.bias_search_step_v, names=self.station_names)
        bias_per_station = {
            station.name: (float(vx[index]), float(vy[index]))
            for index, station in enumerate(self.stations)}
        return self._build_result("per-station", bias_per_station,
                                  retune_count=len(self.stations))


class PolarizationReuseScheduler(_SchedulerBase):
    """Retune only at orientation-group boundaries (polarization reuse).

    Stations with similar antenna orientations need nearly the same
    rotation, so one bias pair serves the whole group; the number of
    retunes per epoch drops from the station count to the group count.
    """

    def __init__(self, deployment: DenseDeployment,
                 epoch_duration_s: float = 60.0,
                 bias_search_step_v: float = 5.0,
                 orientation_tolerance_deg: float = 20.0,
                 stations: Optional[Sequence[str]] = None):
        super().__init__(deployment, epoch_duration_s, bias_search_step_v,
                         stations=stations)
        if orientation_tolerance_deg <= 0:
            raise ValueError("orientation tolerance must be positive")
        self.orientation_tolerance_deg = orientation_tolerance_deg

    def schedule(self) -> ScheduleResult:
        """Cluster stations by orientation and tune once per cluster."""
        if not self.stations:
            return self._empty_result("polarization-reuse")
        # Cluster over the whole deployment (stable group anchors), then
        # keep only the stations this epoch serves.
        serving = set(self.station_names)
        groups = [[name for name in group if name in serving]
                  for group in self.deployment.orientation_groups(
                      self.orientation_tolerance_deg)]
        groups = [group for group in groups if group]
        bias_per_station: Dict[str, Tuple[float, float]] = {}
        for group in groups:
            best_pair = self._best_compromise_bias(group)
            for name in group:
                bias_per_station[name] = best_pair
        return self._build_result("polarization-reuse", bias_per_station,
                                  retune_count=len(groups))


def baseline_without_surface(
        deployment: DenseDeployment,
        stations: Optional[Sequence[str]] = None) -> ScheduleResult:
    """Round-robin TDMA with no metasurface deployed at all.

    All stations' baseline links evaluate as one stacked probe of the
    no-surface fleet ensemble.  ``stations`` restricts the epoch to a
    survivor subset; an empty subset allocates nothing.
    """
    names = (deployment.station_names if stations is None
             else tuple(stations))
    if not names:
        return ScheduleResult(scheduler_name="no-surface", allocations=(),
                              retune_count=0, retune_overhead_fraction=0.0)
    share = 1.0 / len(names)
    rssi = deployment.baseline_rssi_vector(names)
    rates = np.asarray(wifi_rate_for_rssi_mbps(rssi), dtype=float)
    allocations = [
        StationAllocation(
            station=name, bias_pair=(0.0, 0.0),
            rssi_dbm=float(rssi[index]), rate_mbps=float(rates[index]),
            airtime_fraction=share)
        for index, name in enumerate(names)
    ]
    return ScheduleResult(scheduler_name="no-surface",
                          allocations=tuple(allocations),
                          retune_count=0, retune_overhead_fraction=0.0)


__all__ = [
    "jain_fairness_index",
    "StationAllocation",
    "ScheduleResult",
    "FixedBiasScheduler",
    "PerStationScheduler",
    "PolarizationReuseScheduler",
    "baseline_without_surface",
]
